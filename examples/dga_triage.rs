//! DGA triage: the language-model scoring filter in isolation (§V-C).
//!
//! Reproduces the paper's worked example — `google.com` scores −7.4 under
//! their 3-gram model while the DGA name `skmnikrzhrrzcjcxwfprgt.com`
//! scores −45.2 — and shows the separation across whole batches of
//! generated domains.
//!
//! ```text
//! cargo run --release --example dga_triage
//! ```

#![warn(clippy::unwrap_used)]

use baywatch::langmodel::dga::{DgaGenerator, DgaStyle};
use baywatch::langmodel::{corpus, DomainScorer};

fn main() {
    println!("training 3-gram Kneser-Ney model on the popular-domain corpus...");
    let scorer = DomainScorer::train(corpus::training_corpus(), 3);

    println!("\n--- the paper's worked examples (§V-C) ---");
    for d in ["google.com", "skmnikrzhrrzcjcxwfprgt.com"] {
        println!("  S({d:<30}) = {:>8.3}", scorer.score(d));
    }

    println!("\n--- popular domains ---");
    let popular = [
        "facebook.com",
        "microsoft.com",
        "stackoverflow.com",
        "nytimes.com",
        "github.com",
    ];
    for d in popular {
        println!(
            "  {:<28} total {:>8.3}  per-char {:>6.3}",
            d,
            scorer.score(d),
            scorer.score_per_char(d)
        );
    }

    println!("\n--- Table V/VI-style malicious destinations ---");
    for (style, label) in [
        (DgaStyle::RandomAlpha, "random-alpha (Zeus/Conficker)"),
        (DgaStyle::HexFragment, "hex-fragment (TDSS/ZeroAccess)"),
        (DgaStyle::Pronounceable, "pronounceable DGA"),
    ] {
        let mut gen = DgaGenerator::new(style, 2024);
        let batch = gen.generate_batch(200);
        let avg: f64 =
            batch.iter().map(|d| scorer.score_per_char(d)).sum::<f64>() / batch.len() as f64;
        println!("  {label:<32} avg per-char score {avg:>6.3}");
        for d in batch.iter().take(3) {
            println!("      e.g. {:<34} {:>8.3}", d, scorer.score(d));
        }
    }

    // Quantify the separation: fraction of DGA names scoring below the
    // worst popular domain.
    let worst_popular = popular
        .iter()
        .map(|d| scorer.score_per_char(d))
        .fold(f64::INFINITY, f64::min);
    let mut gen = DgaGenerator::new(DgaStyle::RandomAlpha, 7);
    let batch = gen.generate_batch(1000);
    let below = batch
        .iter()
        .filter(|d| scorer.score_per_char(d) < worst_popular)
        .count();
    println!(
        "\nseparation: {}/1000 random-alpha DGA names score below every popular domain tested",
        below
    );
    assert!(below > 900, "the LM should separate DGA from human domains");
}
