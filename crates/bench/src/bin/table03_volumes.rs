//! Table III — data volumes of the web-proxy logs.
//!
//! Paper: six windows (Oct 2013 + Nov 2014 – Mar 2015), 34.6 B events and
//! 35.6 TB of logs from 130 K devices. We cannot replay that volume, so
//! the simulator generates each month at a 1:1000 device scale and the
//! table reports measured event counts, distinct pairs and an estimated
//! raw-log size (≈190 bytes/event, the BlueCoat average the paper's
//! TB/event ratio implies), alongside the linear extrapolation back to
//! paper scale.

#![warn(clippy::unwrap_used)]

use baywatch_bench::{f, render_table, save_json};
use baywatch_netsim::enterprise::{EnterpriseConfig, EnterpriseSimulator};
use std::collections::HashSet;

const BYTES_PER_EVENT: f64 = 190.0;
const DEVICE_SCALE: f64 = 1000.0; // simulated hosts × 1000 ≈ paper's 130 K

fn main() {
    println!("=== Table III: data volumes of web proxy logs (scaled 1:{DEVICE_SCALE}) ===\n");

    let months = [
        ("Oct 2013 (10-day)", 10usize),
        ("Nov 2014", 30),
        ("Dec 2014", 31),
        ("Jan 2015", 31),
        ("Feb 2015", 28),
        ("Mar 2015", 31),
    ];

    let mut rows = Vec::new();
    let mut json = Vec::new();
    let mut total_events = 0usize;
    let mut total_bytes = 0.0f64;

    for (i, (label, days)) in months.iter().enumerate() {
        // A BlueCoat proxy logs every embedded object, not just page
        // loads: the paper's 34.6 B events / 130 K devices / 151 days is
        // ≈1,600 log lines per device-day. The default browsing model
        // counts "requests" at page granularity, so this experiment raises
        // it to object granularity.
        let sim = EnterpriseSimulator::new(EnterpriseConfig {
            hosts: 130,
            days: *days,
            seed: 0xC0FFEE + i as u64,
            browsing: baywatch_netsim::benign::BrowsingModel {
                sessions_per_day: 14.0,
                requests_per_session: 90.0,
                ..Default::default()
            },
            ..Default::default()
        });
        let mut events = 0usize;
        let mut pairs: HashSet<(u32, String)> = HashSet::new();
        for d in 0..*days {
            let day = sim.generate_day(d);
            events += day.len();
            for e in day {
                pairs.insert((e.host.0, e.domain));
            }
        }
        let bytes = events as f64 * BYTES_PER_EVENT;
        total_events += events;
        total_bytes += bytes;
        rows.push(vec![
            (*label).to_owned(),
            events.to_string(),
            pairs.len().to_string(),
            format!("{:.1} MB", bytes / 1e6),
            format!("{:.1} B events", events as f64 * DEVICE_SCALE / 1e9),
            format!("{:.1} TB", bytes * DEVICE_SCALE / 1e12),
        ]);
        json.push((label.to_string(), events, pairs.len()));
    }
    rows.push(vec![
        "Total".into(),
        total_events.to_string(),
        "-".into(),
        format!("{:.1} MB", total_bytes / 1e6),
        format!("{:.1} B events", total_events as f64 * DEVICE_SCALE / 1e9),
        format!("{:.1} TB", total_bytes * DEVICE_SCALE / 1e12),
    ]);

    println!(
        "{}",
        render_table(
            &[
                "Month",
                "# events (sim)",
                "# distinct pairs",
                "log size (sim)",
                "extrapolated events",
                "extrapolated size",
            ],
            &rows
        )
    );
    println!("paper reference: 34.6 B events, 35.6 TB total over the same six windows\n");

    // Shape check: extrapolated totals within an order of magnitude of the
    // paper's 34.6 B events.
    let extrapolated = total_events as f64 * DEVICE_SCALE;
    println!(
        "extrapolated total: {:.1} B events ({}x the paper's 34.6 B)",
        extrapolated / 1e9,
        f(extrapolated / 34.6e9, 2)
    );
    assert!(
        extrapolated > 34.6e9 * 0.05 && extrapolated < 34.6e9 * 20.0,
        "extrapolation out of the plausible band"
    );

    save_json("table03_volumes", &json);
}
