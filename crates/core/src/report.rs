//! Analyst-facing report rendering.
//!
//! BAYWATCH's output is a *prioritized list of beaconing cases* for manual
//! verification and investigation (§VI). This module turns an
//! [`AnalysisReport`] into the text artifact an analyst actually reads:
//! a ranked digest with per-case evidence — detected periods, score
//! components, the symbolized interval series, and the filter funnel that
//! produced the list.

use std::fmt::Write as _;

use baywatch_obs::{JsonWriter, MetricsSnapshot};
use baywatch_timeseries::symbolize::symbolize;

use crate::pipeline::AnalysisReport;
use crate::rank::RankedCase;

/// Rendering options.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReportOptions {
    /// Maximum number of cases to include (0 = all ranked cases).
    pub max_cases: usize,
    /// Whether to include only cases above the report percentile.
    pub reported_only: bool,
    /// Maximum symbolized-series characters shown per case.
    pub max_symbols: usize,
    /// Tolerance for the symbolized-series rendering.
    pub symbol_tolerance: f64,
}

impl Default for ReportOptions {
    fn default() -> Self {
        Self {
            max_cases: 50,
            reported_only: false,
            max_symbols: 64,
            symbol_tolerance: 0.05,
        }
    }
}

/// Renders the filter funnel (Fig. 3 data flow) as text.
pub fn render_funnel(report: &AnalysisReport) -> String {
    let s = report.stats;
    let mut out = String::new();
    let mut row = |label: &str, value: usize| {
        let _ = writeln!(out, "{label:<28}{value:>10}");
    };
    row("events", s.events);
    row("malformed lines", s.malformed_lines);
    row("skipped events (faults)", s.skipped_events);
    row("communication pairs", s.pairs);
    row("quarantined pairs", s.quarantined_pairs);
    // Budget rows only appear when budgets actually fired, so the funnel
    // of an unbudgeted (or in-budget) run is byte-identical to before.
    if s.timed_out_pairs > 0 {
        row("timed-out pairs (budget)", s.timed_out_pairs);
    }
    if s.degraded_pairs > 0 {
        row("degraded pairs (pressure)", s.degraded_pairs);
    }
    if s.shed_pairs > 0 {
        row("shed pairs (budget)", s.shed_pairs);
    }
    if s.dlq_replayed > 0 {
        row("dlq pairs replayed", s.dlq_replayed);
        row("dlq pairs recovered", s.dlq_recovered);
    }
    row("after global whitelist", s.after_global_whitelist);
    row("after local whitelist", s.after_local_whitelist);
    row("periodic (verified)", s.periodic);
    row("after URL-token filter", s.after_token_filter);
    row("after novelty analysis", s.after_novelty);
    row("reported (percentile)", s.reported);
    if !report.faults.is_clean() || s.timed_out_pairs > 0 || s.shed_pairs > 0 || s.degraded_pairs > 0
    {
        let mut banner = format!(
            "degraded mode: {} map / {} reduce retries, {} quarantined unit(s)",
            report.faults.map_retries,
            report.faults.reduce_retries,
            report.faults.quarantined_units()
        );
        if s.timed_out_pairs > 0 {
            let _ = write!(banner, ", {} timed-out pair(s)", s.timed_out_pairs);
        }
        if s.degraded_pairs > 0 {
            let _ = write!(banner, ", {} degraded pair(s)", s.degraded_pairs);
        }
        if s.shed_pairs > 0 {
            let _ = write!(banner, ", {} shed pair(s)", s.shed_pairs);
        }
        let _ = writeln!(out, "{banner}");
    }
    out
}

/// Deterministic JSON export of an analysis window: the complete filter
/// funnel, the deterministic sections of the metrics snapshot, the fault
/// tallies, and the top-`top_k` ranked cases.
///
/// The output has stable key order and fixed-precision floats, so it is
/// byte-identical across runs on identical input — the golden-run suite
/// (`tests/golden_funnel.rs`) compares it verbatim. Wall-clock timings
/// never appear here: [`MetricsSnapshot::to_json`] quarantines them by
/// construction.
pub fn export_json(report: &AnalysisReport, metrics: &MetricsSnapshot, top_k: usize) -> String {
    let s = report.stats;
    let mut w = JsonWriter::new();
    w.raw("{");

    w.key("funnel");
    w.raw("{");
    for (key, value) in [
        ("events", s.events),
        ("malformed_lines", s.malformed_lines),
        ("skipped_events", s.skipped_events),
        ("pairs", s.pairs),
        ("quarantined_pairs", s.quarantined_pairs),
        ("timed_out_pairs", s.timed_out_pairs),
        ("shed_pairs", s.shed_pairs),
        ("dlq_replayed", s.dlq_replayed),
        ("dlq_recovered", s.dlq_recovered),
        ("after_global_whitelist", s.after_global_whitelist),
        ("after_local_whitelist", s.after_local_whitelist),
        ("periodic", s.periodic),
        ("after_token_filter", s.after_token_filter),
        ("after_novelty", s.after_novelty),
        ("reported", s.reported),
    ] {
        w.key(key);
        w.uint(value as u64);
    }
    // Post-seed funnel fields are emitted only when they fired, keeping a
    // clean window's export byte-identical to earlier releases.
    if s.degraded_pairs > 0 {
        w.key("degraded_pairs");
        w.uint(s.degraded_pairs as u64);
    }
    w.raw("}");
    w.end_value();

    w.key("faults");
    w.raw("{");
    for (key, value) in [
        ("map_retries", report.faults.map_retries),
        ("map_bisections", report.faults.map_bisections),
        ("reduce_retries", report.faults.reduce_retries),
        ("quarantined_inputs", report.faults.quarantined_inputs),
        ("quarantined_keys", report.faults.quarantined_keys),
        ("timed_out_inputs", report.faults.timed_out_inputs),
        ("timed_out_keys", report.faults.timed_out_keys),
        ("lost_values", report.faults.lost_values),
    ] {
        w.key(key);
        w.uint(value as u64);
    }
    // Checkpoint corruption downgrades: surfaced (with bounded samples)
    // only when a restore was actually refused, so runs that never resume
    // — and clean resumes — export byte-identically to earlier releases.
    if report.faults.checkpoint_corruptions > 0 {
        w.key("checkpoint_corruptions");
        w.uint(report.faults.checkpoint_corruptions as u64);
        let mut sorted: Vec<&str> = report
            .faults
            .corruption_samples
            .iter()
            .map(String::as_str)
            .collect();
        sorted.sort_unstable();
        w.key("corruption_samples");
        w.raw("[");
        for sample in sorted {
            w.string(sample);
        }
        w.raw("]");
        w.end_value();
    }
    // Bounded provenance samples. The engine collects them in completion
    // order, which parallel execution does not fix — sort each list so the
    // export stays byte-identical across runs and across resume.
    for (key, samples) in [
        ("input_samples", &report.faults.input_samples),
        ("key_samples", &report.faults.key_samples),
        ("panic_samples", &report.faults.panic_samples),
        ("timeout_samples", &report.faults.timeout_samples),
    ] {
        let mut sorted: Vec<&str> = samples.iter().map(String::as_str).collect();
        sorted.sort_unstable();
        w.key(key);
        w.raw("[");
        for sample in sorted {
            w.string(sample);
        }
        w.raw("]");
        w.end_value();
    }
    w.raw("}");
    w.end_value();

    w.key("metrics");
    w.raw(&metrics.to_json());
    w.end_value();

    w.key("report_cutoff");
    w.uint(report.report_cutoff as u64);

    w.key("top_cases");
    w.raw("[");
    for (i, rc) in report.ranked.iter().take(top_k).enumerate() {
        if i > 0 {
            w.raw(",");
        }
        w.raw("{");
        w.key("rank");
        w.uint(i as u64 + 1);
        w.key("source");
        w.string(&rc.case.pair.source);
        w.key("destination");
        w.string(&rc.case.pair.destination);
        w.key("score");
        w.float(rc.score, 6);
        w.key("periods");
        w.raw("[");
        for c in &rc.case.candidates {
            w.float(c.period, 3);
        }
        w.raw("]");
        w.end_value();
        w.raw("}");
    }
    w.raw("]");
    w.end_value();

    w.raw("}");
    w.finish()
}

/// Renders one case as a multi-line evidence block.
pub fn render_case(rank: usize, rc: &RankedCase, options: &ReportOptions) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "#{rank} {}  score {:.3}", rc.case.pair, rc.score);
    let _ = writeln!(
        out,
        "    components: periodicity {:.2} | language {:.2} | unpopularity {:.2} | persistence {:.2}",
        rc.periodicity_component,
        rc.language_component,
        rc.unpopularity_component,
        rc.persistence_component
    );
    if rc.case.candidates.is_empty() {
        let _ = writeln!(out, "    periods: none verified");
    } else {
        let periods: Vec<String> = rc
            .case
            .candidates
            .iter()
            .map(|c| format!("{:.1}s (ACF {:.2})", c.period, c.acf_score))
            .collect();
        let _ = writeln!(out, "    periods: {}", periods.join(", "));
    }
    let _ = writeln!(
        out,
        "    intervals: n={}  popularity {:.5}  lm/char {:.2}  shared by {} source(s)",
        rc.case.intervals.len(),
        rc.case.popularity,
        rc.case.lm_score,
        rc.case.similar_sources
    );
    if !rc.case.url_tokens.is_empty() {
        let tokens: Vec<&str> = rc
            .case
            .url_tokens
            .iter()
            .map(String::as_str)
            .take(8)
            .collect();
        let _ = writeln!(out, "    url tokens: {}", tokens.join(", "));
    }
    let periods: Vec<f64> = rc.case.candidates.iter().map(|c| c.period).collect();
    if !rc.case.intervals.is_empty() && !periods.is_empty() {
        let symbols = symbolize(&rc.case.intervals, &periods, options.symbol_tolerance);
        let shown = &symbols[..symbols.len().min(options.max_symbols)];
        let ellipsis = if symbols.len() > shown.len() {
            "…"
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "    series: {}{}",
            String::from_utf8_lossy(shown),
            ellipsis
        );
    }
    out
}

/// Renders the full analyst report.
///
/// # Example
///
/// ```
/// use baywatch_core::pipeline::{Baywatch, BaywatchConfig};
/// use baywatch_core::record::LogRecord;
/// use baywatch_core::report::{render_report, ReportOptions};
///
/// let mut records = Vec::new();
/// for i in 0..60u64 {
///     records.push(LogRecord::new(1_000 + i * 60, "victim", "qzkxwv.com", "a1"));
///     records.push(LogRecord::new(900 + i * i * 31 % 4000, "other", "site.org", "index"));
/// }
/// let mut engine = Baywatch::new(BaywatchConfig { local_tau: 0.9, ..Default::default() });
/// let analysis = engine.analyze(records);
/// let text = render_report(&analysis, &ReportOptions::default());
/// assert!(text.contains("qzkxwv.com"));
/// assert!(text.contains("communication pairs"));
/// ```
pub fn render_report(report: &AnalysisReport, options: &ReportOptions) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "=== BAYWATCH analysis report ===\n");
    out.push_str(&render_funnel(report));
    out.push('\n');

    let cases: Vec<&RankedCase> = if options.reported_only {
        report.reported().iter().collect()
    } else {
        report.ranked.iter().collect()
    };
    let limit = if options.max_cases == 0 {
        cases.len()
    } else {
        options.max_cases
    };
    if cases.is_empty() {
        let _ = writeln!(out, "no beaconing cases surfaced in this window");
        return out;
    }
    let _ = writeln!(
        out,
        "--- {} case(s){} ---\n",
        cases.len().min(limit),
        if options.reported_only {
            " above the report threshold"
        } else {
            ""
        }
    );
    for (i, rc) in cases.into_iter().take(limit).enumerate() {
        out.push_str(&render_case(i + 1, rc, options));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pair::CommunicationPair;
    use crate::pipeline::FilterStats;
    use crate::rank::BeaconCase;
    use baywatch_timeseries::detector::CandidatePeriod;

    fn toy_report(n_cases: usize) -> AnalysisReport {
        let ranked: Vec<RankedCase> = (0..n_cases)
            .map(|i| RankedCase {
                case: BeaconCase {
                    pair: CommunicationPair::new(format!("host-{i}"), format!("dest-{i}.com")),
                    intervals: vec![60.0; 100],
                    candidates: vec![CandidatePeriod {
                        frequency: 1.0 / 60.0,
                        period: 60.0,
                        power: 5.0,
                        acf_score: 0.8,
                        p_value: None,
                    }],
                    url_tokens: ["a1f".to_owned()].into(),
                    popularity: 0.001,
                    lm_score: -3.0,
                    similar_sources: 2,
                },
                score: 2.0 - i as f64 * 0.1,
                periodicity_component: 0.8,
                language_component: 0.5,
                unpopularity_component: 0.9,
                persistence_component: 0.7,
            })
            .collect();
        AnalysisReport {
            stats: FilterStats {
                events: 1000,
                pairs: 50,
                after_global_whitelist: 40,
                after_local_whitelist: 30,
                periodic: n_cases,
                after_token_filter: n_cases,
                after_novelty: n_cases,
                reported: n_cases.min(1),
                malformed_lines: 0,
                skipped_events: 0,
                quarantined_pairs: 0,
                timed_out_pairs: 0,
                shed_pairs: 0,
                degraded_pairs: 0,
                dlq_replayed: 0,
                dlq_recovered: 0,
            },
            report_cutoff: n_cases.min(1),
            ranked,
            popularity_total_sources: 20,
            faults: Default::default(),
            malformed_samples: Vec::new(),
            checkpoint: None,
        }
    }

    #[test]
    fn funnel_shows_all_stages() {
        let text = render_funnel(&toy_report(3));
        for label in [
            "events",
            "malformed lines",
            "skipped events",
            "communication pairs",
            "quarantined pairs",
            "global whitelist",
            "local whitelist",
            "periodic",
            "token filter",
            "novelty",
            "reported",
        ] {
            assert!(text.contains(label), "missing {label}");
        }
        // Clean run: no degraded-mode banner.
        assert!(!text.contains("degraded mode"));
    }

    #[test]
    fn funnel_flags_degraded_runs() {
        let mut report = toy_report(1);
        report.stats.malformed_lines = 7;
        report.stats.quarantined_pairs = 2;
        report.faults.reduce_retries = 4;
        report.faults.quarantined_keys = 2;
        let text = render_funnel(&report);
        assert!(text.contains("malformed lines"));
        assert!(text.contains("7"));
        assert!(text.contains("degraded mode"));
        assert!(text.contains("2 quarantined unit(s)"));
    }

    #[test]
    fn budget_rows_hidden_on_clean_runs() {
        let text = render_funnel(&toy_report(2));
        assert!(!text.contains("timed-out pairs"));
        assert!(!text.contains("shed pairs"));
        assert!(!text.contains("degraded mode"));
    }

    #[test]
    fn funnel_flags_budget_degradation() {
        let mut report = toy_report(1);
        report.stats.timed_out_pairs = 3;
        report.stats.shed_pairs = 11;
        let text = render_funnel(&report);
        assert!(text.contains("timed-out pairs (budget)"));
        assert!(text.contains("shed pairs (budget)"));
        // The banner fires on budget degradation even with clean faults,
        // and keeps its original prefix.
        assert!(text.contains(
            "degraded mode: 0 map / 0 reduce retries, 0 quarantined unit(s), \
             3 timed-out pair(s), 11 shed pair(s)"
        ));
    }

    #[test]
    fn case_block_contains_evidence() {
        let report = toy_report(1);
        let text = render_case(1, &report.ranked[0], &ReportOptions::default());
        assert!(text.contains("dest-0.com"));
        assert!(text.contains("60.0s"));
        assert!(text.contains("components"));
        assert!(text.contains("series: xxxx"));
    }

    #[test]
    fn max_cases_limits_output() {
        let report = toy_report(10);
        let opts = ReportOptions {
            max_cases: 2,
            ..Default::default()
        };
        let text = render_report(&report, &opts);
        assert!(text.contains("#1 "));
        assert!(text.contains("#2 "));
        assert!(!text.contains("#3 "));
    }

    #[test]
    fn reported_only_respects_cutoff() {
        let report = toy_report(5); // cutoff = 1
        let opts = ReportOptions {
            reported_only: true,
            ..Default::default()
        };
        let text = render_report(&report, &opts);
        assert!(text.contains("#1 "));
        assert!(!text.contains("#2 "));
    }

    #[test]
    fn empty_report_renders_gracefully() {
        let report = toy_report(0);
        let text = render_report(&report, &ReportOptions::default());
        assert!(text.contains("no beaconing cases"));
    }

    #[test]
    fn export_json_is_stable_and_timing_free() {
        let report = toy_report(3);
        let metrics = baywatch_obs::MetricsRegistry::new();
        metrics
            .counter("stage.02_global_whitelist.admitted")
            .add(40);
        let buckets = baywatch_obs::Buckets::new(&[10]).unwrap();
        metrics.timing("span.analyze", &buckets).observe(123);
        let snap = metrics.snapshot();

        let a = export_json(&report, &snap, 2);
        let b = export_json(&report, &snap, 2);
        assert_eq!(a, b, "export must be deterministic");
        assert!(a.contains(r#""funnel":{"events":1000"#));
        assert!(a.contains(r#""periodic":3"#));
        assert!(a.contains(r#""map_bisections":0"#));
        assert!(a.contains(r#""stage.02_global_whitelist.admitted":40"#));
        // top_k = 2 truncates the ranked list.
        assert!(a.contains("dest-0.com") && a.contains("dest-1.com"));
        assert!(!a.contains("dest-2.com"));
        // Array elements are comma-separated (valid JSON framing).
        assert!(a.contains("},{\"rank\":2"));
        // Wall-clock timings are quarantined out of the export.
        assert!(!a.contains("span.analyze") && !a.contains("timings"));
    }

    #[test]
    fn export_json_sorts_fault_samples_and_reports_dlq() {
        let mut report = toy_report(1);
        report.stats.timed_out_pairs = 1;
        report.stats.dlq_replayed = 2;
        report.stats.dlq_recovered = 1;
        // Samples arrive in engine completion order, which parallel
        // execution scrambles; the export must sort them.
        report.faults.input_samples = vec!["in-b".to_string(), "in-a".to_string()];
        report.faults.key_samples = vec!["key-z".to_string(), "key-a".to_string()];
        report.faults.panic_samples = vec!["panic-2".to_string(), "panic-1".to_string()];
        report.faults.timeout_samples = vec!["to-zeta".to_string(), "to-alpha".to_string()];
        let snap = baywatch_obs::MetricsRegistry::new().snapshot();

        let json = export_json(&report, &snap, 1);
        assert!(json.contains(r#""dlq_replayed":2"#));
        assert!(json.contains(r#""dlq_recovered":1"#));
        assert!(json.contains(r#""input_samples":["in-a","in-b"]"#));
        assert!(json.contains(r#""key_samples":["key-a","key-z"]"#));
        assert!(json.contains(r#""panic_samples":["panic-1","panic-2"]"#));
        assert!(json.contains(r#""timeout_samples":["to-alpha","to-zeta"]"#));
        // A differently-ordered report exports byte-identically.
        let mut scrambled = report.clone();
        scrambled.faults.timeout_samples.reverse();
        scrambled.faults.key_samples.reverse();
        assert_eq!(export_json(&scrambled, &snap, 1), json);
        // The text funnel surfaces the replay outcome too.
        let funnel = render_funnel(&report);
        assert!(funnel.contains("dlq pairs replayed"));
        assert!(funnel.contains("dlq pairs recovered"));
    }

    #[test]
    fn export_json_surfaces_checkpoint_corruptions_when_present() {
        let snap = baywatch_obs::MetricsRegistry::new().snapshot();
        // Regression: corruption downgrades used to be counted (in
        // `load_warnings`) but invisible in the export's faults section.
        let mut report = toy_report(1);
        report.faults.checkpoint_corruptions = 2;
        report.faults.corruption_samples = vec![
            "shard 1: checkpoint untrusted, re-executing".to_string(),
            "shard 0: checkpoint untrusted, re-executing".to_string(),
        ];
        let json = export_json(&report, &snap, 1);
        assert!(json.contains(r#""checkpoint_corruptions":2"#));
        // Samples are sorted for byte-stable output.
        assert!(json.contains(
            r#""corruption_samples":["shard 0: checkpoint untrusted, re-executing","shard 1: checkpoint untrusted, re-executing"]"#
        ));

        // A clean report exports without either key — byte-identical to
        // the pre-resilience format.
        let clean = export_json(&toy_report(1), &snap, 1);
        assert!(!clean.contains("checkpoint_corruptions"));
        assert!(!clean.contains("corruption_samples"));
    }

    #[test]
    fn degraded_pairs_appear_in_funnel_and_export_only_when_fired() {
        let snap = baywatch_obs::MetricsRegistry::new().snapshot();
        let mut report = toy_report(1);
        report.stats.degraded_pairs = 7;
        let json = export_json(&report, &snap, 1);
        assert!(json.contains(r#""degraded_pairs":7"#));
        let funnel = render_funnel(&report);
        assert!(funnel.contains("degraded pairs (pressure)"));
        assert!(funnel.contains("7 degraded pair(s)"));

        let clean = export_json(&toy_report(1), &snap, 1);
        assert!(!clean.contains("degraded_pairs"));
        assert!(!render_funnel(&toy_report(1)).contains("degraded"));
    }

    #[test]
    fn symbol_truncation() {
        let report = toy_report(1);
        let opts = ReportOptions {
            max_symbols: 10,
            ..Default::default()
        };
        let text = render_case(1, &report.ranked[0], &opts);
        assert!(text.contains("xxxxxxxxxx…"));
    }
}
