//! The metrics registry: named counters, gauges, and histograms with
//! get-or-register semantics and deterministic snapshots.
//!
//! Metric families live in two tiers. **Deterministic** metrics
//! (counters, gauges, value histograms) are pure functions of the data
//! the pipeline analyzed and appear in [`MetricsSnapshot::to_json`],
//! which the golden-run suite byte-compares. **Timing** histograms carry
//! wall-clock-derived durations; they are kept in a separate section and
//! only appear in [`MetricsSnapshot::to_json_full`], never in golden
//! output.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use crate::hist::{Buckets, Histogram, HistogramSnapshot};
use crate::json::JsonWriter;

/// A monotonic counter handle. Cloning shares the underlying cell.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A settable signed gauge handle. Cloning shares the underlying cell.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Sets the gauge to `v`.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug, Default)]
struct Families {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
    operational: BTreeMap<String, Counter>,
    timings: BTreeMap<String, Histogram>,
}

/// A process-wide (or pipeline-wide) collection of named metrics.
///
/// Handles returned by the accessors are cheap clones backed by atomics,
/// so hot paths register once and update lock-free. Registration uses
/// get-or-register semantics: the first registration of a histogram name
/// fixes its bucket layout and later calls return the existing handle
/// regardless of the buckets they pass (first registration wins).
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    families: Mutex<Families>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the counter named `name`, creating it at zero on first use.
    pub fn counter(&self, name: &str) -> Counter {
        let mut fam = self.lock();
        fam.counters.entry(name.to_string()).or_default().clone()
    }

    /// Returns the gauge named `name`, creating it at zero on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut fam = self.lock();
        fam.gauges.entry(name.to_string()).or_default().clone()
    }

    /// Returns the *operational* counter named `name`.
    ///
    /// Operational counters describe how this process ran — checkpoint
    /// shards written vs resumed, manifest rewrites, load warnings — not
    /// what the data contained. A resumed run legitimately differs from
    /// an uninterrupted one here, so like timings they are excluded from
    /// the deterministic export and appear only in
    /// [`MetricsSnapshot::to_json_full`].
    pub fn operational(&self, name: &str) -> Counter {
        let mut fam = self.lock();
        fam.operational.entry(name.to_string()).or_default().clone()
    }

    /// Returns the *deterministic* value histogram named `name`.
    ///
    /// These record data-derived values (series lengths, candidate
    /// counts) and appear in golden output.
    pub fn histogram(&self, name: &str, buckets: &Buckets) -> Histogram {
        let mut fam = self.lock();
        fam.histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(buckets.clone()))
            .clone()
    }

    /// Returns the *timing* histogram named `name`.
    ///
    /// These record wall-clock-derived durations and are quarantined out
    /// of the deterministic export.
    pub fn timing(&self, name: &str, buckets: &Buckets) -> Histogram {
        let mut fam = self.lock();
        fam.timings
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(buckets.clone()))
            .clone()
    }

    /// A point-in-time copy of every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let fam = self.lock();
        MetricsSnapshot {
            counters: fam
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: fam
                .gauges
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: fam
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
            operational: fam
                .operational
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            timings: fam
                .timings
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }

    /// Replays a deterministic metrics delta into the live registry.
    ///
    /// The resume path's bulk write: counters are added and value
    /// histograms absorbed, creating metrics on first sight. Gauges and
    /// timings are deliberately ignored — gauges are point-in-time (not
    /// additive) and timings are wall-clock-derived, so neither belongs
    /// in a replayed checkpoint delta. Fails only on a histogram bucket
    /// layout conflict with an already-registered name.
    /// The call is all-or-nothing: every histogram layout is validated
    /// before any value moves, so a refused delta leaves the registry's
    /// data untouched (at most new empty metrics were registered).
    pub fn absorb(&self, delta: &MetricsSnapshot) -> Result<(), crate::ObsError> {
        let mut targets = Vec::with_capacity(delta.histograms.len());
        for (name, snap) in &delta.histograms {
            let buckets = Buckets::new(&snap.bounds)?;
            let hist = self.histogram(name, &buckets);
            if hist.buckets().bounds() != snap.bounds.as_slice() {
                return Err(crate::ObsError::BucketMismatch {
                    left: hist.buckets().bounds().to_vec(),
                    right: snap.bounds.clone(),
                });
            }
            targets.push((hist, snap));
        }
        for (hist, snap) in targets {
            hist.absorb_snapshot(snap)?;
        }
        for (name, value) in &delta.counters {
            self.counter(name).add(*value);
        }
        Ok(())
    }

    /// Locks the family table, recovering from poisoning: the data is
    /// plain maps of handles, always structurally valid, and metrics must
    /// never take the pipeline down.
    fn lock(&self) -> MutexGuard<'_, Families> {
        self.families
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

/// An owned snapshot of a registry, suitable for export and comparison.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// Counter values, sorted by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values, sorted by name.
    pub gauges: BTreeMap<String, i64>,
    /// Deterministic value histograms, sorted by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Operational counters (checkpoint/resume bookkeeping), sorted by
    /// name. Excluded from [`MetricsSnapshot::to_json`] because resumed
    /// and uninterrupted runs legitimately differ here.
    pub operational: BTreeMap<String, u64>,
    /// Wall-clock timing histograms, sorted by name. Excluded from
    /// [`MetricsSnapshot::to_json`].
    pub timings: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Deterministic JSON export: counters, gauges, and value histograms
    /// in stable key order. Timings are deliberately absent so this
    /// string is byte-identical across runs on identical input.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.raw("{");
        self.write_deterministic_sections(&mut w);
        w.raw("}");
        w.finish()
    }

    /// Full JSON export including the non-deterministic `operational`
    /// and `timings` sections. Never byte-compare this.
    pub fn to_json_full(&self) -> String {
        let mut w = JsonWriter::new();
        w.raw("{");
        self.write_deterministic_sections(&mut w);
        w.key("operational");
        w.raw("{");
        for (name, value) in &self.operational {
            w.key(name);
            w.uint(*value);
        }
        w.raw("}");
        w.end_value();
        w.key("timings");
        write_histogram_map(&mut w, &self.timings);
        w.raw("}");
        w.finish()
    }

    /// The deterministic change between `earlier` and `self`.
    ///
    /// Used by the checkpoint layer to capture exactly what one shard
    /// contributed: take a snapshot before and after the shard runs
    /// (shards execute sequentially in checkpointed mode, so nothing
    /// else moves the counters in between) and persist the difference.
    /// Counters subtract; value histograms subtract bucket-wise when the
    /// layouts match (a layout change mid-run cannot happen — first
    /// registration wins — so a mismatch falls back to the later value
    /// whole). Zero counters and empty histograms are omitted. Gauges
    /// and timings are excluded: gauges are point-in-time and timings
    /// are wall-clock-derived, so neither can be replayed exactly.
    pub fn delta_since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let mut delta = MetricsSnapshot::default();
        for (name, later) in &self.counters {
            let before = earlier.counters.get(name).copied().unwrap_or(0);
            let diff = later.saturating_sub(before);
            if diff > 0 {
                delta.counters.insert(name.clone(), diff);
            }
        }
        for (name, later) in &self.histograms {
            let mut diff = later.clone();
            if let Some(before) = earlier.histograms.get(name) {
                if before.bounds == later.bounds {
                    for (d, b) in diff.counts.iter_mut().zip(&before.counts) {
                        *d = d.saturating_sub(*b);
                    }
                    diff.total = diff.total.saturating_sub(before.total);
                    diff.sum = diff.sum.saturating_sub(before.sum);
                }
            }
            if diff.total > 0 {
                delta.histograms.insert(name.clone(), diff);
            }
        }
        delta
    }

    fn write_deterministic_sections(&self, w: &mut JsonWriter) {
        w.key("counters");
        w.raw("{");
        for (name, value) in &self.counters {
            w.key(name);
            w.uint(*value);
        }
        w.raw("}");
        w.end_value();
        w.key("gauges");
        w.raw("{");
        for (name, value) in &self.gauges {
            w.key(name);
            w.int(*value);
        }
        w.raw("}");
        w.end_value();
        w.key("histograms");
        write_histogram_map(w, &self.histograms);
        w.end_value();
    }
}

fn write_histogram_map(w: &mut JsonWriter, map: &BTreeMap<String, HistogramSnapshot>) {
    w.raw("{");
    for (name, snap) in map {
        w.key(name);
        w.raw("{");
        w.key("bounds");
        w.raw("[");
        for b in &snap.bounds {
            w.uint(*b);
        }
        w.raw("]");
        w.end_value();
        w.key("counts");
        w.raw("[");
        for c in &snap.counts {
            w.uint(*c);
        }
        w.raw("]");
        w.end_value();
        w.key("total");
        w.uint(snap.total);
        w.key("sum");
        w.uint(snap.sum);
        w.raw("}");
        w.end_value();
    }
    w.raw("}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_handles_share_state() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("hits");
        let b = reg.counter("hits");
        a.inc();
        b.add(2);
        assert_eq!(reg.snapshot().counters["hits"], 3);
    }

    #[test]
    fn gauge_set_and_add() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("depth");
        g.set(10);
        g.add(-3);
        assert_eq!(reg.snapshot().gauges["depth"], 7);
    }

    #[test]
    fn histogram_first_registration_wins() {
        let reg = MetricsRegistry::new();
        let first = Buckets::new(&[10, 100]).unwrap();
        let second = Buckets::new(&[5]).unwrap();
        let h1 = reg.histogram("len", &first);
        let h2 = reg.histogram("len", &second);
        h1.observe(1);
        h2.observe(2);
        let snap = reg.snapshot();
        assert_eq!(snap.histograms["len"].bounds, vec![10, 100]);
        assert_eq!(snap.histograms["len"].total, 2);
    }

    #[test]
    fn to_json_excludes_timings_and_full_includes_them() {
        let reg = MetricsRegistry::new();
        reg.counter("events").add(5);
        let buckets = Buckets::new(&[1_000]).unwrap();
        reg.timing("detect.nanos", &buckets).observe(42);
        let snap = reg.snapshot();
        let golden = snap.to_json();
        assert!(golden.contains("\"events\":5"));
        assert!(
            !golden.contains("timings") && !golden.contains("detect.nanos"),
            "deterministic export leaked timing data: {golden}"
        );
        let full = snap.to_json_full();
        assert!(full.contains("\"timings\""));
        assert!(full.contains("detect.nanos"));
    }

    #[test]
    fn json_is_stable_key_ordered() {
        let reg = MetricsRegistry::new();
        reg.counter("zeta").inc();
        reg.counter("alpha").inc();
        let json = reg.snapshot().to_json();
        let alpha = json.find("alpha").unwrap();
        let zeta = json.find("zeta").unwrap();
        assert!(alpha < zeta, "keys must serialise sorted: {json}");
    }

    #[test]
    fn empty_registry_exports_empty_sections() {
        let json = MetricsRegistry::new().snapshot().to_json();
        assert_eq!(json, r#"{"counters":{},"gauges":{},"histograms":{}}"#);
    }

    #[test]
    fn operational_counters_stay_out_of_the_deterministic_export() {
        let reg = MetricsRegistry::new();
        reg.counter("events").add(5);
        reg.operational("checkpoint.shards_resumed").add(3);
        let snap = reg.snapshot();
        let golden = snap.to_json();
        assert!(
            !golden.contains("checkpoint.shards_resumed") && !golden.contains("operational"),
            "operational counters leaked into the deterministic export: {golden}"
        );
        let full = snap.to_json_full();
        assert!(full.contains("\"operational\""));
        assert!(full.contains("\"checkpoint.shards_resumed\":3"));
        // And they never travel in a replayable delta either.
        let delta = snap.delta_since(&MetricsSnapshot::default());
        assert!(delta.operational.is_empty());
    }

    #[test]
    fn delta_then_absorb_reproduces_the_original_counters() {
        let buckets = Buckets::new(&[10, 100]).unwrap();
        let reg = MetricsRegistry::new();
        reg.counter("shard.before").add(3);
        reg.histogram("len", &buckets).observe(5);
        let before = reg.snapshot();

        reg.counter("shard.before").add(4);
        reg.counter("shard.new").add(7);
        reg.histogram("len", &buckets).observe(50);
        reg.histogram("len", &buckets).observe(500);
        // Untouched metrics must not appear in the delta at all.
        reg.gauge("depth").set(9);
        let delta = reg.snapshot().delta_since(&before);

        assert_eq!(delta.counters.get("shard.before"), Some(&4));
        assert_eq!(delta.counters.get("shard.new"), Some(&7));
        assert_eq!(delta.histograms["len"].total, 2);
        assert_eq!(delta.histograms["len"].counts, vec![0, 1, 1]);
        assert!(delta.gauges.is_empty(), "gauges are not replayable");
        assert!(delta.timings.is_empty(), "timings never leave the process");

        // Replaying the delta into a registry at the `before` state
        // reproduces the exact deterministic end state.
        let resumed = MetricsRegistry::new();
        resumed.counter("shard.before").add(3);
        resumed.histogram("len", &buckets).observe(5);
        resumed.absorb(&delta).unwrap();
        let end = resumed.snapshot();
        assert_eq!(end.counters, reg.snapshot().counters);
        assert_eq!(end.histograms, reg.snapshot().histograms);
    }

    #[test]
    fn absorb_refuses_conflicting_histogram_layouts() {
        let reg = MetricsRegistry::new();
        reg.histogram("len", &Buckets::new(&[10]).unwrap())
            .observe(1);
        let mut delta = MetricsSnapshot::default();
        delta.histograms.insert(
            "len".into(),
            HistogramSnapshot::empty(&Buckets::new(&[10, 20]).unwrap()),
        );
        assert!(reg.absorb(&delta).is_err());
    }
}
