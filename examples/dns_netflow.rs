//! Applying BAYWATCH to DNS and Netflow sources (§X of the paper).
//!
//! * DNS: resolver caching subsamples the beacon to the record's TTL, and
//!   regional aggregation blurs per-host behaviour — yet the logged stream
//!   stays periodic and detectable.
//! * Netflow: no domain names, so the pair key degrades to IP addresses
//!   and the language-model indicator is unavailable; periodicity
//!   detection itself is unaffected.
//!
//! ```text
//! cargo run --release --example dns_netflow
//! ```

#![warn(clippy::unwrap_used)]

use baywatch::core::pipeline::{Baywatch, BaywatchConfig};
use baywatch::core::record::LogRecord;
use baywatch::netsim::dns::{aggregate_behind_resolver, cache_filter};
use baywatch::netsim::netflow::flows_from_proxy;
use baywatch::netsim::synth::{random_arrivals, SyntheticBeacon};
use baywatch::netsim::types::{HostId, ProxyEvent};
use baywatch::timeseries::detector::{DetectorConfig, PeriodicityDetector};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let detector = PeriodicityDetector::new(DetectorConfig::default());

    // ---- DNS: caching. -------------------------------------------------
    println!("--- DNS with resolver caching ---");
    let raw_beacon = SyntheticBeacon {
        period: 60.0,
        gaussian_sigma: 1.0,
        count: 1_000,
        ..Default::default()
    }
    .generate(5);
    let logged = cache_filter(&raw_beacon, 300);
    println!(
        "underlying beacon: {} requests at 60 s; DNS log after 300 s TTL: {} queries",
        raw_beacon.len(),
        logged.len()
    );
    let report = detector.detect(&logged)?;
    let best = report
        .best()
        .ok_or("cached beacon lost its periodicity — §X invariant broken")?;
    println!(
        "detected period in DNS log: {:.0} s — the cache-expiry cadence (TTL rounded \
         up to the next 60 s beacon slot), as §X predicts\n",
        best.period
    );
    // Expiry lands on the next grid slot after the 300 s TTL, so the
    // observed renewal period lies between TTL and TTL + beacon period.
    assert!(
        best.period >= 295.0 && best.period <= 365.0,
        "{}",
        best.period
    );

    // ---- DNS: aggregation. ----------------------------------------------
    println!("--- DNS behind an aggregating resolver ---");
    let client_a = SyntheticBeacon {
        period: 240.0,
        count: 300,
        ..Default::default()
    }
    .generate(7);
    let client_b: Vec<u64> = random_arrivals(1_000_000, 250, 400.0, 11);
    let merged = aggregate_behind_resolver(
        HostId(9),
        &[(HostId(1), client_a), (HostId(2), client_b)],
        "c2.evil.example",
    );
    let ts: Vec<u64> = merged.iter().map(|e| e.timestamp).collect();
    let report = detector.detect(&ts)?;
    match report.best() {
        Some(best) => println!(
            "aggregated view still shows the periodic client: {:.0} s (score {:.2})\n",
            best.period, best.acf_score
        ),
        None => println!("aggregation buried the periodic client (the §X caveat)\n"),
    }

    // ---- Netflow. --------------------------------------------------------
    println!("--- Netflow (no domain names) ---");
    let mut events = Vec::new();
    let beacon = SyntheticBeacon {
        period: 120.0,
        count: 400,
        ..Default::default()
    };
    for t in beacon.generate(13) {
        events.push(ProxyEvent {
            timestamp: t,
            host: HostId(3),
            source_ip: 0x0A00_0003,
            domain: "hidden-by-netflow.example".into(),
            url_path: "x".into(),
        });
    }
    for t in random_arrivals(1_000_000, 300, 300.0, 17) {
        events.push(ProxyEvent {
            timestamp: t,
            host: HostId(4),
            source_ip: 0x0A00_0004,
            domain: "busy-site.example".into(),
            url_path: "y".into(),
        });
    }
    let flows = flows_from_proxy(&events);
    // Build pipeline records keyed by destination IP string.
    let records: Vec<LogRecord> = flows
        .iter()
        .map(|f| LogRecord::new(f.timestamp, format!("{}", f.source), f.dst_string(), ""))
        .collect();
    let mut engine = Baywatch::new(BaywatchConfig {
        local_tau: 0.9,
        ..Default::default()
    });
    let report = engine.analyze(records);
    println!(
        "pipeline over flow records: {} pairs, {} periodic, top case: {}",
        report.stats.pairs,
        report.stats.periodic,
        report
            .ranked
            .first()
            .map(|rc| rc.case.pair.to_string())
            .unwrap_or_else(|| "-".into())
    );
    assert_eq!(
        report.stats.periodic, 1,
        "only the beaconing flow is periodic"
    );
    println!("note: with no domain names the LM indicator is neutral — ranking relies on");
    println!("periodicity strength and popularity, exactly the §X trade-off.");
    Ok(())
}
