//! Interval-series symbolization (§VI-A of the paper).
//!
//! Once dominant period(s) are known, the interval series of a candidate
//! case is mapped onto a three-letter alphabet:
//!
//! * `x` — the interval matches one of the dominant periods,
//! * `y` — the interval is zero (same-second burst),
//! * `z` — anything else.
//!
//! The symbolized series feeds three classifier features (Table II):
//! its Shannon entropy, its 3-gram histogram, and its compressibility.

/// Symbols of the three-letter alphabet.
pub const SYMBOL_MATCH: u8 = b'x';
/// Symbol for a zero interval.
pub const SYMBOL_ZERO: u8 = b'y';
/// Symbol for an interval matching no dominant period.
pub const SYMBOL_OTHER: u8 = b'z';

/// Symbolizes an interval list against a set of dominant periods.
///
/// An interval `i` maps to `x` when `|i − P| ≤ tolerance·P` for some
/// dominant period `P`, to `y` when `i == 0`, and to `z` otherwise.
///
/// # Example
///
/// ```
/// use baywatch_timeseries::symbolize::symbolize;
///
/// let intervals = [60.0, 61.0, 0.0, 59.5, 200.0, 60.2];
/// let s = symbolize(&intervals, &[60.0], 0.05);
/// assert_eq!(s, b"xxyxzx".to_vec());
/// ```
pub fn symbolize(intervals: &[f64], dominant_periods: &[f64], tolerance: f64) -> Vec<u8> {
    intervals
        .iter()
        .map(|&i| {
            if i == 0.0 {
                SYMBOL_ZERO
            } else if dominant_periods
                .iter()
                .any(|&p| p > 0.0 && (i - p).abs() <= tolerance * p)
            {
                SYMBOL_MATCH
            } else {
                SYMBOL_OTHER
            }
        })
        .collect()
}

/// Counts of overlapping n-grams in a symbolized series, keyed by the
/// n-gram bytes. Used as the "hist. of n-grams" feature (Table II, n = 3).
///
/// Returns an empty map when the series is shorter than `n`.
pub fn ngram_histogram(symbols: &[u8], n: usize) -> std::collections::HashMap<Vec<u8>, usize> {
    let mut hist = std::collections::HashMap::new();
    if n == 0 || symbols.len() < n {
        return hist;
    }
    for w in symbols.windows(n) {
        *hist.entry(w.to_vec()).or_insert(0) += 1;
    }
    hist
}

/// Fraction of symbols equal to `x` — a quick periodicity-purity measure
/// used by the weighted ranking filter.
pub fn match_fraction(symbols: &[u8]) -> f64 {
    if symbols.is_empty() {
        return 0.0;
    }
    symbols.iter().filter(|&&s| s == SYMBOL_MATCH).count() as f64 / symbols.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_symbolization() {
        let s = symbolize(&[10.0, 0.0, 50.0], &[10.0], 0.01);
        assert_eq!(s, vec![SYMBOL_MATCH, SYMBOL_ZERO, SYMBOL_OTHER]);
    }

    #[test]
    fn tolerance_band() {
        // 5% band around 100: 95..=105 match.
        let s = symbolize(&[95.0, 105.0, 94.9, 105.1], &[100.0], 0.05);
        assert_eq!(
            s,
            vec![SYMBOL_MATCH, SYMBOL_MATCH, SYMBOL_OTHER, SYMBOL_OTHER]
        );
    }

    #[test]
    fn multiple_dominant_periods() {
        // Conficker-style: both the burst interval and the gap are dominant.
        let s = symbolize(&[7.5, 10_800.0, 8.0, 42.0], &[8.0, 10_800.0], 0.1);
        assert_eq!(
            s,
            vec![SYMBOL_MATCH, SYMBOL_MATCH, SYMBOL_MATCH, SYMBOL_OTHER]
        );
    }

    #[test]
    fn empty_inputs() {
        assert!(symbolize(&[], &[60.0], 0.05).is_empty());
        let s = symbolize(&[10.0], &[], 0.05);
        assert_eq!(s, vec![SYMBOL_OTHER]);
    }

    #[test]
    fn zero_period_never_matches() {
        let s = symbolize(&[0.5], &[0.0], 0.5);
        assert_eq!(s, vec![SYMBOL_OTHER]);
    }

    #[test]
    fn ngram_histogram_counts_overlapping() {
        let h = ngram_histogram(b"xxxzx", 3);
        assert_eq!(h.get(b"xxx".as_slice()), Some(&1));
        assert_eq!(h.get(b"xxz".as_slice()), Some(&1));
        assert_eq!(h.get(b"xzx".as_slice()), Some(&1));
        assert_eq!(h.values().sum::<usize>(), 3);
    }

    #[test]
    fn ngram_histogram_degenerate() {
        assert!(ngram_histogram(b"xx", 3).is_empty());
        assert!(ngram_histogram(b"xxxx", 0).is_empty());
    }

    #[test]
    fn match_fraction_behaviour() {
        assert_eq!(match_fraction(b""), 0.0);
        assert_eq!(match_fraction(b"xxxx"), 1.0);
        assert_eq!(match_fraction(b"xzxz"), 0.5);
        assert_eq!(match_fraction(b"zzyy"), 0.0);
    }
}
