//! Robust periodicity detection — the core algorithm of BAYWATCH
//! (Hu et al., DSN 2016, §IV).
//!
//! BAYWATCH detects *beaconing*: low-and-slow periodic callbacks from
//! infected hosts to command-and-control infrastructure. Its detection
//! algorithm adapts the periodogram/autocorrelation combination of Vlachos
//! et al. (SDM 2005) and hardens it against real-world perturbations —
//! jitter, missing beacons, injected noise events, outages, and multi-scale
//! on/off behaviour. The pipeline per communication pair:
//!
//! 1. **Step 1 — periodogram analysis** ([`periodogram`]): the request
//!    timestamps are binned into a discrete series `x(n)`; its DFT power
//!    spectrum is compared against a threshold estimated by randomly
//!    permuting the series `m` times ([`permutation`]). Frequencies whose
//!    power exceeds what random shuffles can produce become **candidate
//!    periods**.
//! 2. **Step 2 — pruning** ([`prune`]): candidates smaller than the minimum
//!    observed inter-arrival interval are high-frequency noise; a one-sample
//!    t-test rejects candidates statistically incompatible with the observed
//!    intervals; under-sampled series are dropped.
//! 3. **Step 3 — verification** ([`acf`]): surviving candidates must sit on
//!    a *hill* (local maximum) of the autocorrelation function; the ACF peak
//!    both confirms the period and provides a periodicity-strength score for
//!    ranking.
//! 4. **Multi-period analysis** ([`gmm`]): a Gaussian mixture model over the
//!    interval list, with BIC model selection, exposes multi-scale behaviour
//!    such as Conficker's 7–8 s bursts repeated every 3 hours (Fig. 7 of the
//!    paper).
//!
//! All FFT work (periodogram, permutation rounds, ACF) runs through a
//! per-thread [`workspace::SpectralWorkspace`] that caches plans by
//! transform length and recycles scratch buffers, so a worker thread
//! plans each length once per window instead of once per transform.
//!
//! The one-stop entry point is [`detector::PeriodicityDetector`]:
//!
//! ```
//! use baywatch_timeseries::detector::{DetectorConfig, PeriodicityDetector};
//!
//! // A beacon every 60 s for 2 hours, as epoch-second timestamps.
//! let timestamps: Vec<u64> = (0..120).map(|i| 1_700_000_000 + i * 60).collect();
//!
//! let detector = PeriodicityDetector::new(DetectorConfig::default());
//! let report = detector.detect(&timestamps).unwrap();
//! assert!(report.is_periodic());
//! let best = report.best().unwrap();
//! assert!((best.period - 60.0).abs() < 2.0, "period = {}", best.period);
//! ```

pub mod acf;
pub mod budget;
pub mod detector;
pub mod gmm;
pub mod periodogram;
pub mod permutation;
pub mod prune;
pub mod ring;
pub mod series;
pub mod spectrogram;
pub mod symbolize;
pub mod workspace;

pub use budget::{BudgetSpec, ExecBudget};
pub use detector::{
    CandidatePeriod, DetectionReport, DetectorConfig, DetectorObs, PeriodicityDetector,
};
pub use ring::{IntervalSketch, RingEntry, RingPush, TimestampRing};
pub use series::{intervals_of, TimeSeries};
pub use workspace::SpectralWorkspace;

/// Errors produced by the time-series analysis.
#[derive(Debug, Clone, PartialEq)]
pub enum TimeSeriesError {
    /// Fewer events than required to attempt periodicity detection.
    TooFewEvents {
        /// Minimum number of events required.
        required: usize,
        /// Number of events provided.
        actual: usize,
    },
    /// Timestamps were not sorted in non-decreasing order.
    UnsortedTimestamps {
        /// Index of the first out-of-order timestamp.
        index: usize,
    },
    /// A configuration parameter was out of range.
    InvalidConfig {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable constraint that was violated.
        constraint: &'static str,
    },
    /// The observation window has zero length (all events share one
    /// timestamp), so no frequency content exists.
    ZeroSpan,
    /// The execution budget ([`budget::ExecBudget`]) was exhausted before
    /// the analysis completed; the pair should be recorded as timed out
    /// rather than non-periodic.
    BudgetExhausted,
    /// An underlying statistical routine failed.
    Stats(baywatch_stats::StatsError),
}

impl std::fmt::Display for TimeSeriesError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TimeSeriesError::TooFewEvents { required, actual } => {
                write!(f, "too few events: required {required}, got {actual}")
            }
            TimeSeriesError::UnsortedTimestamps { index } => {
                write!(f, "timestamps not sorted at index {index}")
            }
            TimeSeriesError::InvalidConfig { name, constraint } => {
                write!(f, "invalid config `{name}`: {constraint}")
            }
            TimeSeriesError::ZeroSpan => write!(f, "observation window has zero length"),
            TimeSeriesError::BudgetExhausted => {
                write!(f, "execution budget exhausted before analysis completed")
            }
            TimeSeriesError::Stats(e) => write!(f, "statistics error: {e}"),
        }
    }
}

impl std::error::Error for TimeSeriesError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TimeSeriesError::Stats(e) => Some(e),
            _ => None,
        }
    }
}

impl From<baywatch_stats::StatsError> for TimeSeriesError {
    fn from(e: baywatch_stats::StatsError) -> Self {
        TimeSeriesError::Stats(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = TimeSeriesError::TooFewEvents {
            required: 8,
            actual: 2,
        };
        assert!(e.to_string().contains("8"));
        assert!(!TimeSeriesError::ZeroSpan.to_string().is_empty());
        let e: TimeSeriesError = baywatch_stats::StatsError::ZeroVariance.into();
        assert!(matches!(e, TimeSeriesError::Stats(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
