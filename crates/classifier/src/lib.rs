//! Bootstrap classification for the BAYWATCH investigation phase (§VI).
//!
//! After the filtering phases, a large network still produces more
//! suspicious cases than analysts can examine exhaustively. The paper's
//! alternative: label a small sample manually, train a random forest on it,
//! classify the rest, and hand analysts the *most uncertain* residual cases
//! first. This crate provides the pieces:
//!
//! * [`features`] — the Table-II feature extractor (series statistics,
//!   symbolized-series entropy / n-grams / compressibility, language-model
//!   score, popularity),
//! * [`tree`] / [`forest`] — from-scratch CART decision trees and the
//!   200-tree random-forest ensemble with out-of-bag estimates and
//!   uncertainty ranking,
//! * [`compress`] — an LZ77 + Huffman compressor standing in for gzip in
//!   the compressibility feature (see DESIGN.md for the substitution).
//!
//! ```
//! use baywatch_classifier::features::{CaseFeatures, CaseInput};
//! use baywatch_classifier::forest::{ForestConfig, RandomForest};
//!
//! // Two toy populations: regular beacons (malicious) and noisy traffic.
//! let mut xs = Vec::new();
//! let mut ys = Vec::new();
//! for i in 0..60 {
//!     let malicious = i % 2 == 0;
//!     let input = CaseInput {
//!         intervals: if malicious { vec![60.0; 40] } else {
//!             (0..40).map(|j| ((i * 37 + j * 101) % 500) as f64 + 1.0).collect()
//!         },
//!         dominant_periods: if malicious { vec![60.0] } else { vec![] },
//!         power: if malicious { 10.0 } else { 0.4 },
//!         acf_score: if malicious { 0.9 } else { 0.05 },
//!         similar_sources: 1,
//!         lm_score: if malicious { -3.4 } else { -1.1 },
//!         popularity: 1e-4,
//!     };
//!     xs.push(CaseFeatures::extract(&input).to_vector());
//!     ys.push(malicious);
//! }
//! let rf = RandomForest::fit(&xs, &ys, &ForestConfig { n_trees: 20, ..Default::default() })
//!     .unwrap();
//! assert!(rf.oob_error().unwrap() < 0.2);
//! ```

pub mod compress;
pub mod features;
pub mod forest;
pub mod tree;

pub use features::{CaseFeatures, CaseInput, N_FEATURES};
pub use forest::{ForestConfig, RandomForest};
pub use tree::{DecisionTree, TrainError, TreeConfig};
