//! One-dimensional Gaussian mixture models for multi-period detection
//! (§IV, Fig. 7 of the paper).
//!
//! Malware such as Conficker beacons at two time scales at once: rapid 7–8 s
//! requests inside bursts, and a ~3 h gap between bursts. A single
//! period hypothesis cannot describe the interval list of such traffic, but
//! a Gaussian mixture over the intervals separates the scales cleanly — the
//! paper's Fig. 7 recovers components with means ≈ 175 s and ≈ 4.5 s (plus a
//! tiny outlier component) from a TDSS-style trace.
//!
//! This module implements EM for 1-D GMMs with k-means++-style
//! initialization, and model selection over the number of components via the
//! Bayesian information criterion (BIC).

use baywatch_stats::dist::Normal;
use rand::prelude::*;
use rand::rngs::StdRng;

use crate::budget::ExecBudget;
use crate::TimeSeriesError;

/// One Gaussian component of a fitted mixture.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GmmComponent {
    /// Component mean.
    pub mean: f64,
    /// Component standard deviation (floored at [`GmmConfig::min_std`]).
    pub std_dev: f64,
    /// Mixing weight in `[0, 1]`; weights of a fit sum to 1.
    pub weight: f64,
}

/// A fitted 1-D Gaussian mixture model.
#[derive(Debug, Clone, PartialEq)]
pub struct Gmm {
    components: Vec<GmmComponent>,
    log_likelihood: f64,
    n_observations: usize,
    iterations: usize,
    converged: bool,
}

impl Gmm {
    /// The fitted components, sorted by descending weight.
    pub fn components(&self) -> &[GmmComponent] {
        &self.components
    }

    /// Total log-likelihood of the training data under the fit.
    pub fn log_likelihood(&self) -> f64 {
        self.log_likelihood
    }

    /// Number of observations the model was fitted on.
    pub fn n_observations(&self) -> usize {
        self.n_observations
    }

    /// Number of EM iterations actually run.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Whether EM reached the log-likelihood tolerance before
    /// [`GmmConfig::max_iterations`]. A `false` here means the fit was cut
    /// off mid-climb and its parameters should be treated as approximate —
    /// the detector surfaces this in its diagnostics instead of silently
    /// treating every fit as converged.
    pub fn converged(&self) -> bool {
        self.converged
    }

    /// Bayesian information criterion: `−2·lnL + p·ln(n)` where a
    /// k-component 1-D mixture has `p = 3k − 1` free parameters.
    pub fn bic(&self) -> f64 {
        let k = self.components.len() as f64;
        let p = 3.0 * k - 1.0;
        -2.0 * self.log_likelihood + p * (self.n_observations as f64).ln()
    }

    /// Index of the component with the highest responsibility for `x`.
    pub fn assign(&self, x: f64) -> usize {
        let mut best = 0;
        let mut best_ll = f64::NEG_INFINITY;
        for (i, c) in self.components.iter().enumerate() {
            let n = Normal::new(c.mean, c.std_dev).expect("component std floored positive");
            let ll = c.weight.max(f64::MIN_POSITIVE).ln() + n.ln_pdf(x);
            if ll > best_ll {
                best_ll = ll;
                best = i;
            }
        }
        best
    }

    /// Density of the mixture at `x`.
    pub fn pdf(&self, x: f64) -> f64 {
        self.components
            .iter()
            .map(|c| {
                let n = Normal::new(c.mean, c.std_dev).expect("component std floored positive");
                c.weight * n.pdf(x)
            })
            .sum()
    }

    /// Component means with weight at least `min_weight`, sorted descending
    /// by weight — the "multiple periods" the paper reads off Fig. 7.
    pub fn dominant_means(&self, min_weight: f64) -> Vec<f64> {
        self.components
            .iter()
            .filter(|c| c.weight >= min_weight)
            .map(|c| c.mean)
            .collect()
    }
}

/// Configuration for GMM fitting and BIC model selection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GmmConfig {
    /// Maximum number of mixture components tried during model selection.
    pub max_components: usize,
    /// Maximum EM iterations per fit.
    pub max_iterations: usize,
    /// EM convergence tolerance on the log-likelihood.
    pub tolerance: f64,
    /// Floor for component standard deviations (prevents variance collapse
    /// onto repeated interval values).
    pub min_std: f64,
    /// RNG seed for the k-means++ initialization.
    pub seed: u64,
}

impl Default for GmmConfig {
    fn default() -> Self {
        Self {
            max_components: 4,
            max_iterations: 200,
            tolerance: 1e-6,
            min_std: 1e-3,
            seed: 0x6A4A,
        }
    }
}

/// Fits a GMM with exactly `k` components via EM.
///
/// # Errors
///
/// * [`TimeSeriesError::TooFewEvents`] if `data.len() < k` or data is empty,
/// * [`TimeSeriesError::InvalidConfig`] for `k == 0` or bad config values.
pub fn fit_gmm(data: &[f64], k: usize, config: &GmmConfig) -> Result<Gmm, TimeSeriesError> {
    fit_gmm_budgeted(data, k, config, &ExecBudget::unlimited())
}

/// Like [`fit_gmm`] under an [`ExecBudget`]: each EM iteration first
/// charges `n·k` work units (one E+M pass over `n` observations and `k`
/// components) and the fit aborts with
/// [`TimeSeriesError::BudgetExhausted`] once the budget is spent. With an
/// unlimited budget the result is byte-identical to [`fit_gmm`].
///
/// # Errors
///
/// As [`fit_gmm`], plus budget exhaustion.
pub fn fit_gmm_budgeted(
    data: &[f64],
    k: usize,
    config: &GmmConfig,
    budget: &ExecBudget,
) -> Result<Gmm, TimeSeriesError> {
    if k == 0 {
        return Err(TimeSeriesError::InvalidConfig {
            name: "k",
            constraint: "must be at least 1",
        });
    }
    if config.min_std <= 0.0 {
        return Err(TimeSeriesError::InvalidConfig {
            name: "min_std",
            constraint: "must be positive",
        });
    }
    if data.len() < k {
        return Err(TimeSeriesError::TooFewEvents {
            required: k,
            actual: data.len(),
        });
    }

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut means = kmeanspp_init(data, k, &mut rng, budget)?;
    let global_std = std_of(data).max(config.min_std);
    let mut stds = vec![global_std; k];
    let mut weights = vec![1.0 / k as f64; k];

    let n = data.len();
    let mut resp = vec![0.0f64; n * k];
    let mut prev_ll = f64::NEG_INFINITY;
    let mut ll = prev_ll;
    let mut iterations = 0usize;
    let mut converged = false;

    for _ in 0..config.max_iterations {
        budget.checkpoint((n * k) as u64)?;
        iterations += 1;
        // E-step: responsibilities via log-sum-exp.
        ll = 0.0;
        for (i, &x) in data.iter().enumerate() {
            let mut logs = vec![0.0f64; k];
            for j in 0..k {
                let nrm = Normal::new(means[j], stds[j]).expect("std floored positive");
                logs[j] = weights[j].max(f64::MIN_POSITIVE).ln() + nrm.ln_pdf(x);
            }
            let mx = logs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let sum_exp: f64 = logs.iter().map(|l| (l - mx).exp()).sum();
            let log_norm = mx + sum_exp.ln();
            ll += log_norm;
            for j in 0..k {
                resp[i * k + j] = (logs[j] - log_norm).exp();
            }
        }

        // M-step.
        for j in 0..k {
            let nj: f64 = (0..n).map(|i| resp[i * k + j]).sum();
            if nj < 1e-12 {
                // Dead component: re-seed it at a random data point.
                means[j] = data[rng.random_range(0..n)];
                stds[j] = global_std;
                weights[j] = 1e-6;
                continue;
            }
            let mu: f64 = (0..n).map(|i| resp[i * k + j] * data[i]).sum::<f64>() / nj;
            let var: f64 = (0..n)
                .map(|i| resp[i * k + j] * (data[i] - mu) * (data[i] - mu))
                .sum::<f64>()
                / nj;
            means[j] = mu;
            stds[j] = var.sqrt().max(config.min_std);
            weights[j] = nj / n as f64;
        }
        let wsum: f64 = weights.iter().sum();
        for w in weights.iter_mut() {
            *w /= wsum;
        }

        if (ll - prev_ll).abs() < config.tolerance * (1.0 + ll.abs()) {
            converged = true;
            break;
        }
        prev_ll = ll;
    }

    let mut components: Vec<GmmComponent> = (0..k)
        .map(|j| GmmComponent {
            mean: means[j],
            std_dev: stds[j],
            weight: weights[j],
        })
        .collect();
    components.sort_by(|a, b| b.weight.total_cmp(&a.weight));

    Ok(Gmm {
        components,
        log_likelihood: ll,
        n_observations: n,
        iterations,
        converged,
    })
}

/// Fits GMMs with 1..=`max_components` components and returns the fit with
/// the lowest BIC, together with the BIC of every candidate (for Fig. 7's
/// "BIC vs #components" panel).
///
/// # Errors
///
/// Returns the underlying error if even the single-component fit fails.
///
/// # Example
///
/// ```
/// use baywatch_timeseries::gmm::{select_gmm, GmmConfig};
///
/// // Two interval scales: ~5 s within bursts, ~175 s between bursts.
/// let mut data: Vec<f64> = Vec::new();
/// for i in 0..200 {
///     data.push(5.0 + (i % 5) as f64 * 0.1);
///     if i % 4 == 0 {
///         data.push(175.0 + (i % 7) as f64);
///     }
/// }
/// let (best, bics) = select_gmm(&data, &GmmConfig::default()).unwrap();
/// assert!(best.components().len() >= 2);
/// assert_eq!(bics.len(), 4);
/// let means = best.dominant_means(0.05);
/// assert!(means.iter().any(|&m| (m - 5.0).abs() < 2.0));
/// assert!(means.iter().any(|&m| (m - 178.0).abs() < 8.0));
/// ```
pub fn select_gmm(data: &[f64], config: &GmmConfig) -> Result<(Gmm, Vec<f64>), TimeSeriesError> {
    select_gmm_budgeted(data, config, &ExecBudget::unlimited())
}

/// Like [`select_gmm`] under an [`ExecBudget`]. Budget exhaustion at *any*
/// `k` aborts the whole sweep with
/// [`TimeSeriesError::BudgetExhausted`] — unlike a data-shortage error,
/// which merely ends the scan at the largest feasible `k` — so a timed-out
/// pair is never misreported as "best fit so far".
///
/// # Errors
///
/// As [`select_gmm`], plus budget exhaustion.
pub fn select_gmm_budgeted(
    data: &[f64],
    config: &GmmConfig,
    budget: &ExecBudget,
) -> Result<(Gmm, Vec<f64>), TimeSeriesError> {
    if config.max_components == 0 {
        return Err(TimeSeriesError::InvalidConfig {
            name: "max_components",
            constraint: "must be at least 1",
        });
    }
    let mut best: Option<Gmm> = None;
    let mut bics = Vec::new();
    for k in 1..=config.max_components {
        match fit_gmm_budgeted(data, k, config, budget) {
            Ok(g) => {
                let bic = g.bic();
                bics.push(bic);
                let better = match &best {
                    None => true,
                    Some(b) => bic < b.bic(),
                };
                if better {
                    best = Some(g);
                }
            }
            Err(TimeSeriesError::BudgetExhausted) => {
                return Err(TimeSeriesError::BudgetExhausted);
            }
            Err(e) => {
                if k == 1 {
                    return Err(e);
                }
                // Not enough data for more components: stop the scan.
                break;
            }
        }
    }
    // Unreachable in practice — the k = 1 outcome either sets `best` or
    // returns early above — but degrade to an error, not a panic.
    best.map(|g| (g, bics))
        .ok_or(TimeSeriesError::TooFewEvents {
            required: 1,
            actual: data.len(),
        })
}

/// k-means++ style seeding: first center uniform, the rest proportional to
/// squared distance from the nearest existing center. Each round scans all
/// of `data` against every existing center, so the budget is charged per
/// round like the EM iterations are.
fn kmeanspp_init(
    data: &[f64],
    k: usize,
    rng: &mut StdRng,
    budget: &ExecBudget,
) -> Result<Vec<f64>, TimeSeriesError> {
    let mut centers = Vec::with_capacity(k);
    centers.push(data[rng.random_range(0..data.len())]);
    while centers.len() < k {
        budget.checkpoint((data.len() * centers.len()) as u64)?;
        let d2: Vec<f64> = data
            .iter()
            .map(|&x| {
                centers
                    .iter()
                    .map(|&c| (x - c) * (x - c))
                    .fold(f64::INFINITY, f64::min)
            })
            .collect();
        let total: f64 = d2.iter().sum();
        if total <= 0.0 {
            // All points coincide with existing centers; duplicate one.
            centers.push(centers[0]);
            continue;
        }
        let mut target = rng.random_range(0.0..total);
        let mut chosen = data.len() - 1;
        for (i, &d) in d2.iter().enumerate() {
            if target < d {
                chosen = i;
                break;
            }
            target -= d;
        }
        centers.push(data[chosen]);
    }
    Ok(centers)
}

fn std_of(data: &[f64]) -> f64 {
    let n = data.len() as f64;
    let mean = data.iter().sum::<f64>() / n;
    let var = data.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
    var.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn two_cluster_data(seed: u64) -> Vec<f64> {
        // 300 points near 5, 100 points near 175 — Conficker-like interval
        // structure, deterministic jitter.
        let mut rng = StdRng::seed_from_u64(seed);
        let mut data = Vec::new();
        for _ in 0..300 {
            data.push(5.0 + rng.random_range(-1.0..1.0));
        }
        for _ in 0..100 {
            data.push(175.0 + rng.random_range(-8.0..8.0));
        }
        data
    }

    #[test]
    fn single_component_recovers_mean() {
        let data: Vec<f64> = (0..100).map(|i| 50.0 + (i % 10) as f64 * 0.1).collect();
        let g = fit_gmm(&data, 1, &GmmConfig::default()).unwrap();
        assert_eq!(g.components().len(), 1);
        let c = g.components()[0];
        assert!((c.mean - 50.45).abs() < 0.2, "mean = {}", c.mean);
        assert!((c.weight - 1.0).abs() < 1e-9);
    }

    #[test]
    fn two_components_separate_scales() {
        let data = two_cluster_data(3);
        let g = fit_gmm(&data, 2, &GmmConfig::default()).unwrap();
        let mut means: Vec<f64> = g.components().iter().map(|c| c.mean).collect();
        means.sort_by(f64::total_cmp);
        assert!((means[0] - 5.0).abs() < 2.0, "means = {means:?}");
        assert!((means[1] - 175.0).abs() < 10.0, "means = {means:?}");
        // Weight ratio ~ 3:1.
        let big = g.components()[0];
        assert!(big.weight > 0.6);
    }

    #[test]
    fn weights_sum_to_one() {
        let data = two_cluster_data(11);
        for k in 1..=4 {
            let g = fit_gmm(&data, k, &GmmConfig::default()).unwrap();
            let sum: f64 = g.components().iter().map(|c| c.weight).sum();
            assert!((sum - 1.0).abs() < 1e-9, "k={k} sum={sum}");
        }
    }

    #[test]
    fn bic_prefers_two_for_bimodal() {
        let data = two_cluster_data(17);
        let (best, bics) = select_gmm(&data, &GmmConfig::default()).unwrap();
        assert!(bics[1] < bics[0], "2-component BIC must beat 1-component");
        assert!(best.components().len() >= 2);
    }

    #[test]
    fn bic_prefers_one_for_unimodal() {
        let mut rng = StdRng::seed_from_u64(5);
        let data: Vec<f64> = (0..400)
            .map(|_| 60.0 + rng.random_range(-0.5..0.5))
            .collect();
        let (best, _bics) = select_gmm(&data, &GmmConfig::default()).unwrap();
        // Tight unimodal data: dominant means should all be near 60.
        for m in best.dominant_means(0.2) {
            assert!((m - 60.0).abs() < 2.0, "mean = {m}");
        }
    }

    #[test]
    fn assign_routes_points_to_right_cluster() {
        let data = two_cluster_data(23);
        let g = fit_gmm(&data, 2, &GmmConfig::default()).unwrap();
        let c5 = g.assign(5.0);
        let c175 = g.assign(175.0);
        assert_ne!(c5, c175);
        assert_eq!(g.assign(4.0), c5);
        assert_eq!(g.assign(180.0), c175);
    }

    #[test]
    fn pdf_is_positive_and_peaks_at_clusters() {
        let data = two_cluster_data(31);
        let g = fit_gmm(&data, 2, &GmmConfig::default()).unwrap();
        assert!(g.pdf(5.0) > g.pdf(90.0));
        assert!(g.pdf(175.0) > g.pdf(90.0));
        assert!(g.pdf(90.0) >= 0.0);
    }

    #[test]
    fn dominant_means_filters_by_weight() {
        let data = two_cluster_data(41);
        let g = fit_gmm(&data, 2, &GmmConfig::default()).unwrap();
        assert_eq!(g.dominant_means(0.0).len(), 2);
        assert!(g.dominant_means(0.9).len() <= 1);
    }

    #[test]
    fn errors_on_bad_input() {
        assert!(fit_gmm(&[], 1, &GmmConfig::default()).is_err());
        assert!(fit_gmm(&[1.0, 2.0], 3, &GmmConfig::default()).is_err());
        assert!(fit_gmm(&[1.0, 2.0], 0, &GmmConfig::default()).is_err());
        let bad = GmmConfig {
            min_std: 0.0,
            ..Default::default()
        };
        assert!(fit_gmm(&[1.0, 2.0], 1, &bad).is_err());
        let bad_sel = GmmConfig {
            max_components: 0,
            ..Default::default()
        };
        assert!(select_gmm(&[1.0, 2.0], &bad_sel).is_err());
    }

    #[test]
    fn constant_data_does_not_collapse() {
        // All identical intervals: the std floor must prevent NaNs.
        let data = vec![60.0; 50];
        let g = fit_gmm(&data, 2, &GmmConfig::default()).unwrap();
        for c in g.components() {
            assert!(c.std_dev > 0.0);
            assert!(c.mean.is_finite());
            assert!(c.weight.is_finite());
        }
        assert!(g.log_likelihood().is_finite());
    }

    #[test]
    fn deterministic_given_seed() {
        let data = two_cluster_data(47);
        let a = fit_gmm(&data, 2, &GmmConfig::default()).unwrap();
        let b = fit_gmm(&data, 2, &GmmConfig::default()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn convergence_diagnostics_exposed() {
        let data = two_cluster_data(61);
        let g = fit_gmm(&data, 2, &GmmConfig::default()).unwrap();
        assert!(g.converged(), "well-separated clusters converge under 200");
        assert!(g.iterations() >= 1);
        assert!(g.iterations() <= GmmConfig::default().max_iterations);

        // One iteration cannot reach tolerance from ll = -inf on real data.
        let starved = GmmConfig {
            max_iterations: 1,
            ..Default::default()
        };
        let g = fit_gmm(&data, 2, &starved).unwrap();
        assert_eq!(g.iterations(), 1);
        assert!(
            !g.converged(),
            "a single EM step must not claim convergence"
        );
    }

    #[test]
    fn budget_aborts_em_deterministically() {
        let data = two_cluster_data(67);
        let n = data.len() as u64;
        // Room for exactly 2 iterations at k = 2 (each charges 2n).
        let budget = ExecBudget::new(None, Some(4 * n));
        let err = fit_gmm_budgeted(&data, 2, &GmmConfig::default(), &budget);
        assert_eq!(err, Err(TimeSeriesError::BudgetExhausted));

        // Unlimited budget is byte-identical to the plain entry point.
        let a = fit_gmm_budgeted(&data, 2, &GmmConfig::default(), &ExecBudget::unlimited());
        let b = fit_gmm(&data, 2, &GmmConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn budgeted_select_propagates_exhaustion() {
        let data = two_cluster_data(71);
        // Enough for the k = 1 fit but not the k = 2 sweep: exhaustion must
        // surface as an error, not a silent "best so far".
        let budget = ExecBudget::new(None, Some(8 * data.len() as u64));
        let err = select_gmm_budgeted(&data, &GmmConfig::default(), &budget);
        assert_eq!(err, Err(TimeSeriesError::BudgetExhausted));

        let a = select_gmm_budgeted(&data, &GmmConfig::default(), &ExecBudget::unlimited());
        let b = select_gmm(&data, &GmmConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn select_reports_bic_per_k() {
        let data = two_cluster_data(53);
        let cfg = GmmConfig {
            max_components: 3,
            ..Default::default()
        };
        let (_best, bics) = select_gmm(&data, &cfg).unwrap();
        assert_eq!(bics.len(), 3);
        assert!(bics.iter().all(|b| b.is_finite()));
    }
}
