//! The shared bootstrap-classification experiment behind Table IV and
//! Fig. 11.
//!
//! The paper flags 2,352 distinct destinations over the 5-month trace,
//! manually labels one month, trains a 200-tree random forest on Table-II
//! features and classifies the rest, scoring against VirusTotal-derived
//! ground truth. Here the flagged-case population is synthesized at case
//! level (benign periodic services vs malware beacons, both passed through
//! the *real* detector so the features are genuine detector outputs), the
//! forest is trained on the first `train_fraction` of cases, and the rest
//! is evaluated.

use baywatch_classifier::forest::ForestConfig;
use baywatch_core::investigate::{ConfusionMatrix, Investigator};
use baywatch_core::pair::CommunicationPair;
use baywatch_core::rank::BeaconCase;
use baywatch_core::CoreError;
use baywatch_langmodel::dga::{DgaGenerator, DgaStyle};
use baywatch_langmodel::{corpus, DomainScorer};
use baywatch_netsim::synth::SyntheticBeacon;
use baywatch_timeseries::detector::{DetectorConfig, PeriodicityDetector};
use rand::prelude::*;
use rand::rngs::StdRng;

/// Experiment parameters.
#[derive(Debug, Clone, Copy)]
pub struct BootstrapExperiment {
    /// Total flagged cases to synthesize (paper: 2,352).
    pub n_cases: usize,
    /// Fraction of cases that are truly malicious (paper: 189/2352 ≈ 8%).
    pub malicious_fraction: f64,
    /// Fraction of cases used as the manually-labeled training window
    /// (paper: one month of five).
    pub train_fraction: f64,
    /// Number of forest trees (paper: 200).
    pub n_trees: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BootstrapExperiment {
    fn default() -> Self {
        Self {
            n_cases: 800,
            malicious_fraction: 0.08,
            train_fraction: 0.2,
            n_trees: 200,
            seed: 42,
        }
    }
}

/// Experiment outcome.
#[derive(Debug, Clone)]
pub struct BootstrapOutcome {
    /// Confusion matrix over the test split (Table IV).
    pub confusion: ConfusionMatrix,
    /// `curve[k]` = false negatives remaining after examining `k` test
    /// cases in uncertainty order (Fig. 11).
    pub fn_curve: Vec<usize>,
    /// Training-set size.
    pub n_train: usize,
    /// Test-set size.
    pub n_test: usize,
    /// Out-of-bag error of the trained forest.
    pub oob_error: Option<f64>,
    /// Named Table-II feature importances, descending.
    pub feature_importances: Vec<(&'static str, f64)>,
}

/// Synthesizes one labeled case through the real detector.
fn make_case(
    idx: usize,
    malicious: bool,
    scorer: &DomainScorer,
    detector: &PeriodicityDetector,
    rng: &mut StdRng,
) -> Option<(BeaconCase, bool)> {
    let (domain, period, sigma_rel, p_miss, popularity) = if malicious {
        let style = match idx % 3 {
            0 => DgaStyle::RandomAlpha,
            1 => DgaStyle::HexFragment,
            _ => DgaStyle::Pronounceable,
        };
        let domain = DgaGenerator::new(style, idx as u64).generate();
        // Table V periods: 30–960 s, log-uniform.
        let period = 30.0 * 32f64.powf(rng.random_range(0.0..1.0));
        (
            domain,
            period,
            rng.random_range(0.01..0.05),
            rng.random_range(0.0..0.3),
            rng.random_range(0.00005..0.002),
        )
    } else {
        // Benign periodic lookalikes: niche pollers with human-chosen
        // names and round periods.
        let seeds = corpus::seed_domains();
        let base = seeds[idx % seeds.len()];
        let domain = format!("poll.{base}");
        // `choose` on a non-empty literal cannot fail; fall back to the
        // most common round period rather than unwrapping.
        let period = [120.0, 300.0, 600.0, 900.0, 1800.0, 3600.0]
            .choose(rng)
            .copied()
            .unwrap_or(300.0);
        (
            domain,
            period,
            rng.random_range(0.002..0.02),
            rng.random_range(0.0..0.1),
            rng.random_range(0.0005..0.009),
        )
    };

    let span = 86_400.0f64;
    let count = ((span / period) as usize).clamp(20, 400);
    let ts = SyntheticBeacon {
        period,
        gaussian_sigma: period * sigma_rel,
        p_miss,
        add_rate: rng.random_range(0.0..0.1),
        count,
        start: 1_000_000,
    }
    .generate(idx as u64 ^ 0xB00);

    let report = detector.detect(&ts).ok()?;
    if !report.is_periodic() {
        return None;
    }
    let intervals = report.intervals.clone();
    let case = BeaconCase {
        pair: CommunicationPair::new(format!("host-{idx}"), &domain),
        intervals,
        candidates: report.candidates,
        url_tokens: Default::default(),
        popularity,
        lm_score: scorer.score_per_char(&domain),
        similar_sources: if malicious {
            rng.random_range(1..6)
        } else {
            rng.random_range(1..20)
        },
    };
    Some((case, malicious))
}

/// Runs the experiment.
///
/// Fails only when the synthesized training split is degenerate (e.g. a
/// configuration so small that no cases survive the detector), in which
/// case the forest cannot be trained.
pub fn run(cfg: &BootstrapExperiment) -> Result<BootstrapOutcome, CoreError> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let scorer = DomainScorer::train(corpus::training_corpus(), 3);
    let detector = PeriodicityDetector::new(DetectorConfig::default());

    let mut cases: Vec<(BeaconCase, bool)> = Vec::with_capacity(cfg.n_cases);
    let mut idx = 0usize;
    while cases.len() < cfg.n_cases {
        let malicious = rng.random_range(0.0..1.0) < cfg.malicious_fraction;
        if let Some(labeled) = make_case(idx, malicious, &scorer, &detector, &mut rng) {
            cases.push(labeled);
        }
        idx += 1;
        if idx > cfg.n_cases * 10 {
            break; // safety valve; should not trigger
        }
    }
    cases.shuffle(&mut rng);

    let n_train = ((cases.len() as f64 * cfg.train_fraction).round() as usize)
        .clamp(10, cases.len().saturating_sub(10));
    let (train, test) = cases.split_at(n_train);

    let forest_cfg = ForestConfig {
        n_trees: cfg.n_trees,
        ..Default::default()
    };
    let investigator = Investigator::train(train, &forest_cfg)?;

    Ok(BootstrapOutcome {
        confusion: investigator.confusion(test),
        fn_curve: investigator.false_negative_curve(test),
        n_train,
        n_test: test.len(),
        oob_error: investigator.forest().oob_error(),
        feature_importances: investigator.feature_importances(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_experiment_runs_and_separates() {
        let out = run(&BootstrapExperiment {
            n_cases: 60,
            n_trees: 20,
            ..Default::default()
        })
        .expect("experiment runs");
        assert_eq!(out.confusion.total(), out.n_test);
        assert!(
            out.confusion.accuracy() > 0.85,
            "accuracy = {}",
            out.confusion.accuracy()
        );
        // Fig. 11 shape: non-increasing, ends at zero.
        assert!(out.fn_curve.windows(2).all(|w| w[0] >= w[1]));
        assert_eq!(*out.fn_curve.last().unwrap(), 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = BootstrapExperiment {
            n_cases: 60,
            n_trees: 10,
            ..Default::default()
        };
        let a = run(&cfg).expect("experiment runs");
        let b = run(&cfg).expect("experiment runs");
        assert_eq!(a.confusion, b.confusion);
    }
}
