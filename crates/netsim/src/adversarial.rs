//! Adversarial trace generators for deadline and load-shedding tests.
//!
//! The deployment constraint of §VIII-B2 (26M pairs must clear the daily
//! window in ~1.5 h) means the pipeline has to survive *pathological*
//! pairs: series whose analysis cost is wildly out of proportion to their
//! event count. These generators build such inputs deterministically — no
//! RNG — so budget/timeout tests trip at exactly the same checkpoint on
//! every machine.

/// A sparse strided beacon: `events` timestamps exactly `stride` seconds
/// apart starting at `start`.
///
/// At time scale 1 the binned series spans `events · stride` bins, so a
/// modest event count (hundreds) produces a series of hundreds of
/// thousands of bins — each permutation round then costs that many work
/// units, which trips an ops-metered
/// [`ExecBudget`](../../baywatch_timeseries/budget/struct.ExecBudget.html)
/// deterministically while a normal beacon pair stays far under the same
/// ceiling.
///
/// # Panics
///
/// Panics if `stride == 0`.
pub fn pathological_sparse_beacon(start: u64, events: usize, stride: u64) -> Vec<u64> {
    assert!(stride > 0, "stride must be positive");
    (0..events as u64).map(|i| start + i * stride).collect()
}

/// An extreme-length series: `events` timestamps spread evenly over `span`
/// seconds (the last event lands at `start + span`).
///
/// Convenience wrapper over [`pathological_sparse_beacon`] when the test
/// wants to pin the total span rather than the stride.
///
/// # Panics
///
/// Panics if `events < 2` or the implied stride is zero (`span` shorter
/// than the number of gaps).
pub fn extreme_length_timestamps(start: u64, events: usize, span: u64) -> Vec<u64> {
    assert!(events >= 2, "need at least two events to span an interval");
    let stride = span / (events as u64 - 1);
    pathological_sparse_beacon(start, events, stride)
}

/// An EM-hostile interval list: `n` intervals forming two nearly coincident
/// heavy clusters (separated by far less than their within-cluster spread)
/// plus a handful of extreme outliers.
///
/// Overlapping clusters give the GMM likelihood a long, flat ridge — EM
/// makes microscopic progress per iteration and burns its full
/// `max_iterations` allowance at every component count of the BIC sweep,
/// which is exactly the workload the per-pair budget exists to bound. The
/// list is deterministic and strictly positive.
pub fn em_hostile_intervals(n: usize) -> Vec<f64> {
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let v = match i % 16 {
            // Two interleaved clusters 0.001 apart with spread ~0.5: no
            // component assignment is ever decisive.
            0..=6 => 60.0 + (i % 7) as f64 * 0.08,
            7..=13 => 60.001 + (i % 7) as f64 * 0.08,
            // Rare extreme outliers keep a wide component alive.
            14 => 3_600.0 + i as f64,
            _ => 7_200.0 + i as f64,
        };
        out.push(v);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparse_beacon_is_exact_grid() {
        let ts = pathological_sparse_beacon(50_000, 300, 2_333);
        assert_eq!(ts.len(), 300);
        assert_eq!(ts[0], 50_000);
        assert!(ts.windows(2).all(|w| w[1] - w[0] == 2_333));
        // The property the budget tests rely on: span (≈ bins at scale 1)
        // is several hundred thousand while the event count stays tiny.
        let span = ts[ts.len() - 1] - ts[0];
        assert_eq!(span, 299 * 2_333);
        assert!(span > 500_000);
    }

    #[test]
    fn extreme_length_pins_the_span() {
        let ts = extreme_length_timestamps(1_000, 100, 990_000);
        assert_eq!(ts.len(), 100);
        assert_eq!(ts[ts.len() - 1] - ts[0], 99 * (990_000 / 99));
    }

    #[test]
    #[should_panic]
    fn zero_stride_rejected() {
        pathological_sparse_beacon(0, 10, 0);
    }

    #[test]
    fn em_hostile_list_shape() {
        let v = em_hostile_intervals(160);
        assert_eq!(v.len(), 160);
        assert!(v.iter().all(|&x| x > 0.0));
        // Both near-coincident clusters and extreme outliers are present.
        assert!(v.iter().filter(|&&x| x < 100.0).count() > 100);
        assert!(v.iter().any(|&x| x > 3_000.0));
        // Deterministic.
        assert_eq!(v, em_hostile_intervals(160));
    }
}
