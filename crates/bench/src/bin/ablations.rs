//! Ablations of the design choices DESIGN.md §5 calls out:
//!
//! 1. **ACF verification on/off** — how much the Step-3 verifier cuts the
//!    false-positive rate on irregular (memoryless) traffic,
//! 2. **t-test significance α** — pruning sensitivity,
//! 3. **local-whitelist τ_P sweep** — survivor counts per threshold,
//! 4. **analysis time scale** — 1 s vs 60 s bins vs slow-beacon
//!    detectability (the paper's daily/weekly/monthly operation).

#![warn(clippy::unwrap_used)]

use baywatch_bench::{f, render_table, save_json};
use baywatch_core::pipeline::{Baywatch, BaywatchConfig};
use baywatch_core::record::LogRecord;
use baywatch_netsim::enterprise::{EnterpriseConfig, EnterpriseSimulator};
use baywatch_netsim::synth::SyntheticBeacon;
use baywatch_timeseries::acf::HillParams;
use baywatch_timeseries::detector::{DetectorConfig, PeriodicityDetector};
use baywatch_timeseries::prune::PruneConfig;

/// What the Step-3 verifier buys: on real beacons, how many *spurious*
/// periods (harmonics, leakage) survive into the report; on bursty
/// session-structured traffic, how often a bogus periodicity is claimed.
/// (Memoryless traffic is already killed by the permutation threshold and
/// pruning, so the verifier's value shows on these harder inputs.)
fn ablate_acf() {
    println!("--- ablation 1: ACF verification (Step 3) on/off ---");
    let trials = 40u64;

    let configs = [
        ("with ACF verification", HillParams::default()),
        (
            "verification disabled",
            HillParams {
                min_score: f64::NEG_INFINITY,
                ..Default::default()
            },
        ),
    ];

    let mut rows = Vec::new();
    for (label, hill) in configs {
        let det = PeriodicityDetector::new(DetectorConfig {
            hill,
            ..Default::default()
        });
        let mut spurious = 0usize;
        let mut detections = 0usize;
        let mut burst_fp = 0usize;
        for t in 0..trials {
            // Positive: noisy beacon — count reported periods that are NOT
            // the true 75 s (within 10%).
            let beacon = SyntheticBeacon {
                period: 75.0,
                gaussian_sigma: 3.0,
                p_miss: 0.2,
                add_rate: 0.3,
                count: 200,
                ..Default::default()
            }
            .generate(t * 7 + 3);
            if let Ok(r) = det.detect(&beacon) {
                if r.is_periodic() {
                    detections += 1;
                }
                spurious += r
                    .candidates
                    .iter()
                    .filter(|c| (c.period - 75.0).abs() > 7.5)
                    .count();
            }
            // Hard negative: session bursts — 5-40 requests seconds apart,
            // then long irregular gaps (human-like, not beaconing).
            let mut ts = Vec::new();
            let mut base = 0u64;
            for s in 0..12u64 {
                base += 1800 + (t * 131 + s * s * 977) % 5200;
                let burst_len = 5 + ((t + s) * 37 % 36);
                for b in 0..burst_len {
                    ts.push(base + b * (1 + (s + b) % 4));
                }
            }
            ts.sort_unstable();
            if det.detect(&ts).map(|r| r.is_periodic()).unwrap_or(false) {
                burst_fp += 1;
            }
        }
        rows.push(vec![
            label.into(),
            f(detections as f64 / trials as f64, 2),
            f(spurious as f64 / trials as f64, 2),
            f(burst_fp as f64 / trials as f64, 2),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "configuration",
                "detection rate",
                "spurious periods/trial",
                "burst-traffic FP rate",
            ],
            &rows
        )
    );
    println!(
        "(verification keeps the detection rate while stripping harmonics and session bursts)\n"
    );
}

/// Pruning α sensitivity on a jittered beacon.
fn ablate_alpha() {
    println!("--- ablation 2: t-test significance level α ---");
    let trials = 30u64;
    let mut rows = Vec::new();
    for alpha in [0.01, 0.05, 0.20] {
        let det = PeriodicityDetector::new(DetectorConfig {
            prune: PruneConfig {
                alpha,
                ..Default::default()
            },
            ..Default::default()
        });
        let mut detected = 0usize;
        for t in 0..trials {
            let beacon = SyntheticBeacon {
                period: 120.0,
                gaussian_sigma: 10.0,
                p_miss: 0.2,
                count: 200,
                ..Default::default()
            }
            .generate(t * 31 + 7);
            if det
                .detect(&beacon)
                .map(|r| r.candidates.iter().any(|c| (c.period - 120.0).abs() < 12.0))
                .unwrap_or(false)
            {
                detected += 1;
            }
        }
        rows.push(vec![
            format!("{alpha}"),
            f(detected as f64 / trials as f64, 2),
        ]);
    }
    println!(
        "{}",
        render_table(&["alpha", "detection rate (noisy beacon)"], &rows)
    );
    println!("(the paper's α = 0.05 keeps the test conservative; larger α prunes real periods)\n");
}

/// τ_P sweep on an enterprise day.
fn ablate_tau() {
    println!("--- ablation 3: local whitelist threshold τ_P ---");
    let sim = EnterpriseSimulator::new(EnterpriseConfig {
        hosts: 120,
        days: 2,
        seed: 0xAB1A7E,
        ..Default::default()
    });
    let records: Vec<LogRecord> = sim
        .generate_day(1)
        .iter()
        .map(|e| {
            LogRecord::new(
                e.timestamp,
                e.host.to_string(),
                e.domain.clone(),
                e.url_path.clone(),
            )
        })
        .collect();
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for tau in [0.005, 0.01, 0.05, 0.2, 0.9] {
        let mut engine = Baywatch::new(BaywatchConfig {
            local_tau: tau,
            ..Default::default()
        });
        let report = engine.analyze(records.clone());
        rows.push(vec![
            format!("{tau}"),
            report.stats.after_global_whitelist.to_string(),
            report.stats.after_local_whitelist.to_string(),
            report.stats.periodic.to_string(),
        ]);
        json.push((
            tau,
            report.stats.after_local_whitelist,
            report.stats.periodic,
        ));
    }
    println!(
        "{}",
        render_table(
            &[
                "tau_P",
                "after global WL",
                "after local WL",
                "periodic cases"
            ],
            &rows
        )
    );
    println!(
        "(small τ_P aggressively shrinks the candidate set; the paper uses 0.01 at 130 K hosts)\n"
    );
    save_json("ablation_tau", &json);
}

/// Time-scale ablation: a 2-hour beacon at 1 s vs 60 s bins.
fn ablate_time_scale() {
    println!("--- ablation 4: analysis time scale vs slow beacons ---");
    // 2-hour beacon over 10 days.
    let ts: Vec<u64> = (0..120).map(|i| i * 7200).collect();
    let mut rows = Vec::new();
    for scale in [1u64, 60, 600] {
        let det = PeriodicityDetector::new(DetectorConfig {
            time_scale: scale,
            max_bins: 1 << 21,
            ..Default::default()
        });
        let found = det
            .detect(&ts)
            .map(|report| {
                report
                    .candidates
                    .iter()
                    .any(|c| (c.period - 7200.0).abs() < 400.0)
            })
            .unwrap_or(false);
        let bins = ts.last().map_or(0, |last| last / scale + 1);
        rows.push(vec![
            format!("{scale} s"),
            bins.to_string(),
            if found { "detected" } else { "missed" }.into(),
        ]);
    }
    println!(
        "{}",
        render_table(&["bin width", "series length (bins)", "2 h beacon"], &rows)
    );
    println!("(coarse rescaling shrinks the series ~60–600×; the paper's weekly/monthly reruns rely on it)\n");
}

fn main() {
    println!("=== DESIGN.md §5 ablations ===\n");
    ablate_acf();
    println!();
    ablate_alpha();
    ablate_tau();
    ablate_time_scale();
}
