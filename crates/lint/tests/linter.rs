//! End-to-end tests over the fixture mini-workspace in
//! `tests/fixtures/ws`, which plants exactly one positive per rule next
//! to its suppressed/negative twin, plus a dogfood test asserting the
//! real repository tree lints clean.

use std::fs;
use std::path::{Path, PathBuf};

use baywatch_lint::{baseline, lint_workspace, run, LintError, LintOptions};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/ws")
}

/// A scratch directory unique to one test, recreated on every run.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("baywatch-lint-it-{name}"));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn fixture_opts() -> LintOptions {
    LintOptions {
        root: fixture_root(),
        config_path: None,
        baseline_path: None,
    }
}

#[test]
fn fixture_findings_are_exactly_the_planted_ones() {
    let findings = lint_workspace(&fixture_root()).expect("fixture lints");
    let got: Vec<(&str, &str, u32)> = findings
        .iter()
        .map(|f| (f.rule, f.path.as_str(), f.line))
        .collect();
    assert_eq!(
        got,
        vec![
            ("L3-budget", "crates/timeseries/src/detector.rs", 6),
            ("L3-budget", "crates/timeseries/src/detector.rs", 26),
            ("L2-ambient-rng", "crates/timeseries/src/lib.rs", 7),
            ("L2-wall-clock", "crates/timeseries/src/lib.rs", 12),
            ("L1-float-ord", "crates/timeseries/src/lib.rs", 17),
            ("L4-panic", "crates/timeseries/src/lib.rs", 17),
            ("L2-hash-iter", "crates/timeseries/src/lib.rs", 26),
            ("L2-ambient-fs", "crates/timeseries/src/lib.rs", 52),
            ("L4-panic", "crates/util/src/lib.rs", 11),
        ],
        "planted positives (and only those) must fire; negatives in the \
         same files — checkpointed loops, total_cmp, sorted/counted hash \
         iteration, a local binding named `fs`, cfg(test) unwraps, \
         bin-target unwraps — must not"
    );
}

#[test]
fn without_a_baseline_everything_is_new() {
    let outcome = run(&fixture_opts()).expect("fixture runs");
    assert_eq!(outcome.new.len(), 9);
    assert!(outcome.baselined.is_empty());
    assert!(!outcome.is_clean());
}

#[test]
fn full_baseline_tolerates_every_finding() {
    let dir = scratch("full-baseline");
    let findings = lint_workspace(&fixture_root()).expect("fixture lints");
    let path = dir.join("baseline.json");
    fs::write(&path, baseline::to_json(&findings)).expect("write baseline");

    let outcome = run(&LintOptions {
        baseline_path: Some(path),
        ..fixture_opts()
    })
    .expect("fixture runs");
    assert!(outcome.is_clean());
    assert_eq!(outcome.baselined.len(), 9);
    assert!(outcome.stale_baseline.is_empty());
}

#[test]
fn a_finding_missing_from_the_baseline_fails_the_ratchet() {
    // Drop one entry from the full baseline: the corresponding finding is
    // exactly what an injected fresh violation looks like to the ratchet.
    let dir = scratch("ratchet");
    let mut findings = lint_workspace(&fixture_root()).expect("fixture lints");
    let dropped = findings.remove(4);
    assert_eq!(dropped.rule, "L1-float-ord");
    let path = dir.join("baseline.json");
    fs::write(&path, baseline::to_json(&findings)).expect("write baseline");

    let outcome = run(&LintOptions {
        baseline_path: Some(path),
        ..fixture_opts()
    })
    .expect("fixture runs");
    assert!(!outcome.is_clean());
    assert_eq!(outcome.new.len(), 1);
    assert_eq!(outcome.new[0].rule, "L1-float-ord");
    assert_eq!(outcome.baselined.len(), 8);
}

#[test]
fn fixed_findings_surface_as_stale_baseline_entries_without_failing() {
    let dir = scratch("stale");
    let path = dir.join("baseline.json");
    let findings = lint_workspace(&fixture_root()).expect("fixture lints");
    let mut json = baseline::to_json(&findings);
    // Splice in an entry whose finding no longer exists.
    let extra = r#"[{"rule": "L4-panic", "path": "crates/gone/src/lib.rs", "snippet": "x.unwrap()", "occurrence": 0},"#;
    json = json.replacen('[', extra, 1);
    fs::write(&path, json).expect("write baseline");

    let outcome = run(&LintOptions {
        baseline_path: Some(path),
        ..fixture_opts()
    })
    .expect("fixture runs");
    assert!(outcome.is_clean(), "stale entries must not fail the build");
    assert_eq!(outcome.stale_baseline.len(), 1);
    assert_eq!(outcome.stale_baseline[0].path, "crates/gone/src/lib.rs");
}

#[test]
fn allowlist_suppresses_with_reason_and_reports_unused_entries() {
    let dir = scratch("allowlist");
    let path = dir.join("lint.toml");
    fs::write(
        &path,
        r#"
[[allow]]
rule = "L4-panic"
path = "crates/util/src/lib.rs"
reason = "fixture: the unwrap is planted deliberately"

[[allow]]
rule = "L1-float-ord"
path = "crates/util/src/lib.rs"
reason = "fixture: matches nothing in this file"
"#,
    )
    .expect("write allowlist");

    let outcome = run(&LintOptions {
        config_path: Some(path),
        ..fixture_opts()
    })
    .expect("fixture runs");
    assert_eq!(outcome.new.len(), 8, "one finding should be suppressed");
    assert_eq!(outcome.allowlisted.len(), 1);
    let (f, reason) = &outcome.allowlisted[0];
    assert_eq!(f.path, "crates/util/src/lib.rs");
    assert!(reason.contains("planted deliberately"));
    assert_eq!(outcome.unused_allows.len(), 1);
    assert_eq!(outcome.unused_allows[0].rule, "L1-float-ord");
}

#[test]
fn allowlist_without_a_real_reason_is_a_hard_error() {
    let dir = scratch("bad-reason");
    let path = dir.join("lint.toml");
    fs::write(
        &path,
        "[[allow]]\nrule = \"L4-panic\"\npath = \"x.rs\"\nreason = \"short\"\n",
    )
    .expect("write allowlist");

    let err = run(&LintOptions {
        config_path: Some(path),
        ..fixture_opts()
    })
    .expect_err("short reason must be rejected");
    assert!(matches!(err, LintError::Config(_)), "got {err}");
}

#[test]
fn allowlist_with_unknown_rule_is_a_hard_error() {
    let dir = scratch("bad-rule");
    let path = dir.join("lint.toml");
    fs::write(
        &path,
        "[[allow]]\nrule = \"L9-imaginary\"\npath = \"x.rs\"\nreason = \"long enough reason\"\n",
    )
    .expect("write allowlist");

    let err = run(&LintOptions {
        config_path: Some(path),
        ..fixture_opts()
    })
    .expect_err("unknown rule must be rejected");
    assert!(matches!(err, LintError::Config(_)), "got {err}");
}

#[test]
fn missing_explicit_config_path_is_an_error_but_missing_default_is_not() {
    let err = run(&LintOptions {
        config_path: Some(fixture_root().join("no-such-lint.toml")),
        ..fixture_opts()
    })
    .expect_err("explicitly named missing config must error");
    assert!(matches!(err, LintError::Io(..)), "got {err}");

    // The fixture workspace has no lint.toml at its root; the default
    // path being absent is tolerated (covered by every other test here).
    run(&fixture_opts()).expect("missing default config is fine");
}

#[test]
fn malformed_baseline_is_a_hard_error() {
    let dir = scratch("bad-baseline");
    let path = dir.join("baseline.json");
    fs::write(&path, "{\"not\": \"an array\"}").expect("write baseline");

    let err = run(&LintOptions {
        baseline_path: Some(path),
        ..fixture_opts()
    })
    .expect_err("non-array baseline must be rejected");
    assert!(matches!(err, LintError::Baseline(_)), "got {err}");
}

/// Dogfood: the repository this linter lives in must itself be clean —
/// every real finding either fixed or allowlisted with a written reason,
/// against an *empty* committed baseline.
#[test]
fn repo_tree_is_lint_clean() {
    let repo_root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("repo root resolves");
    let outcome = run(&LintOptions {
        root: repo_root,
        config_path: None,
        baseline_path: None,
    })
    .expect("repo lints");
    assert!(
        outcome.is_clean(),
        "new findings: {:?}",
        outcome
            .new
            .iter()
            .map(|f| format!("{} {}:{}", f.rule, f.path, f.line))
            .collect::<Vec<_>>()
    );
    assert!(
        outcome.baselined.is_empty(),
        "the committed baseline must stay empty — fix or allowlist instead"
    );
}
