//! Candidate pruning — Step 2 of the detection algorithm (§IV-C, Fig. 6).
//!
//! Periodogram analysis over-generates: spectral leakage, harmonics and
//! high-frequency noise all produce candidate periods. Three cheap filters
//! cut the candidate set down before the more expensive ACF verification:
//!
//! * **High-frequency noise** — a period smaller than the minimum observed
//!   inter-arrival interval is physically impossible (in the paper's TDSS
//!   example, min interval = 196 s removes every candidate except 387 s).
//! * **Hypothesis testing** — a one-sample t-test with H0 "the candidate is
//!   the true period"; rejected when p < α (paper: α = 5 %). The test is
//!   deliberately conservative: a candidate survives unless the intervals
//!   provide significant evidence against it.
//! * **Sampling rate** — a series must contain enough cycles of a claimed
//!   period to support it; under-sampled series are dropped, which matters
//!   most after rescaling to coarse granularities (§VII-B).

use baywatch_stats::ttest::{one_sample_ttest, Alternative};

use crate::periodogram::SpectralLine;
use crate::TimeSeriesError;

/// Configuration of the pruning filters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PruneConfig {
    /// Significance level α for the t-test (paper: 0.05).
    pub alpha: f64,
    /// Minimum number of full cycles of a candidate period that the
    /// observation span must cover (sampling-rate filter).
    pub min_cycles: f64,
    /// Relative tolerance when matching a candidate period against interval
    /// statistics; candidates whose period is within this fraction of the
    /// matched-interval mean skip the t-test rejection (guards against
    /// rejecting the true period due to heavy but symmetric jitter).
    pub mean_tolerance: f64,
    /// Relative half-width of the band used to select the intervals that
    /// *match* a candidate period. The hypothesis test runs on the matched
    /// subset so that missing-event gaps (which create 2P, 3P intervals) do
    /// not drag the sample mean away from the true period — the robustness
    /// the paper evaluates in Fig. 10.
    pub match_band: f64,
    /// Minimum fraction of intervals that must match the candidate for it
    /// to be considered supported at all.
    pub min_support: f64,
}

impl Default for PruneConfig {
    fn default() -> Self {
        Self {
            alpha: 0.05,
            min_cycles: 3.0,
            mean_tolerance: 0.02,
            match_band: 0.35,
            min_support: 0.1,
        }
    }
}

/// Why a candidate was discarded.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PruneReason {
    /// Period smaller than the minimum observed interval.
    BelowMinInterval {
        /// The minimum observed interval (seconds).
        min_interval: f64,
    },
    /// t-test rejected the candidate at level α.
    HypothesisRejected {
        /// The p-value of the test.
        p_value: f64,
    },
    /// The observation span covers too few cycles of this period.
    UnderSampled {
        /// Number of cycles covered.
        cycles: f64,
    },
    /// Too few intervals match the candidate period at all.
    LowSupport {
        /// Fraction of intervals within the match band of the candidate.
        support: f64,
    },
}

/// A pruning decision for one candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct PruneDecision {
    /// The candidate spectral line.
    pub line: SpectralLine,
    /// The t-test p-value for this candidate (`None` when the test could
    /// not run, e.g. a constant interval list — treated as compatible).
    pub p_value: Option<f64>,
    /// `None` if the candidate survived, otherwise the rejection reason.
    pub rejected: Option<PruneReason>,
}

impl PruneDecision {
    /// Whether the candidate survived all pruning filters.
    pub fn survived(&self) -> bool {
        self.rejected.is_none()
    }
}

/// Applies the three pruning filters to a candidate set.
///
/// `intervals` is the inter-arrival list of the communication pair,
/// `span_seconds` the total observation window.
///
/// Returns one [`PruneDecision`] per input candidate, in the input order.
///
/// # Errors
///
/// Returns [`TimeSeriesError::InvalidConfig`] for a non-positive `alpha` or
/// `min_cycles`, or [`TimeSeriesError::TooFewEvents`] when `intervals` is
/// empty.
///
/// # Example
///
/// The paper's TDSS example: among the periodogram candidates only 387.34 s
/// exceeds the minimum interval of 196 s and survives the t-test.
///
/// ```
/// use baywatch_timeseries::periodogram::SpectralLine;
/// use baywatch_timeseries::prune::{prune_candidates, PruneConfig};
///
/// let mk = |period: f64, power: f64| SpectralLine {
///     bin: 0, frequency: 1.0 / period, period, power,
/// };
/// let candidates = vec![
///     mk(30.5473, 245.9),
///     mk(2.36615, 236.4),
///     mk(387.34, 230.1),
///     mk(8.8351, 223.5),
///     mk(33.1626, 217.7),
/// ];
/// // Intervals clustered near 387 s with a 196 s minimum.
/// let intervals = vec![404.0, 362.0, 400.0, 369.0, 196.0, 423.0, 391.0, 442.0, 395.0];
/// let span = intervals.iter().sum::<f64>();
/// let decisions = prune_candidates(&candidates, &intervals, span, &PruneConfig::default()).unwrap();
/// let survivors: Vec<f64> = decisions.iter()
///     .filter(|d| d.survived())
///     .map(|d| d.line.period)
///     .collect();
/// assert_eq!(survivors, vec![387.34]);
/// ```
pub fn prune_candidates(
    candidates: &[SpectralLine],
    intervals: &[f64],
    span_seconds: f64,
    config: &PruneConfig,
) -> Result<Vec<PruneDecision>, TimeSeriesError> {
    if !(config.alpha > 0.0 && config.alpha < 1.0) {
        return Err(TimeSeriesError::InvalidConfig {
            name: "alpha",
            constraint: "must be within (0, 1)",
        });
    }
    if config.min_cycles <= 0.0 {
        return Err(TimeSeriesError::InvalidConfig {
            name: "min_cycles",
            constraint: "must be positive",
        });
    }
    if intervals.is_empty() {
        return Err(TimeSeriesError::TooFewEvents {
            required: 1,
            actual: 0,
        });
    }

    // Zero intervals (same-second requests) carry no spacing information for
    // the minimum-interval filter.
    let min_interval = intervals
        .iter()
        .copied()
        .filter(|&i| i > 0.0)
        .fold(f64::INFINITY, f64::min);
    let interval_mean = intervals.iter().sum::<f64>() / intervals.len() as f64;

    let mut out = Vec::with_capacity(candidates.len());
    for &line in candidates {
        let decision = prune_one(
            line,
            intervals,
            min_interval,
            interval_mean,
            span_seconds,
            config,
        );
        out.push(decision);
    }
    Ok(out)
}

fn prune_one(
    line: SpectralLine,
    intervals: &[f64],
    min_interval: f64,
    interval_mean: f64,
    span_seconds: f64,
    config: &PruneConfig,
) -> PruneDecision {
    // Filter 1: high-frequency noise.
    if min_interval.is_finite() && line.period < min_interval {
        return PruneDecision {
            line,
            p_value: None,
            rejected: Some(PruneReason::BelowMinInterval { min_interval }),
        };
    }

    // Filter 2: sampling rate — the span must cover enough cycles.
    let cycles = span_seconds / line.period;
    if cycles < config.min_cycles {
        return PruneDecision {
            line,
            p_value: None,
            rejected: Some(PruneReason::UnderSampled { cycles }),
        };
    }

    // Filter 3: support + hypothesis test on the matched intervals.
    //
    // Missing beacons turn single intervals into 2P/3P gaps; testing the
    // *full* interval list against P would reject the true period as soon
    // as a few beacons are lost. Instead we test the intervals that match P
    // (within `match_band`), after requiring a minimal support fraction so
    // that spurious candidates with no matching intervals die here.
    let matched: Vec<f64> = intervals
        .iter()
        .copied()
        .filter(|&i| (i - line.period).abs() <= config.match_band * line.period)
        .collect();
    let support = matched.len() as f64 / intervals.len() as f64;
    if support < config.min_support {
        // Before declaring low support, allow a "whole-list" fallback: when
        // the candidate agrees with the overall interval mean the full-list
        // test is meaningful (e.g. very heavy symmetric jitter spreads
        // intervals beyond the band).
        let rel_diff = (line.period - interval_mean).abs() / interval_mean.max(f64::MIN_POSITIVE);
        if rel_diff > config.match_band {
            return PruneDecision {
                line,
                p_value: None,
                rejected: Some(PruneReason::LowSupport { support }),
            };
        }
    }
    let test_sample: &[f64] = if matched.len() >= 2 {
        &matched
    } else {
        intervals
    };
    // Robust location check first: adding-event noise splits genuine
    // intervals and drags the subset *mean* off the true period while the
    // *median* stays put, so the tolerance shortcut is median-based.
    let center = median_of(test_sample);
    let rel_diff = (line.period - center).abs() / center.max(f64::MIN_POSITIVE);
    if rel_diff <= config.mean_tolerance {
        return PruneDecision {
            line,
            p_value: None,
            rejected: None,
        };
    }
    match one_sample_ttest(test_sample, line.period, Alternative::TwoSided) {
        Ok(t) => {
            if t.p_value < config.alpha {
                PruneDecision {
                    line,
                    p_value: Some(t.p_value),
                    rejected: Some(PruneReason::HypothesisRejected { p_value: t.p_value }),
                }
            } else {
                PruneDecision {
                    line,
                    p_value: Some(t.p_value),
                    rejected: None,
                }
            }
        }
        // A single interval: no variance estimate, cannot reject — keep
        // (conservative, like the paper's framing of the null hypothesis).
        Err(_) => PruneDecision {
            line,
            p_value: None,
            rejected: None,
        },
    }
}

/// Median of a non-empty slice (copies; slices here are small).
fn median_of(data: &[f64]) -> f64 {
    debug_assert!(!data.is_empty());
    let mut v = data.to_vec();
    v.sort_by(f64::total_cmp);
    let mid = v.len() / 2;
    if v.len() % 2 == 1 {
        v[mid]
    } else {
        0.5 * (v[mid - 1] + v[mid])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(period: f64, power: f64) -> SpectralLine {
        SpectralLine {
            bin: 1,
            frequency: 1.0 / period,
            period,
            power,
        }
    }

    #[test]
    fn min_interval_filter() {
        let intervals = vec![200.0, 210.0, 196.0, 205.0];
        let d = prune_candidates(
            &[mk(100.0, 10.0)],
            &intervals,
            10_000.0,
            &PruneConfig::default(),
        )
        .unwrap();
        assert!(matches!(
            d[0].rejected,
            Some(PruneReason::BelowMinInterval { .. })
        ));
    }

    #[test]
    fn zero_intervals_ignored_for_min() {
        // A burst of same-second requests must not set min_interval to 0
        // (which would disable the high-frequency filter entirely).
        let intervals = vec![0.0, 200.0, 210.0, 0.0, 205.0];
        let d = prune_candidates(
            &[mk(50.0, 10.0)],
            &intervals,
            10_000.0,
            &PruneConfig::default(),
        )
        .unwrap();
        assert!(matches!(
            d[0].rejected,
            Some(PruneReason::BelowMinInterval { min_interval }) if min_interval == 200.0
        ));
    }

    #[test]
    fn under_sampled_filter() {
        let intervals = vec![100.0; 5];
        // Period of 400 s in a 500 s span: only 1.25 cycles.
        let d = prune_candidates(
            &[mk(400.0, 10.0)],
            &intervals,
            500.0,
            &PruneConfig::default(),
        )
        .unwrap();
        assert!(matches!(
            d[0].rejected,
            Some(PruneReason::UnderSampled { .. })
        ));
    }

    #[test]
    fn unsupported_period_rejected() {
        // No interval anywhere near 120 s: low support.
        let intervals = vec![60.0, 61.0, 59.5, 60.2, 60.8, 59.9, 60.1];
        let d = prune_candidates(
            &[mk(120.0, 10.0)],
            &intervals,
            10_000.0,
            &PruneConfig::default(),
        )
        .unwrap();
        assert!(matches!(
            d[0].rejected,
            Some(PruneReason::LowSupport { support }) if support == 0.0
        ));
    }

    #[test]
    fn ttest_rejects_incompatible_period() {
        // 63 s is inside the match band of tightly clustered 60 s intervals,
        // so the t-test (not the support filter) must reject it.
        let intervals = vec![60.0, 60.1, 59.9, 60.05, 60.2, 59.95, 60.0, 60.1];
        let d = prune_candidates(
            &[mk(63.0, 10.0)],
            &intervals,
            10_000.0,
            &PruneConfig::default(),
        )
        .unwrap();
        assert!(matches!(
            d[0].rejected,
            Some(PruneReason::HypothesisRejected { .. })
        ));
        assert!(d[0].p_value.unwrap() < 0.05);
    }

    #[test]
    fn missing_event_gaps_do_not_kill_true_period() {
        // 45 s beacon with 25% loss: intervals are a mix of 45, 90, 135.
        let mut intervals = vec![45.0; 60];
        intervals.extend(vec![90.0; 15]);
        intervals.extend(vec![135.0; 5]);
        let span: f64 = intervals.iter().sum();
        let d =
            prune_candidates(&[mk(45.0, 10.0)], &intervals, span, &PruneConfig::default()).unwrap();
        assert!(d[0].survived(), "rejected: {:?}", d[0].rejected);
    }

    #[test]
    fn true_period_survives_with_jitter() {
        let intervals = vec![58.0, 62.0, 59.0, 61.5, 60.0, 60.5, 58.5, 61.0];
        let d = prune_candidates(
            &[mk(60.0, 10.0)],
            &intervals,
            10_000.0,
            &PruneConfig::default(),
        )
        .unwrap();
        assert!(d[0].survived(), "rejected: {:?}", d[0].rejected);
    }

    #[test]
    fn mean_tolerance_skips_ttest() {
        // Heavily jittered but symmetric around 100: the t-test might be
        // unstable, the tolerance shortcut keeps the candidate.
        let intervals = vec![100.1, 99.9, 100.0, 100.05, 99.95];
        let d = prune_candidates(
            &[mk(100.0, 5.0)],
            &intervals,
            10_000.0,
            &PruneConfig::default(),
        )
        .unwrap();
        assert!(d[0].survived());
        assert!(d[0].p_value.is_none(), "t-test should have been skipped");
    }

    #[test]
    fn tdss_worked_example() {
        // Fig. 6 of the paper: five candidates, min interval 196 s.
        let candidates = vec![
            mk(30.5473, 245.9),
            mk(2.36615, 236.4),
            mk(387.34, 230.1),
            mk(8.8351, 223.5),
            mk(33.1626, 217.7),
        ];
        let intervals = vec![
            404.0, 362.0, 400.0, 369.0, 196.0, 423.0, 391.0, 442.0, 395.0, 407.0, 372.0,
        ];
        let span: f64 = intervals.iter().sum();
        let d = prune_candidates(&candidates, &intervals, span, &PruneConfig::default()).unwrap();
        let survivors: Vec<f64> = d
            .iter()
            .filter(|x| x.survived())
            .map(|x| x.line.period)
            .collect();
        assert_eq!(survivors, vec![387.34]);
    }

    #[test]
    fn empty_intervals_error() {
        assert!(prune_candidates(&[mk(10.0, 1.0)], &[], 100.0, &PruneConfig::default()).is_err());
    }

    #[test]
    fn invalid_config_errors() {
        let iv = vec![10.0, 11.0];
        let bad_alpha = PruneConfig {
            alpha: 0.0,
            ..Default::default()
        };
        assert!(prune_candidates(&[], &iv, 100.0, &bad_alpha).is_err());
        let bad_cycles = PruneConfig {
            min_cycles: 0.0,
            ..Default::default()
        };
        assert!(prune_candidates(&[], &iv, 100.0, &bad_cycles).is_err());
    }

    #[test]
    fn decisions_preserve_input_order() {
        let intervals = vec![60.0, 60.5, 59.5, 60.1];
        let candidates = vec![mk(60.0, 3.0), mk(10.0, 2.0), mk(120.0, 1.0)];
        let d =
            prune_candidates(&candidates, &intervals, 5_000.0, &PruneConfig::default()).unwrap();
        assert_eq!(d.len(), 3);
        assert_eq!(d[0].line.period, 60.0);
        assert_eq!(d[1].line.period, 10.0);
        assert_eq!(d[2].line.period, 120.0);
    }

    #[test]
    fn single_interval_cannot_reject() {
        let intervals = vec![60.0];
        let d = prune_candidates(
            &[mk(65.0, 1.0)],
            &intervals,
            10_000.0,
            &PruneConfig::default(),
        )
        .unwrap();
        assert!(d[0].survived());
    }
}
