//! Random forest ensemble (§VI-B of the paper; Breiman 2001).
//!
//! The investigation phase trains a 200-tree random forest on a small
//! manually labeled window and applies it to the remaining months of
//! candidates. Beyond the hard benign/malicious vote, the *uncertainty* of
//! each prediction drives the paper's Fig. 11: the analyst examines the most
//! uncertain cases first, which empties the false-negative pool quickly.

use crate::tree::{DecisionTree, Label, TrainError, TreeConfig};
use rand::prelude::*;
use rand::rngs::StdRng;

/// Hyper-parameters of the forest.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ForestConfig {
    /// Number of trees (the paper uses 200).
    pub n_trees: usize,
    /// Per-tree settings; `features_per_split` of `None` here means
    /// "√d, chosen automatically at fit time".
    pub tree: TreeConfig,
    /// Fraction of the training set drawn (with replacement) per tree.
    pub bootstrap_fraction: f64,
    /// Master RNG seed.
    pub seed: u64,
}

impl Default for ForestConfig {
    fn default() -> Self {
        Self {
            n_trees: 200,
            tree: TreeConfig::default(),
            bootstrap_fraction: 1.0,
            seed: 0xF0_1E57,
        }
    }
}

/// A trained random forest.
///
/// # Example
///
/// ```
/// use baywatch_classifier::forest::{ForestConfig, RandomForest};
///
/// let xs: Vec<Vec<f64>> = (0..200).map(|i| vec![(i % 100) as f64, (i % 7) as f64]).collect();
/// let ys: Vec<bool> = (0..200).map(|i| (i % 100) >= 50).collect();
/// let cfg = ForestConfig { n_trees: 25, ..Default::default() };
/// let rf = RandomForest::fit(&xs, &ys, &cfg).unwrap();
/// assert!(rf.predict(&[80.0, 3.0]));
/// assert!(!rf.predict(&[10.0, 3.0]));
/// ```
#[derive(Debug, Clone)]
pub struct RandomForest {
    trees: Vec<DecisionTree>,
    oob_error: Option<f64>,
}

impl RandomForest {
    /// Trains the forest with bootstrap aggregation and per-split feature
    /// subsampling (√d by default).
    ///
    /// # Errors
    ///
    /// See [`TrainError`].
    pub fn fit(xs: &[Vec<f64>], ys: &[Label], config: &ForestConfig) -> Result<Self, TrainError> {
        crate::tree::validate(xs, ys)?;
        if config.n_trees == 0 {
            return Err(TrainError::InvalidConfig("n_trees must be >= 1"));
        }
        if !(config.bootstrap_fraction > 0.0 && config.bootstrap_fraction <= 1.0) {
            return Err(TrainError::InvalidConfig(
                "bootstrap_fraction must be in (0, 1]",
            ));
        }
        let n = xs.len();
        let d = xs[0].len();
        let per_split = config
            .tree
            .features_per_split
            .unwrap_or(((d as f64).sqrt().round() as usize).max(1));

        let mut rng = StdRng::seed_from_u64(config.seed);
        let sample_size = ((n as f64 * config.bootstrap_fraction).round() as usize).max(1);

        let mut trees = Vec::with_capacity(config.n_trees);
        // Out-of-bag vote accumulators.
        let mut oob_votes_pos = vec![0usize; n];
        let mut oob_votes_total = vec![0usize; n];

        for t in 0..config.n_trees {
            let mut in_bag = vec![false; n];
            let mut bxs = Vec::with_capacity(sample_size);
            let mut bys = Vec::with_capacity(sample_size);
            for _ in 0..sample_size {
                let i = rng.random_range(0..n);
                in_bag[i] = true;
                bxs.push(xs[i].clone());
                bys.push(ys[i]);
            }
            let tree_cfg = TreeConfig {
                features_per_split: Some(per_split),
                seed: config.seed ^ (t as u64).wrapping_mul(0x9E3779B97F4A7C15),
                ..config.tree
            };
            let tree = DecisionTree::fit(&bxs, &bys, &tree_cfg)?;
            for i in 0..n {
                if !in_bag[i] {
                    oob_votes_total[i] += 1;
                    if tree.predict(&xs[i]) {
                        oob_votes_pos[i] += 1;
                    }
                }
            }
            trees.push(tree);
        }

        // OOB error across samples that received at least one OOB vote.
        let mut wrong = 0usize;
        let mut counted = 0usize;
        for i in 0..n {
            if oob_votes_total[i] > 0 {
                counted += 1;
                let pred = oob_votes_pos[i] * 2 >= oob_votes_total[i];
                if pred != ys[i] {
                    wrong += 1;
                }
            }
        }
        let oob_error = (counted > 0).then(|| wrong as f64 / counted as f64);

        Ok(Self { trees, oob_error })
    }

    /// Number of trees in the ensemble.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Out-of-bag error estimate, when at least one sample was OOB for
    /// some tree.
    pub fn oob_error(&self) -> Option<f64> {
        self.oob_error
    }

    /// Fraction of trees voting "malicious" — the ensemble probability.
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong number of features.
    pub fn predict_proba(&self, x: &[f64]) -> f64 {
        let pos = self.trees.iter().filter(|t| t.predict(x)).count();
        pos as f64 / self.trees.len() as f64
    }

    /// Majority vote ("the output of the random forest is the mode of the
    /// outputs of the decision trees").
    pub fn predict(&self, x: &[f64]) -> Label {
        self.predict_proba(x) >= 0.5
    }

    /// Prediction uncertainty in `[0, 1]`: `1 − |2p − 1|`. A unanimous
    /// ensemble scores 0; an evenly split one scores 1. This ordering
    /// drives the Fig. 11 triage curve.
    pub fn uncertainty(&self, x: &[f64]) -> f64 {
        let p = self.predict_proba(x);
        1.0 - (2.0 * p - 1.0).abs()
    }

    /// Forest-level feature importances: the per-tree mean-decrease-in-
    /// impurity importances averaged over the ensemble, normalized to sum
    /// to 1 (all zeros when no tree ever split).
    pub fn feature_importances(&self) -> Vec<f64> {
        let n = self
            .trees
            .first()
            .map(|t| t.feature_importances().len())
            .unwrap_or(0);
        let mut acc = vec![0.0; n];
        for t in &self.trees {
            for (a, &v) in acc.iter_mut().zip(t.feature_importances()) {
                *a += v;
            }
        }
        let total: f64 = acc.iter().sum();
        if total > 0.0 {
            for v in acc.iter_mut() {
                *v /= total;
            }
        }
        acc
    }

    /// Ranks case indices by descending uncertainty (most uncertain first) —
    /// the order in which the paper's analysts examine residual cases.
    pub fn rank_by_uncertainty(&self, cases: &[Vec<f64>]) -> Vec<usize> {
        let mut order: Vec<usize> = (0..cases.len()).collect();
        let u: Vec<f64> = cases.iter().map(|x| self.uncertainty(x)).collect();
        order.sort_by(|&a, &b| u[b].total_cmp(&u[a]).then(a.cmp(&b)));
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_data(n: usize) -> (Vec<Vec<f64>>, Vec<bool>) {
        let xs: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                vec![
                    (i % 100) as f64,
                    ((i * 13) % 29) as f64,
                    ((i * 7) % 11) as f64,
                ]
            })
            .collect();
        let ys: Vec<bool> = (0..n).map(|i| (i % 100) >= 50).collect();
        (xs, ys)
    }

    fn small_forest() -> ForestConfig {
        ForestConfig {
            n_trees: 30,
            ..Default::default()
        }
    }

    #[test]
    fn forest_learns_and_outperforms_chance() {
        let (xs, ys) = linear_data(300);
        let rf = RandomForest::fit(&xs, &ys, &small_forest()).unwrap();
        let correct = xs
            .iter()
            .zip(&ys)
            .filter(|(x, y)| rf.predict(x) == **y)
            .count();
        assert!(correct as f64 / xs.len() as f64 > 0.95);
        assert_eq!(rf.n_trees(), 30);
    }

    #[test]
    fn oob_error_reported_and_small() {
        let (xs, ys) = linear_data(400);
        let rf = RandomForest::fit(&xs, &ys, &small_forest()).unwrap();
        let oob = rf.oob_error().expect("OOB votes must exist");
        assert!(oob < 0.15, "OOB error = {oob}");
    }

    #[test]
    fn proba_in_unit_interval() {
        let (xs, ys) = linear_data(120);
        let rf = RandomForest::fit(&xs, &ys, &small_forest()).unwrap();
        for x in &xs {
            let p = rf.predict_proba(x);
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn uncertainty_extremes() {
        let (xs, ys) = linear_data(300);
        let rf = RandomForest::fit(&xs, &ys, &small_forest()).unwrap();
        // Deep in each class: low uncertainty.
        assert!(rf.uncertainty(&[5.0, 1.0, 1.0]) < 0.3);
        assert!(rf.uncertainty(&[95.0, 1.0, 1.0]) < 0.3);
        // On the decision boundary: higher uncertainty than deep inside.
        let boundary = rf.uncertainty(&[50.0, 1.0, 1.0]);
        let deep = rf.uncertainty(&[95.0, 1.0, 1.0]);
        assert!(boundary >= deep);
    }

    #[test]
    fn rank_by_uncertainty_orders_descending() {
        let (xs, ys) = linear_data(200);
        let rf = RandomForest::fit(&xs, &ys, &small_forest()).unwrap();
        let cases: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64 * 5.0, 1.0, 1.0]).collect();
        let order = rf.rank_by_uncertainty(&cases);
        let us: Vec<f64> = order.iter().map(|&i| rf.uncertainty(&cases[i])).collect();
        for w in us.windows(2) {
            assert!(w[0] >= w[1]);
        }
        assert_eq!(order.len(), 20);
    }

    #[test]
    fn deterministic_given_seed() {
        let (xs, ys) = linear_data(150);
        let a = RandomForest::fit(&xs, &ys, &small_forest()).unwrap();
        let b = RandomForest::fit(&xs, &ys, &small_forest()).unwrap();
        for x in xs.iter().take(20) {
            assert_eq!(a.predict_proba(x), b.predict_proba(x));
        }
    }

    #[test]
    fn config_validation() {
        let (xs, ys) = linear_data(10);
        let bad = ForestConfig {
            n_trees: 0,
            ..Default::default()
        };
        assert!(RandomForest::fit(&xs, &ys, &bad).is_err());
        let bad = ForestConfig {
            bootstrap_fraction: 0.0,
            ..Default::default()
        };
        assert!(RandomForest::fit(&xs, &ys, &bad).is_err());
        assert!(RandomForest::fit(&[], &[], &small_forest()).is_err());
    }

    #[test]
    fn forest_importances_normalized_and_informative() {
        let (xs, ys) = linear_data(300);
        let rf = RandomForest::fit(&xs, &ys, &small_forest()).unwrap();
        let imp = rf.feature_importances();
        assert_eq!(imp.len(), 3);
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // Feature 0 carries the label; it must dominate.
        assert!(imp[0] > imp[1] && imp[0] > imp[2], "importances = {imp:?}");
    }

    #[test]
    fn single_tree_forest_works() {
        let (xs, ys) = linear_data(100);
        let cfg = ForestConfig {
            n_trees: 1,
            ..Default::default()
        };
        let rf = RandomForest::fit(&xs, &ys, &cfg).unwrap();
        assert_eq!(rf.n_trees(), 1);
        let p = rf.predict_proba(&xs[0]);
        assert!(p == 0.0 || p == 1.0);
    }
}
