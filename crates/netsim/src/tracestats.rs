//! Trace-level statistics: the summary numbers the paper reports about its
//! data sets (Table III volumes, §VIII-B2 pair counts, per-host rates).

use std::collections::{HashMap, HashSet};

use crate::types::{HostId, ProxyEvent};

/// Aggregate statistics of an event slice.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStats {
    /// Total events.
    pub events: usize,
    /// Distinct hosts.
    pub hosts: usize,
    /// Distinct destinations.
    pub destinations: usize,
    /// Distinct (host, destination) communication pairs.
    pub pairs: usize,
    /// Events per host: mean over observed hosts.
    pub events_per_host: f64,
    /// Time span covered (seconds; 0 for empty/single-event traces).
    pub span_seconds: u64,
    /// Top destinations by distinct-source popularity, descending.
    pub top_destinations: Vec<(String, usize)>,
}

/// Computes statistics for an event slice (any order).
pub fn trace_stats(events: &[ProxyEvent], top_k: usize) -> TraceStats {
    let mut hosts: HashSet<HostId> = HashSet::new();
    let mut pairs: HashSet<(HostId, &str)> = HashSet::new();
    let mut dest_sources: HashMap<&str, HashSet<HostId>> = HashMap::new();
    let mut t_min = u64::MAX;
    let mut t_max = 0u64;
    for e in events {
        hosts.insert(e.host);
        pairs.insert((e.host, e.domain.as_str()));
        dest_sources
            .entry(e.domain.as_str())
            .or_default()
            .insert(e.host);
        t_min = t_min.min(e.timestamp);
        t_max = t_max.max(e.timestamp);
    }
    let mut top: Vec<(String, usize)> = dest_sources
        .iter()
        .map(|(d, s)| ((*d).to_owned(), s.len()))
        .collect();
    top.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    top.truncate(top_k);

    TraceStats {
        events: events.len(),
        hosts: hosts.len(),
        destinations: dest_sources.len(),
        pairs: pairs.len(),
        events_per_host: if hosts.is_empty() {
            0.0
        } else {
            events.len() as f64 / hosts.len() as f64
        },
        span_seconds: if events.len() < 2 { 0 } else { t_max - t_min },
        top_destinations: top,
    }
}

impl std::fmt::Display for TraceStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{} events | {} hosts | {} destinations | {} pairs | span {} s",
            self.events, self.hosts, self.destinations, self.pairs, self.span_seconds
        )?;
        write!(f, "events/host {:.1}", self.events_per_host)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: u64, host: u32, domain: &str) -> ProxyEvent {
        ProxyEvent {
            timestamp: t,
            host: HostId(host),
            source_ip: 0,
            domain: domain.into(),
            url_path: String::new(),
        }
    }

    #[test]
    fn counts_distinct_entities() {
        let events = vec![
            ev(100, 1, "a.com"),
            ev(200, 1, "a.com"),
            ev(300, 2, "a.com"),
            ev(400, 2, "b.com"),
        ];
        let s = trace_stats(&events, 10);
        assert_eq!(s.events, 4);
        assert_eq!(s.hosts, 2);
        assert_eq!(s.destinations, 2);
        assert_eq!(s.pairs, 3);
        assert_eq!(s.span_seconds, 300);
        assert!((s.events_per_host - 2.0).abs() < 1e-12);
    }

    #[test]
    fn top_destinations_by_popularity() {
        let mut events = Vec::new();
        for h in 0..5 {
            events.push(ev(h as u64, h, "popular.com"));
        }
        events.push(ev(10, 0, "niche.com"));
        let s = trace_stats(&events, 1);
        assert_eq!(s.top_destinations, vec![("popular.com".to_owned(), 5)]);
    }

    #[test]
    fn empty_trace() {
        let s = trace_stats(&[], 5);
        assert_eq!(s.events, 0);
        assert_eq!(s.hosts, 0);
        assert_eq!(s.span_seconds, 0);
        assert_eq!(s.events_per_host, 0.0);
        assert!(s.top_destinations.is_empty());
        assert!(!s.to_string().is_empty());
    }

    #[test]
    fn ties_resolve_alphabetically() {
        let events = vec![ev(0, 1, "bbb.com"), ev(1, 1, "aaa.com")];
        let s = trace_stats(&events, 2);
        assert_eq!(s.top_destinations[0].0, "aaa.com");
    }
}
