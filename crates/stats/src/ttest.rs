//! One-sample Student t-test.
//!
//! BAYWATCH's pruning step (§IV, Step 2, "Hypothesis Testing") models the
//! observed inter-arrival intervals of a communication pair as draws from
//! `N(P, σ²)` where `P` is the candidate period. It then runs a one-sample
//! t-test with null hypothesis *H0: P is the true period* and rejects the
//! candidate when the p-value falls below the significance level α = 5%.
//!
//! The test's conservativeness is the point: a candidate survives unless the
//! data provides *significant* evidence against it.

use crate::describe::{mean, std_dev};
use crate::dist::StudentsT;
use crate::StatsError;

/// Which tail(s) of the t distribution form the rejection region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Alternative {
    /// H1: the true mean differs from the hypothesized mean (either side).
    #[default]
    TwoSided,
    /// H1: the true mean is less than the hypothesized mean.
    Less,
    /// H1: the true mean is greater than the hypothesized mean.
    Greater,
}

/// Outcome of a one-sample t-test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TTestResult {
    /// The t statistic `(x̄ − μ0) / (s / √n)`.
    pub statistic: f64,
    /// The p-value under the chosen alternative.
    pub p_value: f64,
    /// Degrees of freedom (`n − 1`).
    pub dof: f64,
    /// Sample mean.
    pub sample_mean: f64,
    /// Sample standard deviation.
    pub sample_std: f64,
}

impl TTestResult {
    /// Whether H0 is rejected at significance level `alpha`.
    ///
    /// # Example
    ///
    /// ```
    /// use baywatch_stats::ttest::{one_sample_ttest, Alternative};
    /// let sample = [10.0, 10.2, 9.9, 10.1, 9.8];
    /// let r = one_sample_ttest(&sample, 50.0, Alternative::TwoSided).unwrap();
    /// assert!(r.reject_at(0.05), "50 is clearly not the mean of ~10 samples");
    /// ```
    pub fn reject_at(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Runs a one-sample t-test of the null hypothesis that the population mean
/// equals `mu0`.
///
/// # Errors
///
/// * [`StatsError::InsufficientData`] if fewer than two observations are
///   provided,
/// * [`StatsError::ZeroVariance`] if all observations are identical **and**
///   differ from `mu0` is false — see below. When the sample is constant and
///   exactly equal to `mu0` the test cannot reject and a p-value of `1.0` is
///   returned; when it is constant and different from `mu0` the evidence is
///   unambiguous and a p-value of `0.0` is returned. (A strict t statistic is
///   undefined in both cases; this resolution matches the decision the test
///   exists to make.)
///
/// # Example
///
/// ```
/// use baywatch_stats::ttest::{one_sample_ttest, Alternative};
///
/// // Beacon intervals jittered around 387 s — the TDSS case of the paper.
/// let intervals = [385.0, 389.0, 386.5, 388.0, 387.2, 386.9];
/// let keep = one_sample_ttest(&intervals, 387.34, Alternative::TwoSided).unwrap();
/// assert!(!keep.reject_at(0.05));
///
/// // A bogus high-frequency candidate (2.37 s) is decisively rejected.
/// let bogus = one_sample_ttest(&intervals, 2.37, Alternative::TwoSided).unwrap();
/// assert!(bogus.reject_at(0.05));
/// ```
pub fn one_sample_ttest(
    sample: &[f64],
    mu0: f64,
    alternative: Alternative,
) -> Result<TTestResult, StatsError> {
    if sample.len() < 2 {
        return Err(StatsError::InsufficientData {
            required: 2,
            actual: sample.len(),
        });
    }
    let n = sample.len() as f64;
    let m = mean(sample)?;
    let s = std_dev(sample)?;
    let dof = n - 1.0;

    if s == 0.0 {
        // Constant sample: resolve degenerately (documented above).
        let diff = m - mu0;
        let (statistic, p_value) = if diff == 0.0 {
            (0.0, 1.0)
        } else {
            (diff.signum() * f64::INFINITY, 0.0)
        };
        return Ok(TTestResult {
            statistic,
            p_value,
            dof,
            sample_mean: m,
            sample_std: s,
        });
    }

    let statistic = (m - mu0) / (s / n.sqrt());
    let dist = StudentsT::new(dof)?;
    let p_value = match alternative {
        Alternative::TwoSided => dist.two_sided_p(statistic),
        Alternative::Less => dist.cdf(statistic),
        Alternative::Greater => dist.sf(statistic),
    };
    Ok(TTestResult {
        statistic,
        p_value,
        dof,
        sample_mean: m,
        sample_std: s,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "expected {b}, got {a} (tol {tol})");
    }

    #[test]
    fn matches_hand_computed_reference() {
        // sample mean = 35.45/7, SS = 179.7125 - 35.45^2/7, s = sqrt(SS/6),
        // t = (m - 5) / (s / sqrt(7)) = 0.9723812...
        let sample = [5.1, 4.9, 5.3, 5.2, 4.8, 5.0, 5.15];
        let r = one_sample_ttest(&sample, 5.0, Alternative::TwoSided).unwrap();
        assert_close(r.statistic, 0.9723812481885968, 1e-10);
        assert_eq!(r.dof, 6.0);
        // p follows from the Student-t CDF (independently validated in
        // dist::tests against pt(2, 10) and the Cauchy case); sanity-bound it.
        assert!(r.p_value > 0.35 && r.p_value < 0.40, "p = {}", r.p_value);
    }

    #[test]
    fn one_sided_p_values_sum_to_one() {
        let sample = [1.0, 2.0, 3.0, 4.0, 5.5];
        let less = one_sample_ttest(&sample, 3.0, Alternative::Less).unwrap();
        let greater = one_sample_ttest(&sample, 3.0, Alternative::Greater).unwrap();
        assert_close(less.p_value + greater.p_value, 1.0, 1e-12);
    }

    #[test]
    fn two_sided_is_twice_smaller_tail() {
        let sample = [1.0, 2.0, 3.0, 4.0, 5.5];
        let two = one_sample_ttest(&sample, 2.0, Alternative::TwoSided).unwrap();
        let greater = one_sample_ttest(&sample, 2.0, Alternative::Greater).unwrap();
        assert_close(two.p_value, 2.0 * greater.p_value, 1e-12);
    }

    #[test]
    fn rejects_wrong_period_keeps_true_period() {
        // Paper's TDSS example: intervals around 387 s should keep the
        // 387.34 candidate and reject the short-period artifacts.
        let intervals = [
            404.0, 400.0, 362.0, 445.0, 407.0, 423.0, 372.0, 395.0, 362.0, 400.0, 369.0, 391.0,
            442.0,
        ];
        let keep = one_sample_ttest(&intervals, 387.34, Alternative::TwoSided).unwrap();
        assert!(!keep.reject_at(0.05));
        for wrong in [2.36615, 8.8351, 30.5473, 33.1626] {
            let r = one_sample_ttest(&intervals, wrong, Alternative::TwoSided).unwrap();
            assert!(r.reject_at(0.05), "{wrong} should be rejected");
        }
    }

    #[test]
    fn insufficient_data() {
        assert!(one_sample_ttest(&[], 0.0, Alternative::TwoSided).is_err());
        assert!(one_sample_ttest(&[1.0], 0.0, Alternative::TwoSided).is_err());
    }

    #[test]
    fn constant_sample_equal_to_mu0() {
        let r = one_sample_ttest(&[5.0; 6], 5.0, Alternative::TwoSided).unwrap();
        assert_eq!(r.p_value, 1.0);
        assert!(!r.reject_at(0.05));
    }

    #[test]
    fn constant_sample_differs_from_mu0() {
        let r = one_sample_ttest(&[5.0; 6], 7.0, Alternative::TwoSided).unwrap();
        assert_eq!(r.p_value, 0.0);
        assert!(r.reject_at(0.05));
        assert!(r.statistic.is_infinite() && r.statistic < 0.0);
    }

    #[test]
    fn alternative_default_is_two_sided() {
        assert_eq!(Alternative::default(), Alternative::TwoSided);
    }
}
