//! Statistical substrate for the BAYWATCH beaconing-detection reproduction.
//!
//! The BAYWATCH pipeline (Hu et al., DSN 2016) leans on a handful of classic
//! statistical tools:
//!
//! * a **one-sample t-test** used in the pruning step (§IV, Step 2) to decide
//!   whether a candidate period is statistically compatible with the observed
//!   inter-arrival intervals,
//! * **descriptive statistics** (mean, variance, percentiles) used throughout
//!   the ranking and pruning filters,
//! * **Shannon entropy** and **n-gram histograms** of symbolized interval
//!   series, used as classifier features (§VI, Table II),
//! * the **Normal** and **Student-t** distributions backing the hypothesis
//!   tests and the synthetic noise models of the evaluation (§VIII-A).
//!
//! None of these are heavyweight enough to justify an external numerics
//! dependency, so this crate implements them from scratch on `f64`, with
//! accuracy adequate for hypothesis testing (absolute CDF error well below
//! 1e-10 for the normal distribution and below 1e-8 for Student-t).
//!
//! # Example
//!
//! ```
//! use baywatch_stats::ttest::{one_sample_ttest, Alternative};
//!
//! // Intervals observed from a beacon with a nominal 60 s period.
//! let intervals = [59.2, 60.4, 60.1, 59.7, 60.3, 59.9, 60.2];
//! let t = one_sample_ttest(&intervals, 60.0, Alternative::TwoSided).unwrap();
//! assert!(t.p_value > 0.05, "60 s should not be rejected as the true period");
//! ```

pub mod describe;
pub mod dist;
pub mod entropy;
pub mod histogram;
pub mod special;
pub mod streaming;
pub mod ttest;

pub use describe::{mean, percentile, std_dev, variance, Summary};
pub use dist::{Normal, StudentsT};
pub use entropy::shannon_entropy;
pub use histogram::Histogram;
pub use ttest::{one_sample_ttest, Alternative, TTestResult};

/// Errors produced by statistical routines in this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StatsError {
    /// The input sample was empty or too small for the requested statistic.
    InsufficientData {
        /// Number of observations required.
        required: usize,
        /// Number of observations provided.
        actual: usize,
    },
    /// A distribution parameter was out of its valid domain.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable constraint that was violated.
        constraint: &'static str,
    },
    /// The sample variance was zero where a positive variance is required.
    ZeroVariance,
}

impl std::fmt::Display for StatsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StatsError::InsufficientData { required, actual } => write!(
                f,
                "insufficient data: required at least {required} observations, got {actual}"
            ),
            StatsError::InvalidParameter { name, constraint } => {
                write!(f, "invalid parameter `{name}`: {constraint}")
            }
            StatsError::ZeroVariance => write!(f, "sample variance is zero"),
        }
    }
}

impl std::error::Error for StatsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_nonempty() {
        let e = StatsError::InsufficientData {
            required: 2,
            actual: 0,
        };
        assert!(!e.to_string().is_empty());
        let e = StatsError::InvalidParameter {
            name: "sigma",
            constraint: "must be positive",
        };
        assert!(e.to_string().contains("sigma"));
        assert!(!StatsError::ZeroVariance.to_string().is_empty());
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<StatsError>();
    }
}
