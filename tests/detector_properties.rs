//! Property-based tests on the core detection invariants, spanning the
//! timeseries and netsim crates.

use baywatch::netsim::synth::{random_arrivals, SyntheticBeacon};
use baywatch::timeseries::detector::{DetectorConfig, PeriodicityDetector};
use baywatch::timeseries::series::{intervals_of, TimeSeries};
use baywatch::timeseries::ExecBudget;
use proptest::prelude::*;

/// Deterministic replay of the recorded `clean_beacons_always_detected`
/// proptest regression (`detector_properties.proptest-regressions`,
/// shrunk to `period = 83, seed = 6`): a clean 83 s train must always
/// yield a candidate within 10% of the truth, at every event count the
/// property ranges over. The failure mode was harmonic crowding — with a
/// span that is not an integer multiple of the period, the strongest-k
/// periodogram cut could retain only higher-harmonic lines, all of which
/// pruning then (correctly) rejected as below the minimum interval; see
/// the harmonic-crowding guard in `PeriodicityDetector::detect_series_in`.
#[test]
fn regression_clean_beacon_period_83_seed_6() {
    let detector = PeriodicityDetector::new(DetectorConfig::default());
    for count in [60usize, 83, 100, 128, 150, 199] {
        let ts = SyntheticBeacon {
            period: 83.0,
            count,
            ..Default::default()
        }
        .generate(6);
        let report = detector.detect(&ts).unwrap();
        assert!(
            report.is_periodic(),
            "period 83, count {count} not detected"
        );
        let hit = report
            .candidates
            .iter()
            .any(|c| (c.period - 83.0).abs() <= 8.3);
        assert!(
            hit,
            "no candidate near 83 at count {count}: {:?}",
            report.candidates
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any clean periodic train with a sane period and enough events is
    /// detected, and the recovered period is within 10% of the truth.
    #[test]
    fn clean_beacons_always_detected(period in 10u64..600, count in 60u64..200, seed in 0u64..50) {
        let ts = SyntheticBeacon {
            period: period as f64,
            count: count as usize,
            ..Default::default()
        }
        .generate(seed);
        let detector = PeriodicityDetector::new(DetectorConfig::default());
        let report = detector.detect(&ts).unwrap();
        prop_assert!(report.is_periodic(), "period {period} not detected");
        let hit = report
            .candidates
            .iter()
            .any(|c| (c.period - period as f64).abs() <= 0.1 * period as f64);
        prop_assert!(hit, "no candidate near {period}: {:?}", report.candidates);
    }

    /// Mild jitter (σ ≤ 5% of the period) never defeats detection.
    #[test]
    fn mild_jitter_is_harmless(period in 30u64..300, seed in 0u64..30) {
        let ts = SyntheticBeacon {
            period: period as f64,
            gaussian_sigma: period as f64 * 0.05,
            count: 150,
            ..Default::default()
        }
        .generate(seed);
        let detector = PeriodicityDetector::new(DetectorConfig::default());
        let report = detector.detect(&ts).unwrap();
        prop_assert!(report.is_periodic());
    }

    /// Exponential (memoryless) arrivals are essentially never verified
    /// with a strong score: the permutation threshold + ACF verification
    /// must hold the false-positive line.
    #[test]
    fn random_arrivals_rarely_verify(mean_gap in 20f64..400.0, seed in 0u64..40) {
        let ts = random_arrivals(1_000_000, 200, mean_gap, seed);
        let detector = PeriodicityDetector::new(DetectorConfig::default());
        let report = detector.detect(&ts).unwrap();
        if let Some(best) = report.best() {
            prop_assert!(
                best.acf_score < 0.5,
                "random traffic verified strongly: {best:?}"
            );
        }
    }

    /// Rescaling preserves total event counts for any timestamp set.
    #[test]
    fn rescale_preserves_mass(raw in prop::collection::vec(0u64..100_000, 2..200), factor in 2u64..120) {
        let mut ts = raw;
        ts.sort_unstable();
        let fine = TimeSeries::from_timestamps(&ts, 1).unwrap();
        let coarse = fine.rescale(factor).unwrap();
        let fine_sum: f64 = fine.values().iter().sum();
        let coarse_sum: f64 = coarse.values().iter().sum();
        prop_assert_eq!(fine_sum, coarse_sum);
        prop_assert_eq!(coarse.scale(), factor);
    }

    /// intervals_of is the discrete derivative of the timestamps: its sum
    /// equals the span, and every interval is non-negative.
    #[test]
    fn intervals_sum_to_span(raw in prop::collection::vec(0u64..1_000_000, 2..300)) {
        let mut ts = raw;
        ts.sort_unstable();
        let iv = intervals_of(&ts).unwrap();
        let span = (ts[ts.len() - 1] - ts[0]) as f64;
        let sum: f64 = iv.iter().sum();
        prop_assert!((sum - span).abs() < 1e-9);
        prop_assert!(iv.iter().all(|&i| i >= 0.0));
    }

    /// Detection under an explicitly unlimited [`ExecBudget`] is
    /// byte-identical to plain detection for any input: the budget
    /// checkpoints only ever early-return — they never perturb RNG
    /// streams, permutation order, or numerical state.
    #[test]
    fn unlimited_budget_never_changes_detection(
        period in 10u64..400,
        count in 40u64..160,
        sigma_pct in 0u64..8,
        seed in 0u64..40,
    ) {
        let ts = SyntheticBeacon {
            period: period as f64,
            gaussian_sigma: period as f64 * sigma_pct as f64 / 100.0,
            count: count as usize,
            ..Default::default()
        }
        .generate(seed);
        let detector = PeriodicityDetector::new(DetectorConfig::default());
        let plain = detector.detect(&ts);
        let budgeted = detector.detect_budgeted(&ts, &ExecBudget::unlimited());
        prop_assert_eq!(plain, budgeted);
    }

    /// The detector never fabricates a period longer than the observation
    /// window or shorter than the time scale.
    #[test]
    fn detected_periods_are_physical(period in 15u64..200, seed in 0u64..20) {
        let ts = SyntheticBeacon {
            period: period as f64,
            gaussian_sigma: 1.0,
            count: 120,
            ..Default::default()
        }
        .generate(seed);
        let span = (ts[ts.len() - 1] - ts[0]) as f64;
        let detector = PeriodicityDetector::new(DetectorConfig::default());
        let report = detector.detect(&ts).unwrap();
        for c in &report.candidates {
            prop_assert!(c.period >= 1.0, "sub-scale period {}", c.period);
            prop_assert!(c.period <= span, "period {} exceeds span {span}", c.period);
            prop_assert!(c.acf_score <= 1.0 + 1e-9);
            prop_assert!(c.frequency > 0.0);
        }
    }
}
