//! Fault-tolerant execution support: retry/quarantine policy, the
//! per-run [`FaultReport`], and the deterministic [`FaultPlan`] injection
//! harness used by the robustness tests.
//!
//! The paper runs over ~30 B proxy events where pathological records are
//! the norm; production MapReduce systems (Dean & Ghemawat) treat task
//! failure and bad-record skipping as first-class for exactly that reason.
//! [`MapReduce::run_fault_tolerant`](crate::MapReduce::run_fault_tolerant)
//! follows the same model: every map chunk and reduce partition runs under
//! `catch_unwind` with bounded retries, repeated failures are bisected down
//! to the poison record or key, the poison unit is quarantined (counted and
//! sampled, not propagated), and the run completes in degraded mode.

use std::any::Any;
use std::collections::{HashMap, HashSet};
use std::fmt::Debug;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Retry and quarantine policy for a fault-tolerant run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPolicy {
    /// Additional attempts granted to a failing task (map slice or reduce
    /// key) before it is bisected or quarantined. `0` quarantines on the
    /// first failure; the default of `2` absorbs transient faults.
    pub max_task_retries: usize,
    /// Upper bound on the number of `Debug` samples retained per category
    /// in the [`FaultReport`] (quarantined inputs, keys, panic messages).
    /// Counting is always exact; only the samples are bounded.
    pub sample_limit: usize,
    /// Per-task wall-clock deadline (straggler handling, Dean & Ghemawat
    /// §3.6). `None` — the default — disables deadline checks entirely and
    /// keeps the engine on its original code paths. When armed, a map
    /// slice whose successful attempt overran the deadline is discarded
    /// and bisected exactly like a poison slice (down to a quarantined
    /// single record), and a reduce key whose invocation overran is
    /// quarantined with its values; both are recorded in the `timed_out`
    /// category of the [`FaultReport`], distinct from panics.
    pub task_deadline: Option<Duration>,
}

impl Default for FaultPolicy {
    fn default() -> Self {
        Self {
            max_task_retries: 2,
            sample_limit: 8,
            task_deadline: None,
        }
    }
}

/// What the fault-tolerant engine had to do to complete a run.
///
/// Returned alongside the results by
/// [`MapReduce::run_fault_tolerant`](crate::MapReduce::run_fault_tolerant);
/// a clean run has all counters at zero ([`FaultReport::is_clean`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultReport {
    /// Map-side task attempts beyond the first (transient faults absorbed).
    pub map_retries: usize,
    /// Reduce-side task attempts beyond the first.
    pub reduce_retries: usize,
    /// Input records quarantined after bisection isolated them as poison.
    pub quarantined_inputs: usize,
    /// Map-slice bisection splits performed while isolating poison or
    /// straggler records (each split re-maps both halves of a slice).
    pub map_bisections: usize,
    /// Reduce keys quarantined after retries were exhausted.
    pub quarantined_keys: usize,
    /// Input records dropped because mapping them overran the task
    /// deadline (straggler quarantine, distinct from panic quarantine).
    pub timed_out_inputs: usize,
    /// Reduce keys dropped because reducing them overran the task
    /// deadline.
    pub timed_out_keys: usize,
    /// Shuffled values dropped together with quarantined or timed-out
    /// reduce keys.
    pub lost_values: usize,
    /// Checkpoint restores refused during a resumed sharded run — a
    /// missing, corrupt, digest-mismatched or truncated shard
    /// checkpoint, or an untrusted manifest, each downgraded to fresh
    /// re-execution. A *process* fact, not a data fact: the affected
    /// shards re-executed correctly, so this does not flip
    /// [`FaultReport::is_clean`].
    pub checkpoint_corruptions: usize,
    /// Human-readable descriptions of the refused restores (bounded
    /// sample).
    pub corruption_samples: Vec<String>,
    /// `Debug` renderings of quarantined inputs (bounded sample).
    pub input_samples: Vec<String>,
    /// `Debug` renderings of quarantined reduce keys (bounded sample).
    pub key_samples: Vec<String>,
    /// `Debug` renderings of timed-out units (bounded sample).
    pub timeout_samples: Vec<String>,
    /// Panic messages observed (bounded sample, deduplicated).
    pub panic_samples: Vec<String>,
    /// Wall-clock time of the map phase.
    pub map_elapsed: Duration,
    /// Wall-clock time of the shuffle phase.
    pub shuffle_elapsed: Duration,
    /// Wall-clock time of the reduce phase.
    pub reduce_elapsed: Duration,
}

impl FaultReport {
    /// Whether the run needed no retries, quarantined nothing, and timed
    /// nothing out.
    pub fn is_clean(&self) -> bool {
        self.map_retries == 0
            && self.reduce_retries == 0
            && self.quarantined_inputs == 0
            && self.quarantined_keys == 0
            && self.timed_out_inputs == 0
            && self.timed_out_keys == 0
    }

    /// Total quarantined units (poison inputs plus poison keys; timed-out
    /// units are counted separately in [`FaultReport::timed_out_units`]).
    pub fn quarantined_units(&self) -> usize {
        self.quarantined_inputs + self.quarantined_keys
    }

    /// Total timed-out units (straggler inputs plus straggler keys).
    pub fn timed_out_units(&self) -> usize {
        self.timed_out_inputs + self.timed_out_keys
    }

    /// Records that did not contribute to the output: poison and timed-out
    /// inputs plus the values dropped with quarantined or timed-out keys.
    pub fn skipped_records(&self) -> usize {
        self.quarantined_inputs + self.timed_out_inputs + self.lost_values
    }

    /// Counts one refused checkpoint restore, retaining the description
    /// while under the sample bound.
    pub fn note_checkpoint_corruption(&mut self, sample: String, sample_limit: usize) {
        self.checkpoint_corruptions += 1;
        if self.corruption_samples.len() < sample_limit && !self.corruption_samples.contains(&sample)
        {
            self.corruption_samples.push(sample);
        }
    }

    /// Folds another report into this one (counters summed, sample lists
    /// concatenated under the same bound, phase timings added). Used when a
    /// pipeline chains several fault-tolerant jobs and wants one aggregate.
    pub fn absorb(&mut self, other: &FaultReport) {
        self.map_retries += other.map_retries;
        self.reduce_retries += other.reduce_retries;
        self.quarantined_inputs += other.quarantined_inputs;
        self.map_bisections += other.map_bisections;
        self.quarantined_keys += other.quarantined_keys;
        self.timed_out_inputs += other.timed_out_inputs;
        self.timed_out_keys += other.timed_out_keys;
        self.lost_values += other.lost_values;
        self.checkpoint_corruptions += other.checkpoint_corruptions;
        extend_bounded(&mut self.corruption_samples, &other.corruption_samples);
        extend_bounded(&mut self.input_samples, &other.input_samples);
        extend_bounded(&mut self.key_samples, &other.key_samples);
        extend_bounded(&mut self.timeout_samples, &other.timeout_samples);
        extend_bounded(&mut self.panic_samples, &other.panic_samples);
        self.map_elapsed += other.map_elapsed;
        self.shuffle_elapsed += other.shuffle_elapsed;
        self.reduce_elapsed += other.reduce_elapsed;
    }
}

/// Aggregate cap applied when merging sample lists across jobs.
const ABSORB_SAMPLE_LIMIT: usize = 32;

fn extend_bounded(dst: &mut Vec<String>, src: &[String]) {
    for s in src {
        if dst.len() >= ABSORB_SAMPLE_LIMIT {
            break;
        }
        if !dst.contains(s) {
            dst.push(s.clone());
        }
    }
}

/// Renders a panic payload as a message string.
pub(crate) fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Per-phase fault accumulator used inside the engine workers.
#[derive(Debug, Default)]
pub(crate) struct PhaseFaults {
    pub retries: usize,
    pub quarantined: usize,
    pub bisections: usize,
    pub timed_out: usize,
    pub lost_values: usize,
    pub backoff_waits: usize,
    pub backoff_nanos: u64,
    pub unit_samples: Vec<String>,
    pub timeout_samples: Vec<String>,
    pub panic_samples: Vec<String>,
}

impl PhaseFaults {
    pub fn note_panic(&mut self, payload: Box<dyn Any + Send>, policy: &FaultPolicy) {
        let msg = panic_message(payload.as_ref());
        if self.panic_samples.len() < policy.sample_limit && !self.panic_samples.contains(&msg) {
            self.panic_samples.push(msg);
        }
    }

    pub fn quarantine(&mut self, unit: String, lost_values: usize, policy: &FaultPolicy) {
        self.quarantined += 1;
        self.lost_values += lost_values;
        if self.unit_samples.len() < policy.sample_limit {
            self.unit_samples.push(unit);
        }
    }

    /// Records a unit dropped for overrunning the task deadline — the
    /// straggler analogue of [`PhaseFaults::quarantine`].
    pub fn quarantine_timeout(&mut self, unit: String, lost_values: usize, policy: &FaultPolicy) {
        self.timed_out += 1;
        self.lost_values += lost_values;
        if self.timeout_samples.len() < policy.sample_limit {
            self.timeout_samples.push(unit);
        }
    }

    pub fn merge(&mut self, other: PhaseFaults) {
        self.retries += other.retries;
        self.quarantined += other.quarantined;
        self.bisections += other.bisections;
        self.timed_out += other.timed_out;
        self.lost_values += other.lost_values;
        self.backoff_waits += other.backoff_waits;
        self.backoff_nanos = self.backoff_nanos.saturating_add(other.backoff_nanos);
        self.unit_samples.extend(other.unit_samples);
        self.timeout_samples.extend(other.timeout_samples);
        self.panic_samples.extend(other.panic_samples);
    }
}

/// A deterministic fault-injection plan: the test harness arms one of
/// these, the instrumented mappers/reducers call the `checkpoint`
/// methods, and the plan panics at exactly the programmed points.
///
/// No randomness is involved — faults fire on the Nth map invocation
/// (counted atomically across workers) or on exact `Debug` renderings of
/// reduce keys / map inputs — so a failing run replays identically.
///
/// # Example
///
/// ```
/// use baywatch_mapreduce::fault::FaultPlan;
/// use baywatch_mapreduce::{JobConfig, MapReduce};
///
/// let plan = FaultPlan::new()
///     .panic_on_map_call(1)      // one transient map fault, absorbed by retry
///     .poison_key("\"bad\"");    // this key always fails → quarantined
/// let engine = MapReduce::new(JobConfig { partitions: 4, threads: 2 });
/// let (out, report) = engine.run_fault_tolerant(
///     vec!["ok bad ok", "ok"],
///     |doc, emit| {
///         plan.map_checkpoint(doc);
///         for w in doc.split_whitespace() {
///             emit(w.to_owned(), 1usize);
///         }
///     },
///     |word, ones| {
///         plan.reduce_checkpoint(word);
///         vec![(word.clone(), ones.len())]
///     },
/// );
/// assert_eq!(out, vec![("ok".to_owned(), 3)]);
/// assert_eq!(report.quarantined_keys, 1);
/// assert!(report.map_retries >= 1);
/// ```
#[derive(Debug, Default)]
pub struct FaultPlan {
    map_calls: AtomicUsize,
    map_panic_calls: HashSet<usize>,
    poison_inputs: HashSet<String>,
    poison_keys: HashSet<String>,
    transient_keys: Mutex<HashMap<String, usize>>,
    delay_map_calls: HashMap<usize, Duration>,
    delay_inputs: HashMap<String, Duration>,
    delay_keys: HashMap<String, Duration>,
    save_fail_next: AtomicUsize,
    save_fail_all: AtomicBool,
    injected: AtomicUsize,
}

impl FaultPlan {
    /// An empty plan (no faults fire until programmed).
    pub fn new() -> Self {
        Self::default()
    }

    /// Panic on the `n`-th map checkpoint (0-based, counted atomically
    /// across all workers and attempts). Because the counter advances on
    /// every call, the fault is transient: the retry of the same slice
    /// draws a later count and succeeds.
    pub fn panic_on_map_call(mut self, n: usize) -> Self {
        self.map_panic_calls.insert(n);
        self
    }

    /// Panic whenever the map checkpoint sees an input whose `Debug`
    /// rendering equals `input` — a permanent poison record, forcing
    /// bisection and quarantine.
    pub fn poison_input(mut self, input: &str) -> Self {
        self.poison_inputs.insert(input.to_owned());
        self
    }

    /// Panic whenever the reduce checkpoint sees a key whose `Debug`
    /// rendering equals `key` — a permanent poison key, quarantined after
    /// the retry budget is exhausted.
    pub fn poison_key(mut self, key: &str) -> Self {
        self.poison_keys.insert(key.to_owned());
        self
    }

    /// Fail the reduce key with `Debug` rendering `key` for the next
    /// `rounds` checkpoints, then let it succeed (a transient key fault,
    /// absorbed by the retry budget when `rounds` is small enough).
    pub fn fail_key(self, key: &str, rounds: usize) -> Self {
        {
            let mut map = lock_recovering(&self.transient_keys);
            map.insert(key.to_owned(), rounds);
        }
        self
    }

    /// Sleep for `millis` on the `n`-th map checkpoint (0-based, counted
    /// atomically across workers and attempts) — a *transient* straggler:
    /// the bisection re-run of the same slice draws later counts and runs
    /// at full speed, so no record is lost when a task deadline is armed.
    pub fn delay_map_call(mut self, n: usize, millis: u64) -> Self {
        self.delay_map_calls
            .insert(n, Duration::from_millis(millis));
        self
    }

    /// Sleep for `millis` whenever the map checkpoint sees an input whose
    /// `Debug` rendering equals `input` — a *persistent* straggler record:
    /// with a task deadline armed, bisection isolates it and quarantines
    /// it as timed out.
    pub fn delay_input(mut self, input: &str, millis: u64) -> Self {
        self.delay_inputs
            .insert(input.to_owned(), Duration::from_millis(millis));
        self
    }

    /// Sleep for `millis` whenever the reduce checkpoint sees a key whose
    /// `Debug` rendering equals `key` — a persistent straggler key,
    /// quarantined as timed out when a task deadline is armed.
    pub fn delay_key(mut self, key: &str, millis: u64) -> Self {
        self.delay_keys
            .insert(key.to_owned(), Duration::from_millis(millis));
        self
    }

    /// Fail the next `n` checkpoint writes with an injected I/O error,
    /// then let writes succeed again — a *transient* storage fault (a
    /// briefly full disk, an NFS hiccup).
    pub fn fail_next_saves(self, n: usize) -> Self {
        self.save_fail_next.store(n, Ordering::SeqCst);
        self
    }

    /// Fail every checkpoint write from now on — a *persistent* storage
    /// fault (checkpoint directory unwritable for the rest of the run).
    pub fn fail_all_saves(self) -> Self {
        self.save_fail_all.store(true, Ordering::SeqCst);
        self
    }

    /// Called by the sharded engine before each checkpoint write; returns
    /// the injected I/O error when the plan says this write must fail.
    ///
    /// # Errors
    ///
    /// Returns an [`std::io::ErrorKind::Other`] error when a transient or
    /// persistent save fault is armed for this write.
    pub fn save_checkpoint(&self) -> std::io::Result<()> {
        if self.save_fail_all.load(Ordering::SeqCst) {
            self.injected.fetch_add(1, Ordering::Relaxed);
            return Err(std::io::Error::new(
                std::io::ErrorKind::Other,
                "injected fault: persistent checkpoint write failure",
            ));
        }
        let fired = self
            .save_fail_next
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
            .is_ok();
        if fired {
            self.injected.fetch_add(1, Ordering::Relaxed);
            return Err(std::io::Error::new(
                std::io::ErrorKind::Other,
                "injected fault: transient checkpoint write failure",
            ));
        }
        Ok(())
    }

    /// How many faults the plan has fired so far.
    pub fn injected_faults(&self) -> usize {
        self.injected.load(Ordering::Relaxed)
    }

    /// Called by instrumented mappers once per map invocation; panics when
    /// the plan says this invocation (or this input) must fail.
    pub fn map_checkpoint<T: Debug>(&self, input: &T) {
        let n = self.map_calls.fetch_add(1, Ordering::Relaxed);
        if let Some(&delay) = self.delay_map_calls.get(&n) {
            self.injected.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(delay);
        }
        if self.map_panic_calls.contains(&n) {
            self.injected.fetch_add(1, Ordering::Relaxed);
            panic!("injected fault: map call {n}");
        }
        if !self.poison_inputs.is_empty() || !self.delay_inputs.is_empty() {
            let repr = format!("{input:?}");
            if let Some(&delay) = self.delay_inputs.get(&repr) {
                self.injected.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(delay);
            }
            if self.poison_inputs.contains(&repr) {
                self.injected.fetch_add(1, Ordering::Relaxed);
                panic!("injected fault: poison input {repr}");
            }
        }
    }

    /// Called by instrumented reducers once per key; panics when the plan
    /// says this key must fail (permanently or for a remaining round).
    pub fn reduce_checkpoint<K: Debug>(&self, key: &K) {
        let repr = format!("{key:?}");
        if let Some(&delay) = self.delay_keys.get(&repr) {
            self.injected.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(delay);
        }
        if self.poison_keys.contains(&repr) {
            self.injected.fetch_add(1, Ordering::Relaxed);
            panic!("injected fault: poison key {repr}");
        }
        let fire = {
            let mut map = lock_recovering(&self.transient_keys);
            match map.get_mut(&repr) {
                Some(rounds) if *rounds > 0 => {
                    *rounds -= 1;
                    true
                }
                _ => false,
            }
        };
        if fire {
            self.injected.fetch_add(1, Ordering::Relaxed);
            panic!("injected fault: transient key {repr}");
        }
    }
}

/// Locks a mutex, recovering the guard if a previous holder panicked (the
/// entire point of this module is surviving panics).
fn lock_recovering<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;

    #[test]
    fn default_policy_is_sane() {
        let p = FaultPolicy::default();
        assert!(p.max_task_retries >= 1);
        assert!(p.sample_limit >= 1);
    }

    #[test]
    fn report_absorb_sums_counters() {
        let mut a = FaultReport {
            map_retries: 1,
            quarantined_inputs: 2,
            input_samples: vec!["x".into()],
            map_elapsed: Duration::from_millis(5),
            ..Default::default()
        };
        let b = FaultReport {
            map_retries: 2,
            quarantined_keys: 1,
            lost_values: 3,
            input_samples: vec!["y".into()],
            map_elapsed: Duration::from_millis(7),
            ..Default::default()
        };
        a.absorb(&b);
        assert_eq!(a.map_retries, 3);
        assert_eq!(a.quarantined_inputs, 2);
        assert_eq!(a.quarantined_keys, 1);
        assert_eq!(a.lost_values, 3);
        assert_eq!(a.quarantined_units(), 3);
        assert_eq!(a.skipped_records(), 5);
        assert_eq!(a.input_samples, vec!["x".to_owned(), "y".to_owned()]);
        assert_eq!(a.map_elapsed, Duration::from_millis(12));
        assert!(!a.is_clean());
        assert!(FaultReport::default().is_clean());
    }

    #[test]
    fn plan_fires_on_programmed_map_call_only() {
        let plan = FaultPlan::new().panic_on_map_call(1);
        plan.map_checkpoint(&"a"); // call 0: fine
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            plan.map_checkpoint(&"b") // call 1: fires
        }));
        assert!(err.is_err());
        plan.map_checkpoint(&"c"); // call 2: fine again (transient)
        assert_eq!(plan.injected_faults(), 1);
    }

    #[test]
    fn plan_poison_input_fires_every_time() {
        let plan = FaultPlan::new().poison_input("\"bad\"");
        for _ in 0..3 {
            let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                plan.map_checkpoint(&"bad")
            }));
            assert!(err.is_err());
        }
        plan.map_checkpoint(&"good");
        assert_eq!(plan.injected_faults(), 3);
    }

    #[test]
    fn plan_transient_key_recovers_after_rounds() {
        let plan = FaultPlan::new().fail_key("\"k\"", 2);
        for _ in 0..2 {
            let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                plan.reduce_checkpoint(&"k")
            }));
            assert!(err.is_err());
        }
        plan.reduce_checkpoint(&"k"); // rounds exhausted: succeeds
        assert_eq!(plan.injected_faults(), 2);
    }

    #[test]
    fn panic_message_extracts_strings() {
        let boxed: Box<dyn Any + Send> = Box::new("static str");
        assert_eq!(panic_message(boxed.as_ref()), "static str");
        let boxed: Box<dyn Any + Send> = Box::new("owned".to_owned());
        assert_eq!(panic_message(boxed.as_ref()), "owned");
        let boxed: Box<dyn Any + Send> = Box::new(42u32);
        assert_eq!(panic_message(boxed.as_ref()), "non-string panic payload");
    }
}
