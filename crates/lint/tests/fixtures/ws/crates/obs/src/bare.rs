//! L5 fixture: a bare imported ordering in a file with *no* declared
//! `[[atomic]]` policy — the missing policy is itself the finding.

use std::sync::atomic::AtomicU64;
use std::sync::atomic::Ordering::SeqCst;

/// Positive: flagged as "no declared ordering policy" for this file.
/// The variant inside the `use` above is a declaration, not a site.
pub fn drain(n: &AtomicU64) -> u64 {
    n.swap(0, SeqCst)
}
