//! Table IV — confusion matrix of the bootstrap case classification.
//!
//! Paper (2,352 flagged cases, forest trained on one month, VirusTotal
//! ground truth):
//!
//! ```text
//!                 classified benign   classified malicious
//! true benign                  2163                      0
//! true malicious                 41                    148
//! ```
//!
//! The headline property is the **zero false-positive rate** with high
//! (but imperfect) recall; this binary reproduces that shape on the
//! synthesized flagged-case population.

#![warn(clippy::unwrap_used)]

use baywatch_bench::bootstrap::{run, BootstrapExperiment};
use baywatch_bench::{f, save_json};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("=== Table IV: confusion matrix of case classification ===\n");

    let cfg = BootstrapExperiment::default();
    let out = run(&cfg)?;

    println!("{}\n", out.confusion);
    println!("total test cases        {}", out.confusion.total());
    println!(
        "false positive rate     {}",
        f(out.confusion.false_positive_rate(), 4)
    );
    println!("recall                  {}", f(out.confusion.recall(), 4));
    println!(
        "precision               {}",
        f(out.confusion.precision(), 4)
    );
    println!("accuracy                {}", f(out.confusion.accuracy(), 4));
    println!(
        "OOB error (train)       {}",
        out.oob_error.map(|e| f(e, 4)).unwrap_or_else(|| "-".into())
    );

    println!("\npaper reference: FP rate 0.0000, recall 148/189 = 0.7831, 2352 cases");

    println!("\n--- Table-II feature importances (mean decrease in impurity) ---");
    for (name, v) in out.feature_importances.iter().take(6) {
        println!("  {name:<20} {}", f(*v, 3));
    }

    // Shape assertions: near-zero FP rate, solid recall.
    assert!(
        out.confusion.false_positive_rate() < 0.02,
        "FP rate {} too high vs paper's 0",
        out.confusion.false_positive_rate()
    );
    assert!(
        out.confusion.recall() > 0.7,
        "recall {} below the paper's band",
        out.confusion.recall()
    );

    save_json(
        "table04_confusion",
        &(
            out.confusion.true_negative,
            out.confusion.false_positive,
            out.confusion.false_negative,
            out.confusion.true_positive,
        ),
    );
    Ok(())
}
