//! Runs every experiment binary in sequence — the one-shot reproduction of
//! the paper's evaluation section. Equivalent to invoking each
//! `cargo run --release -p baywatch-bench --bin <exp>` by hand.

use std::process::Command;

const EXPERIMENTS: &[&str] = &[
    "lm_scores",
    "fig05_permutation",
    "fig06_pruning",
    "fig07_gmm",
    "fig10_noise",
    "table03_volumes",
    "table04_confusion",
    "fig11_uncertainty",
    "table05_cases",
    "table06_top5",
    "scalability",
    "ablations",
];

fn main() {
    let exe_dir = std::env::current_exe()
        .expect("current exe path")
        .parent()
        .expect("exe dir")
        .to_path_buf();

    let mut failures = Vec::new();
    for exp in EXPERIMENTS {
        println!("\n================================================================");
        println!("=== running {exp}");
        println!("================================================================\n");
        let status = Command::new(exe_dir.join(exp))
            .status()
            .unwrap_or_else(|e| panic!("failed to spawn {exp}: {e}"));
        if !status.success() {
            eprintln!("!!! {exp} failed with {status}");
            failures.push(*exp);
        }
    }
    println!("\n================================================================");
    if failures.is_empty() {
        println!("all {} experiments completed", EXPERIMENTS.len());
    } else {
        println!("FAILED: {failures:?}");
        std::process::exit(1);
    }
}
