//! L2 — deterministic crates must be pure functions of their inputs.
//!
//! Four sub-rules, applied to non-test library code of the deterministic
//! crates (`timeseries`, `core`, `stats`, `netsim`):
//!
//! * **L2-ambient-rng** — `thread_rng()`, `rand::rng()`, `rand::random()`,
//!   `from_entropy()`: randomness that is not derived from an explicit seed
//!   makes reruns incomparable. Seeded `StdRng` is always fine.
//! * **L2-wall-clock** — `SystemTime::now` / `Instant::now`: verdicts must
//!   not depend on when the pipeline ran. (`ExecBudget` is the sanctioned,
//!   allowlisted exception: budgets only cause early exits, never change a
//!   completed pair's report.)
//! * **L2-ambient-fs** — `fs::<anything>` paths and bare `File::open` /
//!   `File::create` / `OpenOptions::new`: filesystem reads make the result
//!   depend on ambient disk state, and writes are side effects a pure
//!   pipeline stage must not have. Durable state belongs behind audited
//!   boundaries (`CheckpointStore` in `mapreduce`, the ingest/export pair
//!   in `core::io`) that are allowlisted with a written reason.
//! * **L2-hash-iter** — iterating a `HashMap`/`HashSet` observes
//!   `RandomState`'s per-process order. The iteration is flagged unless the
//!   order provably cannot reach the output: the chain ends in an
//!   order-insensitive terminal (`len`, `count`, `is_empty`, `any`, `all`,
//!   `min`, `max`), collects into a B-tree or hash container, is sorted in
//!   the same chain, or flows into a binding that is sorted later in the
//!   same function.
//!
//! Hash bindings are recovered per function from `let` statements, `fn`
//! parameters, and (file-wide) struct fields whose declared type names a
//! hash container. This is a heuristic, not a type checker: renaming a
//! map through an untyped intermediate hides it. The ratchet (and the
//! shuffle-determinism integration tests) backstop what the lexer cannot
//! see.

use std::collections::BTreeSet;

use super::{snippet_at, Finding};
use crate::lexer::{Token, TokenKind};
use crate::syntax::{File, Span};
use crate::walk::SourceFile;

const HASH_TYPES: &[&str] = &["HashMap", "HashSet"];
const ORDERED_TYPES: &[&str] = &["BTreeMap", "BTreeSet"];
/// Methods whose return value exposes iteration order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
];
/// Chain members that make the observed order irrelevant to the result.
const ORDER_INSENSITIVE: &[&str] = &["len", "count", "is_empty", "any", "all", "min", "max"];
const SORTS: &[&str] = &[
    "sort",
    "sort_by",
    "sort_unstable",
    "sort_unstable_by",
    "sort_by_key",
    "sort_by_cached_key",
];

pub fn check(sf: &SourceFile, file: &File, lines: &[&str], findings: &mut Vec<Finding>) {
    check_ambient_rng(sf, file, lines, findings);
    check_wall_clock(sf, file, lines, findings);
    check_ambient_fs(sf, file, lines, findings);
    check_hash_iteration(sf, file, lines, findings);
}

fn check_ambient_rng(sf: &SourceFile, file: &File, lines: &[&str], findings: &mut Vec<Finding>) {
    let tokens = &file.tokens;
    for (i, t) in tokens.iter().enumerate() {
        if file.in_test_code(i) {
            continue;
        }
        let ambient = (t.is_ident("thread_rng") || t.is_ident("from_entropy"))
            && tokens.get(i + 1).is_some_and(|n| n.is_punct('('))
            || t.is_ident("rand")
                && tokens.get(i + 1).is_some_and(|n| n.is_punct(':'))
                && tokens.get(i + 2).is_some_and(|n| n.is_punct(':'))
                && tokens
                    .get(i + 3)
                    .is_some_and(|n| n.is_ident("rng") || n.is_ident("random"))
                && tokens.get(i + 4).is_some_and(|n| n.is_punct('('));
        if ambient {
            findings.push(Finding {
                rule: "L2-ambient-rng",
                path: sf.rel_path.clone(),
                line: t.line,
                snippet: snippet_at(lines, t.line),
                message: "ambient RNG breaks rerun reproducibility; derive every random \
                          stream from an explicit seed (StdRng::seed_from_u64)"
                    .to_string(),
                fix: None,
            });
        }
    }
}

fn check_wall_clock(sf: &SourceFile, file: &File, lines: &[&str], findings: &mut Vec<Finding>) {
    let tokens = &file.tokens;
    for (i, t) in tokens.iter().enumerate() {
        if file.in_test_code(i) {
            continue;
        }
        let clock = (t.is_ident("SystemTime") || t.is_ident("Instant"))
            && tokens.get(i + 1).is_some_and(|n| n.is_punct(':'))
            && tokens.get(i + 2).is_some_and(|n| n.is_punct(':'))
            && tokens.get(i + 3).is_some_and(|n| n.is_ident("now"));
        if clock {
            findings.push(Finding {
                rule: "L2-wall-clock",
                path: sf.rel_path.clone(),
                line: t.line,
                snippet: snippet_at(lines, t.line),
                message: format!(
                    "{}::now() makes verdicts depend on when the run happened; thread a \
                     timestamp in as data (or allowlist with a written justification)",
                    t.text
                ),
                fix: None,
            });
        }
    }
}

fn check_ambient_fs(sf: &SourceFile, file: &File, lines: &[&str], findings: &mut Vec<Finding>) {
    let tokens = &file.tokens;
    for (i, t) in tokens.iter().enumerate() {
        if file.in_test_code(i) {
            continue;
        }
        let path2 = |at: usize| {
            tokens.get(at).is_some_and(|n| n.is_punct(':'))
                && tokens.get(at + 1).is_some_and(|n| n.is_punct(':'))
        };
        // Any `fs::<ident>` path segment: `std::fs::read_to_string`,
        // `std::fs::File::open`, `use std::fs::File` all anchor here.
        let fs_path = t.is_ident("fs")
            && path2(i + 1)
            && tokens
                .get(i + 3)
                .is_some_and(|n| n.kind == TokenKind::Ident);
        // Bare constructors after a `use` import. When the preceding token
        // is `:` the ident is part of a longer path and the `fs` segment
        // (or another crate's namespace) already owns the decision.
        let bare_ctor = !(i > 0 && tokens[i - 1].is_punct(':'))
            && (t.is_ident("File")
                && path2(i + 1)
                && tokens
                    .get(i + 3)
                    .is_some_and(|n| n.is_ident("open") || n.is_ident("create"))
                || t.is_ident("OpenOptions")
                    && path2(i + 1)
                    && tokens.get(i + 3).is_some_and(|n| n.is_ident("new")));
        if fs_path || bare_ctor {
            findings.push(Finding {
                rule: "L2-ambient-fs",
                path: sf.rel_path.clone(),
                line: t.line,
                snippet: snippet_at(lines, t.line),
                message: "filesystem access in a deterministic crate ties results to \
                          ambient disk state; route I/O through an audited boundary \
                          (or allowlist with a written justification)"
                    .to_string(),
                fix: None,
            });
        }
    }
}

/// One function's scope: its body span plus every binding known to hold a
/// hash container.
struct FnScope {
    body: Span,
    hashy: BTreeSet<String>,
}

fn check_hash_iteration(sf: &SourceFile, file: &File, lines: &[&str], findings: &mut Vec<Finding>) {
    let hashy_fields = collect_hashy_struct_fields(file);
    for scope in collect_fn_scopes(file) {
        let mut i = scope.body.start;
        while i < scope.body.end {
            if file.in_test_code(i) {
                i += 1;
                continue;
            }
            if let Some(site) = iteration_site(file, &scope, &hashy_fields, i) {
                if !is_suppressed(file, &scope, site.method_idx) {
                    let t = &file.tokens[site.anchor_idx];
                    findings.push(Finding {
                        rule: "L2-hash-iter",
                        path: sf.rel_path.clone(),
                        line: t.line,
                        snippet: snippet_at(lines, t.line),
                        message: "hash-container iteration order is nondeterministic and can \
                                  reach the output; sort the items or use a BTree collection"
                            .to_string(),
                        fix: None,
                    });
                }
                i = site.resume_idx;
                continue;
            }
            i += 1;
        }
    }
}

struct IterationSite {
    /// Token to report (the receiver identifier).
    anchor_idx: usize,
    /// Index of the iteration method ident (or of the receiver for `for`
    /// loops, which have no suppressing chain).
    method_idx: usize,
    /// Where the outer scan should resume.
    resume_idx: usize,
}

/// Recognizes `name.iter()`, `self.field.keys()`, `for x in &name`, and
/// `for x in &self.field` at token index `i`.
fn iteration_site(
    file: &File,
    scope: &FnScope,
    hashy_fields: &BTreeSet<String>,
    i: usize,
) -> Option<IterationSite> {
    let tokens = &file.tokens;
    let t = &tokens[i];

    // `for <pat> in [&[mut]] receiver {` — direct ordered traversal.
    if t.is_ident("for") {
        let in_idx = find_in_keyword(file, i)?;
        let mut j = in_idx + 1;
        while tokens
            .get(j)
            .is_some_and(|t| t.is_punct('&') || t.is_ident("mut"))
        {
            j += 1;
        }
        let (recv_end, is_hashy) = receiver_at(tokens, j, scope, hashy_fields)?;
        // The loop body must open right after the receiver — otherwise the
        // expression continues (method calls are handled by the other arm).
        if is_hashy && tokens.get(recv_end + 1).is_some_and(|t| t.is_punct('{')) {
            return Some(IterationSite {
                anchor_idx: j,
                method_idx: recv_end,
                resume_idx: recv_end + 1,
            });
        }
        return None;
    }

    // `receiver . iter_method (`
    let (recv_end, is_hashy) = receiver_at(tokens, i, scope, hashy_fields)?;
    if !is_hashy {
        return None;
    }
    let dot = recv_end + 1;
    let method = recv_end + 2;
    if tokens.get(dot).is_some_and(|t| t.is_punct('.'))
        && tokens
            .get(method)
            .is_some_and(|t| ITER_METHODS.iter().any(|m| t.is_ident(m)))
        && tokens.get(method + 1).is_some_and(|t| t.is_punct('('))
    {
        return Some(IterationSite {
            anchor_idx: i,
            method_idx: method,
            resume_idx: method + 1,
        });
    }
    None
}

/// If tokens starting at `i` form a known receiver — `name` or
/// `self.field` — returns (index of its last token, whether it is hashy).
fn receiver_at(
    tokens: &[Token],
    i: usize,
    scope: &FnScope,
    hashy_fields: &BTreeSet<String>,
) -> Option<(usize, bool)> {
    let t = tokens.get(i)?;
    if t.kind != TokenKind::Ident {
        return None;
    }
    if t.text == "self"
        && tokens.get(i + 1).is_some_and(|t| t.is_punct('.'))
        && tokens
            .get(i + 2)
            .is_some_and(|t| t.kind == TokenKind::Ident)
    {
        let field = &tokens[i + 2].text;
        return Some((i + 2, hashy_fields.contains(field)));
    }
    // Skip if this ident is itself a field/method of something else
    // (`x.name.iter()`): the preceding `.` means `name` is not the binding.
    if i > 0 && tokens[i - 1].is_punct('.') {
        return None;
    }
    Some((i, scope.hashy.contains(&t.text)))
}

/// The `in` keyword of a `for` loop header, skipping nested groups.
fn find_in_keyword(file: &File, for_idx: usize) -> Option<usize> {
    let tokens = &file.tokens;
    let mut j = for_idx + 1;
    while j < tokens.len() {
        let t = &tokens[j];
        if t.is_ident("in") {
            return Some(j);
        }
        if t.is_punct('{') || t.is_punct(';') {
            return None;
        }
        if t.is_punct('(') || t.is_punct('[') {
            j = file.matching(j)? + 1;
            continue;
        }
        j += 1;
    }
    None
}

/// Whether the iteration at `method_idx` provably cannot leak order into
/// the output. See the module docs for the accepted shapes.
fn is_suppressed(file: &File, scope: &FnScope, method_idx: usize) -> bool {
    let tokens = &file.tokens;
    let stmt_start = file.statement_start(method_idx);
    let stmt_end = file.statement_end(method_idx);

    // (a) Order-insensitive or sorting chain members, or a B-tree
    // turbofish, anywhere in the rest of the statement.
    for t in &tokens[method_idx..stmt_end] {
        if t.kind == TokenKind::Ident
            && (ORDER_INSENSITIVE.contains(&t.text.as_str())
                || SORTS.contains(&t.text.as_str())
                || ORDERED_TYPES.contains(&t.text.as_str()))
        {
            return true;
        }
    }

    // (b)/(c) A `let` statement: suppressed when the declared type is a
    // container without observable insertion order (hash: order never
    // materializes; B-tree: re-sorted), or when the binding is sorted
    // later in the same function.
    if !tokens.get(stmt_start).is_some_and(|t| t.is_ident("let")) {
        return false;
    }
    let mut j = stmt_start + 1;
    if tokens.get(j).is_some_and(|t| t.is_ident("mut")) {
        j += 1;
    }
    let Some(name_tok) = tokens.get(j).filter(|t| t.kind == TokenKind::Ident) else {
        return false;
    };
    let bound_name = name_tok.text.clone();

    // Declared-type scan: tokens between `:` and `=` at statement level.
    if tokens.get(j + 1).is_some_and(|t| t.is_punct(':')) {
        let mut k = j + 2;
        while k < stmt_end && !tokens[k].is_punct('=') {
            if tokens[k].kind == TokenKind::Ident
                && (HASH_TYPES.contains(&tokens[k].text.as_str())
                    || ORDERED_TYPES.contains(&tokens[k].text.as_str()))
            {
                return true;
            }
            k += 1;
        }
    }

    // Later `bound_name.sort*(…)` in the same function body.
    let mut k = stmt_end;
    while k + 2 < scope.body.end {
        if tokens[k].is_ident(&bound_name)
            && tokens[k + 1].is_punct('.')
            && SORTS.contains(&tokens[k + 2].text.as_str())
            && tokens[k + 2].kind == TokenKind::Ident
        {
            return true;
        }
        k += 1;
    }
    false
}

/// Struct fields (file-wide) whose declared type names a hash container.
fn collect_hashy_struct_fields(file: &File) -> BTreeSet<String> {
    let tokens = &file.tokens;
    let mut fields = BTreeSet::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if !tokens[i].is_ident("struct") {
            i += 1;
            continue;
        }
        // Find the body brace before any `;` (unit/tuple structs have none).
        let mut j = i + 1;
        let mut body = None;
        while j < tokens.len() {
            let t = &tokens[j];
            if t.is_punct(';') {
                break;
            }
            if t.is_punct('{') {
                body = file.matching(j).map(|end| (j, end));
                break;
            }
            if t.is_punct('(') || t.is_punct('[') {
                match file.matching(j) {
                    Some(c) => j = c + 1,
                    None => break,
                }
                continue;
            }
            j += 1;
        }
        let Some((open, close)) = body else {
            i = j + 1;
            continue;
        };
        // Fields at the body's own depth: `name : <type tokens> ,`.
        let mut k = open + 1;
        while k < close {
            let t = &tokens[k];
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                match file.matching(k) {
                    Some(c) => k = c + 1,
                    None => break,
                }
                continue;
            }
            if t.kind == TokenKind::Ident
                && tokens.get(k + 1).is_some_and(|n| n.is_punct(':'))
                && !tokens.get(k + 2).is_some_and(|n| n.is_punct(':'))
            {
                let name = t.text.clone();
                // Scan the field's type until the `,` at this depth.
                let mut m = k + 2;
                let mut hashy = false;
                while m < close {
                    let u = &tokens[m];
                    if u.is_punct(',') {
                        break;
                    }
                    if u.is_punct('(') || u.is_punct('[') || u.is_punct('{') {
                        match file.matching(m) {
                            Some(c) => m = c + 1,
                            None => break,
                        }
                        continue;
                    }
                    if u.kind == TokenKind::Ident && HASH_TYPES.contains(&u.text.as_str()) {
                        hashy = true;
                    }
                    m += 1;
                }
                if hashy {
                    fields.insert(name);
                }
                k = m + 1;
                continue;
            }
            k += 1;
        }
        i = close + 1;
    }
    fields
}

/// Every function body with its hash-typed bindings (params + `let`s).
fn collect_fn_scopes(file: &File) -> Vec<FnScope> {
    let tokens = &file.tokens;
    let mut scopes = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if !tokens[i].is_ident("fn") {
            i += 1;
            continue;
        }
        // Parameter list: first `(` group after the name/generics.
        let mut j = i + 1;
        let mut params: Option<(usize, usize)> = None;
        let mut body: Option<Span> = None;
        while j < tokens.len() {
            let t = &tokens[j];
            if t.is_punct(';') {
                break;
            }
            if t.is_punct('(') && params.is_none() {
                match file.matching(j) {
                    Some(c) => {
                        params = Some((j, c));
                        j = c + 1;
                    }
                    None => break,
                }
                continue;
            }
            if t.is_punct('(') || t.is_punct('[') {
                match file.matching(j) {
                    Some(c) => j = c + 1,
                    None => break,
                }
                continue;
            }
            if t.is_punct('{') {
                body = file.matching(j).map(|end| Span {
                    start: j,
                    end: end + 1,
                });
                break;
            }
            j += 1;
        }
        let Some(body) = body else {
            i = j + 1;
            continue;
        };

        let mut hashy = BTreeSet::new();
        // Params: `name : <type up to , at depth 0>`.
        if let Some((open, close)) = params {
            let mut k = open + 1;
            while k < close {
                let t = &tokens[k];
                if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                    match file.matching(k) {
                        Some(c) => k = c + 1,
                        None => break,
                    }
                    continue;
                }
                if t.kind == TokenKind::Ident && tokens.get(k + 1).is_some_and(|n| n.is_punct(':'))
                {
                    let name = t.text.clone();
                    let mut m = k + 2;
                    let mut is_hash = false;
                    while m < close {
                        let u = &tokens[m];
                        if u.is_punct(',') {
                            break;
                        }
                        if u.is_punct('(') || u.is_punct('[') || u.is_punct('{') {
                            match file.matching(m) {
                                Some(c) => m = c + 1,
                                None => break,
                            }
                            continue;
                        }
                        if u.kind == TokenKind::Ident && HASH_TYPES.contains(&u.text.as_str()) {
                            is_hash = true;
                        }
                        m += 1;
                    }
                    if is_hash {
                        hashy.insert(name);
                    }
                    k = m + 1;
                    continue;
                }
                k += 1;
            }
        }
        // `let [mut] name …;` statements that name a hash type at the
        // statement's own level: the type annotation and the constructor
        // head. Nested groups (closure bodies, call arguments) are skipped
        // — a `HashSet` inside a closure passed to a builder says nothing
        // about what the builder returns. Nested `let`s register on their
        // own because this scan visits every `let` token in the body.
        let mut k = body.start;
        while k < body.end {
            if tokens[k].is_ident("let") {
                let stmt_end = file.statement_end(k);
                let mut n = k + 1;
                if tokens.get(n).is_some_and(|t| t.is_ident("mut")) {
                    n += 1;
                }
                if let Some(name_tok) = tokens.get(n).filter(|t| t.kind == TokenKind::Ident) {
                    let mut m = n + 1;
                    let mut names_hash = false;
                    while m < stmt_end.min(tokens.len()) {
                        let u = &tokens[m];
                        if u.is_punct('(') || u.is_punct('[') || u.is_punct('{') {
                            match file.matching(m) {
                                Some(c) => m = c + 1,
                                None => break,
                            }
                            continue;
                        }
                        if u.kind == TokenKind::Ident && HASH_TYPES.contains(&u.text.as_str()) {
                            names_hash = true;
                            break;
                        }
                        m += 1;
                    }
                    if names_hash {
                        hashy.insert(name_tok.text.clone());
                    }
                }
            }
            k += 1;
        }
        scopes.push(FnScope { body, hashy });
        i = body.start + 1;
    }
    scopes
}

#[cfg(test)]
mod tests {
    use super::super::check_file;
    use crate::walk::{Section, SourceFile};
    use std::path::PathBuf;

    fn det_file() -> SourceFile {
        SourceFile {
            abs_path: PathBuf::from("crates/core/src/x.rs"),
            rel_path: "crates/core/src/x.rs".to_string(),
            crate_name: Some("core".to_string()),
            section: Section::Lib,
        }
    }

    fn rules_of(src: &str) -> Vec<&'static str> {
        check_file(&det_file(), src)
            .into_iter()
            .map(|f| f.rule)
            .collect()
    }

    #[test]
    fn ambient_rng_and_wall_clock_are_flagged() {
        let src = "fn a() { let r = rand::rng(); }\n\
                   fn b() { let t = std::time::SystemTime::now(); }\n\
                   fn c() { let t = Instant::now(); }\n\
                   fn d() { let mut r = StdRng::seed_from_u64(7); }";
        let rules = rules_of(src);
        assert_eq!(
            rules,
            ["L2-ambient-rng", "L2-wall-clock", "L2-wall-clock"],
            "seeded RNG must pass"
        );
    }

    #[test]
    fn ambient_fs_is_flagged_but_lookalikes_pass() {
        let src = "fn a(p: &str) -> bool { std::fs::read_to_string(p).is_ok() }\n\
                   fn b(p: &str) { let _f = File::open(p); }\n\
                   fn c() { let _o = OpenOptions::new(); }\n\
                   fn d(p: &str) { let _f = std::fs::File::create(p); }\n\
                   fn e(fs: u32) -> u32 { fs + profile::File::line() }";
        let rules: Vec<_> = rules_of(src)
            .into_iter()
            .filter(|r| *r == "L2-ambient-fs")
            .collect();
        assert_eq!(
            rules.len(),
            4,
            "one finding per access site; a local named `fs` and a foreign \
             `File` namespace must not fire: {rules:?}"
        );
    }

    #[test]
    fn test_code_is_exempt_from_l2() {
        let src = "#[cfg(test)]\nmod tests {\n fn t() { let t = Instant::now(); }\n}";
        assert!(rules_of(src).is_empty());
    }

    #[test]
    fn hash_iteration_reaching_output_is_flagged() {
        let src = "use std::collections::HashMap;\n\
                   fn leak() -> Vec<(String, u32)> {\n\
                   let mut m: HashMap<String, u32> = HashMap::new();\n\
                   m.iter().map(|(k, v)| (k.clone(), *v)).collect()\n\
                   }";
        assert_eq!(rules_of(src), ["L2-hash-iter"]);
    }

    #[test]
    fn for_loop_over_hash_map_is_flagged() {
        let src = "fn leak(m: std::collections::HashMap<u32, u32>) {\n\
                   for (k, v) in &m { emit(k, v); }\n\
                   }";
        assert_eq!(rules_of(src), ["L2-hash-iter"]);
    }

    #[test]
    fn struct_field_iteration_is_flagged() {
        let src = "struct S { seen: std::collections::HashSet<String>, n: u32 }\n\
                   impl S { fn leak(&self) -> Vec<String> {\n\
                   self.seen.iter().cloned().collect()\n\
                   } }";
        assert_eq!(rules_of(src), ["L2-hash-iter"]);
    }

    #[test]
    fn sorted_or_order_insensitive_consumption_passes() {
        let src = "use std::collections::{HashMap, HashSet};\n\
                   fn count(m: HashMap<u32, u32>) -> usize { m.values().count() }\n\
                   fn top(m: HashMap<String, u32>) -> Vec<(String, u32)> {\n\
                   let mut v: Vec<(String, u32)> = m.into_iter().collect();\n\
                   v.sort_by(|a, b| a.0.cmp(&b.0));\n\
                   v\n\
                   }\n\
                   fn chain(m: HashMap<String, u32>) -> Vec<String> {\n\
                   m.keys().cloned().collect::<std::collections::BTreeSet<_>>().into_iter().collect()\n\
                   }\n\
                   fn rebuild(m: HashMap<String, u32>) -> HashMap<String, u32> {\n\
                   let out: HashMap<String, u32> = m.into_iter().map(|(k, v)| (k, v + 1)).collect();\n\
                   out\n\
                   }\n\
                   fn lookup(m: &HashMap<String, u32>, k: &str) -> u32 {\n\
                   m.get(k).copied().unwrap_or(0)\n\
                   }";
        let rules: Vec<_> = rules_of(src)
            .into_iter()
            .filter(|r| *r == "L2-hash-iter")
            .collect();
        assert!(
            rules.is_empty(),
            "all consumptions are order-safe: {rules:?}"
        );
    }

    #[test]
    fn non_deterministic_crates_are_exempt() {
        let src = "fn leak(m: std::collections::HashMap<u32, u32>) {\n\
                   for (k, v) in &m { emit(k, v); }\n\
                   }";
        let sf = SourceFile {
            abs_path: PathBuf::from("crates/langmodel/src/x.rs"),
            rel_path: "crates/langmodel/src/x.rs".to_string(),
            crate_name: Some("langmodel".to_string()),
            section: Section::Lib,
        };
        assert!(check_file(&sf, src).is_empty());
    }
}
