//! Criterion micro-bench: periodogram + permutation-threshold cost vs
//! series length (the inner loop of the paper's O(n log n) claim), plus a
//! head-to-head of the cached spectral workspace against the seed
//! implementation's plan-per-transform strategy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use baywatch_netsim::synth::SyntheticBeacon;
use baywatch_timeseries::periodogram::{Periodogram, SpectralLine};
use baywatch_timeseries::permutation::{
    permutation_threshold, permutation_threshold_in, PermutationConfig,
};
use baywatch_timeseries::series::TimeSeries;
use baywatch_timeseries::workspace::SpectralWorkspace;
use rand::prelude::*;
use rand::rngs::StdRng;
use rustfft::{num_complex::Complex, FftPlanner};

fn series_of(bins: usize) -> TimeSeries {
    let period = 60u64;
    let count = bins as u64 / period;
    let ts = SyntheticBeacon {
        period: period as f64,
        gaussian_sigma: 2.0,
        count: count as usize,
        ..Default::default()
    }
    .generate(1);
    TimeSeries::from_timestamps(&ts, 1).unwrap()
}

/// A short series of ~`bins` one-second bins (8 s beacon).
fn short_series_of(bins: usize) -> TimeSeries {
    let count = bins / 8 + 1;
    let ts: Vec<u64> = (0..count as u64).map(|i| i * 8).collect();
    TimeSeries::from_timestamps(&ts, 1).unwrap()
}

/// The seed implementation of `Periodogram::from_samples`: a fresh
/// `FftPlanner` (plan build included) and fresh buffers on every call.
/// Kept here as the comparison baseline for the plan-cache benchmarks.
fn fresh_planner_periodogram(samples: &[f64], dt: f64) -> Vec<SpectralLine> {
    let n = samples.len();
    let mut buf: Vec<Complex<f64>> = samples.iter().map(|&v| Complex::new(v, 0.0)).collect();
    let mut planner = FftPlanner::new();
    planner.plan_fft_forward(n).process(&mut buf);
    let half = n / 2;
    let mut lines = Vec::with_capacity(half);
    for (k, value) in buf.iter().enumerate().take(half + 1).skip(1) {
        let frequency = k as f64 / (n as f64 * dt);
        lines.push(SpectralLine {
            bin: k,
            frequency,
            period: 1.0 / frequency,
            power: value.norm_sqr() / n as f64,
        });
    }
    lines
}

/// The seed implementation of the permutation threshold: one fresh planner
/// and one full spectral-line table per shuffle round.
fn fresh_planner_threshold(series: &TimeSeries, config: &PermutationConfig) -> f64 {
    let mut samples = series.centered();
    let dt = series.scale() as f64;
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut maxima = Vec::with_capacity(config.permutations);
    for _ in 0..config.permutations {
        samples.shuffle(&mut rng);
        let lines = fresh_planner_periodogram(&samples, dt);
        maxima.push(lines.iter().map(|l| l.power).fold(0.0, f64::max));
    }
    maxima.sort_by(f64::total_cmp);
    let rank = ((config.confidence * config.permutations as f64).ceil() as usize)
        .clamp(1, config.permutations);
    maxima[rank - 1]
}

fn bench_periodogram(c: &mut Criterion) {
    let mut group = c.benchmark_group("periodogram");
    for bins in [1 << 12, 1 << 14, 1 << 16] {
        let series = series_of(bins);
        group.throughput(Throughput::Elements(series.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(bins), &series, |b, s| {
            b.iter(|| Periodogram::compute(black_box(s)));
        });
    }
    group.finish();
}

fn bench_permutation(c: &mut Criterion) {
    let mut group = c.benchmark_group("permutation_threshold");
    group.sample_size(10);
    let series = series_of(1 << 14);
    for m in [5usize, 20, 40] {
        let cfg = PermutationConfig {
            permutations: m,
            ..Default::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(m), &cfg, |b, cfg| {
            b.iter(|| permutation_threshold(black_box(&series), cfg).unwrap());
        });
    }
    group.finish();
}

/// Plan cache vs plan-per-call on short series, where planning dominates
/// the transform itself. `cached_workspace` is the shipped hot path;
/// `fresh_planner` replays the seed implementation byte-for-byte.
fn bench_plan_cache_periodogram(c: &mut Criterion) {
    let mut group = c.benchmark_group("periodogram_plan_cache");
    for bins in [256usize, 1024, 4096] {
        let series = short_series_of(bins);
        let samples = series.centered();
        group.throughput(Throughput::Elements(samples.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("cached_workspace", bins),
            &samples,
            |b, s| {
                let ws = SpectralWorkspace::new();
                b.iter(|| Periodogram::from_samples_in(&ws, black_box(s), 1.0));
            },
        );
        group.bench_with_input(BenchmarkId::new("fresh_planner", bins), &samples, |b, s| {
            b.iter(|| fresh_planner_periodogram(black_box(s), 1.0));
        });
    }
    group.finish();
}

/// The per-pair worst case: m=20 permutation rounds. The seed baseline
/// paid 20 plan builds + 20 line-table allocations per pair; the
/// workspace pays one cached plan lookup and zero steady-state
/// allocations.
fn bench_plan_cache_permutation(c: &mut Criterion) {
    let mut group = c.benchmark_group("permutation_plan_cache");
    group.sample_size(20);
    for bins in [1024usize, 4096] {
        let series = short_series_of(bins);
        let cfg = PermutationConfig::default();
        group.bench_with_input(
            BenchmarkId::new("cached_workspace", bins),
            &series,
            |b, s| {
                let ws = SpectralWorkspace::new();
                b.iter(|| permutation_threshold_in(&ws, black_box(s), &cfg).unwrap());
            },
        );
        group.bench_with_input(BenchmarkId::new("fresh_planner", bins), &series, |b, s| {
            b.iter(|| fresh_planner_threshold(black_box(s), &cfg));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_periodogram,
    bench_permutation,
    bench_plan_cache_periodogram,
    bench_plan_cache_permutation
);
criterion_main!(benches);
