//! Discrete time-series construction from raw event timestamps.
//!
//! BAYWATCH's data-extraction phase (§VII-A) turns the request timestamps of
//! a communication pair into an *ActivitySummary* — a first timestamp plus a
//! list of inter-arrival intervals at some time scale. For spectral analysis
//! the events are binned into a count series `x(n)` with a fixed bin width
//! (1 s at the finest granularity); the rescaling phase (§VII-B) re-bins an
//! existing series to a coarser scale without revisiting raw logs.

use crate::TimeSeriesError;

/// A regularly sampled count series derived from event timestamps.
///
/// `values[i]` is the number of events that fell in
/// `[start + i·scale, start + (i+1)·scale)`.
///
/// # Example
///
/// ```
/// use baywatch_timeseries::series::TimeSeries;
///
/// let ts = TimeSeries::from_timestamps(&[100, 160, 220, 280], 1).unwrap();
/// assert_eq!(ts.scale(), 1);
/// assert_eq!(ts.len(), 181); // spans [100, 280] inclusive
/// assert_eq!(ts.values()[0], 1.0);
/// assert_eq!(ts.values()[60], 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeries {
    start: u64,
    scale: u64,
    values: Vec<f64>,
    event_count: usize,
}

impl TimeSeries {
    /// Bins sorted event timestamps (seconds) into a count series with bins
    /// of `scale` seconds.
    ///
    /// # Errors
    ///
    /// * [`TimeSeriesError::TooFewEvents`] if `timestamps` is empty,
    /// * [`TimeSeriesError::UnsortedTimestamps`] if the input is not
    ///   non-decreasing,
    /// * [`TimeSeriesError::InvalidConfig`] if `scale == 0`.
    pub fn from_timestamps(timestamps: &[u64], scale: u64) -> Result<Self, TimeSeriesError> {
        if scale == 0 {
            return Err(TimeSeriesError::InvalidConfig {
                name: "scale",
                constraint: "must be at least 1 second",
            });
        }
        if timestamps.is_empty() {
            return Err(TimeSeriesError::TooFewEvents {
                required: 1,
                actual: 0,
            });
        }
        if let Some(idx) = first_unsorted(timestamps) {
            return Err(TimeSeriesError::UnsortedTimestamps { index: idx });
        }
        let start = timestamps[0];
        // Non-empty was checked above; index instead of unwrap/expect so no
        // panic path survives in this hot loop.
        let end = timestamps[timestamps.len() - 1];
        let n_bins = ((end - start) / scale + 1) as usize;
        let mut values = vec![0.0; n_bins];
        for &t in timestamps {
            let idx = ((t - start) / scale) as usize;
            values[idx] += 1.0;
        }
        Ok(Self {
            start,
            scale,
            values,
            event_count: timestamps.len(),
        })
    }

    /// Builds a series directly from pre-binned values (for synthetic
    /// inputs and tests).
    ///
    /// # Errors
    ///
    /// Returns [`TimeSeriesError::InvalidConfig`] if `scale == 0` or
    /// `values` is empty.
    pub fn from_values(start: u64, scale: u64, values: Vec<f64>) -> Result<Self, TimeSeriesError> {
        if scale == 0 {
            return Err(TimeSeriesError::InvalidConfig {
                name: "scale",
                constraint: "must be at least 1 second",
            });
        }
        if values.is_empty() {
            return Err(TimeSeriesError::InvalidConfig {
                name: "values",
                constraint: "must be non-empty",
            });
        }
        let event_count = values.iter().map(|&v| v.max(0.0) as usize).sum();
        Ok(Self {
            start,
            scale,
            values,
            event_count,
        })
    }

    /// Timestamp of the first bin's left edge.
    pub fn start(&self) -> u64 {
        self.start
    }

    /// Bin width in seconds.
    pub fn scale(&self) -> u64 {
        self.scale
    }

    /// The binned counts.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Number of bins.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the series has no bins (cannot occur for a constructed
    /// series, but required for API completeness).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Number of raw events the series was built from.
    pub fn event_count(&self) -> usize {
        self.event_count
    }

    /// Total observation span in seconds (`len · scale`).
    pub fn span_seconds(&self) -> u64 {
        self.values.len() as u64 * self.scale
    }

    /// Re-bins the series to a coarser scale (BAYWATCH's rescaling phase,
    /// §VII-B). `new_scale` must be a positive multiple of the current
    /// scale; counts of merged bins are summed.
    ///
    /// # Errors
    ///
    /// Returns [`TimeSeriesError::InvalidConfig`] if `new_scale` is zero,
    /// smaller than the current scale, or not a multiple of it.
    ///
    /// # Example
    ///
    /// ```
    /// use baywatch_timeseries::series::TimeSeries;
    ///
    /// let fine = TimeSeries::from_values(0, 1, vec![1.0, 0.0, 1.0, 0.0, 1.0, 0.0]).unwrap();
    /// let coarse = fine.rescale(2).unwrap();
    /// assert_eq!(coarse.scale(), 2);
    /// assert_eq!(coarse.values(), &[1.0, 1.0, 1.0]);
    /// ```
    pub fn rescale(&self, new_scale: u64) -> Result<TimeSeries, TimeSeriesError> {
        if new_scale == 0 || new_scale < self.scale || !new_scale.is_multiple_of(self.scale) {
            return Err(TimeSeriesError::InvalidConfig {
                name: "new_scale",
                constraint: "must be a positive multiple of the current scale",
            });
        }
        let factor = (new_scale / self.scale) as usize;
        if factor == 1 {
            return Ok(self.clone());
        }
        let mut values = Vec::with_capacity(self.values.len().div_ceil(factor));
        for chunk in self.values.chunks(factor) {
            values.push(chunk.iter().sum());
        }
        Ok(TimeSeries {
            start: self.start,
            scale: new_scale,
            values,
            event_count: self.event_count,
        })
    }

    /// The series values with their mean removed — the form fed to the DFT
    /// so the DC component does not swamp the spectrum.
    pub fn centered(&self) -> Vec<f64> {
        let mean = self.values.iter().sum::<f64>() / self.values.len() as f64;
        self.values.iter().map(|v| v - mean).collect()
    }

    /// Clips the series to at most `max_bins` bins (keeping the earliest
    /// bins); used to bound the FFT cost on pathologically long spans.
    pub fn truncated(&self, max_bins: usize) -> TimeSeries {
        if self.values.len() <= max_bins {
            return self.clone();
        }
        TimeSeries {
            start: self.start,
            scale: self.scale,
            values: self.values[..max_bins].to_vec(),
            event_count: self.values[..max_bins].iter().map(|&v| v as usize).sum(),
        }
    }
}

/// Inter-arrival intervals (seconds, as f64) between consecutive sorted
/// timestamps: `I = {t₂−t₁, t₃−t₂, …}` (Fig. 6(a) of the paper).
///
/// # Errors
///
/// * [`TimeSeriesError::TooFewEvents`] for fewer than two timestamps,
/// * [`TimeSeriesError::UnsortedTimestamps`] for unsorted input.
///
/// # Example
///
/// ```
/// use baywatch_timeseries::series::intervals_of;
/// let iv = intervals_of(&[100, 160, 230]).unwrap();
/// assert_eq!(iv, vec![60.0, 70.0]);
/// ```
pub fn intervals_of(timestamps: &[u64]) -> Result<Vec<f64>, TimeSeriesError> {
    if timestamps.len() < 2 {
        return Err(TimeSeriesError::TooFewEvents {
            required: 2,
            actual: timestamps.len(),
        });
    }
    if let Some(idx) = first_unsorted(timestamps) {
        return Err(TimeSeriesError::UnsortedTimestamps { index: idx });
    }
    Ok(timestamps
        .windows(2)
        .map(|w| (w[1] - w[0]) as f64)
        .collect())
}

/// Index of the first element that is smaller than its predecessor, if any.
fn first_unsorted(timestamps: &[u64]) -> Option<usize> {
    timestamps
        .windows(2)
        .position(|w| w[1] < w[0])
        .map(|i| i + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_timestamps_basic() {
        let ts = TimeSeries::from_timestamps(&[10, 11, 13], 1).unwrap();
        assert_eq!(ts.start(), 10);
        assert_eq!(ts.values(), &[1.0, 1.0, 0.0, 1.0]);
        assert_eq!(ts.event_count(), 3);
        assert_eq!(ts.span_seconds(), 4);
    }

    #[test]
    fn duplicate_timestamps_accumulate() {
        let ts = TimeSeries::from_timestamps(&[5, 5, 5, 7], 1).unwrap();
        assert_eq!(ts.values(), &[3.0, 0.0, 1.0]);
    }

    #[test]
    fn single_event_single_bin() {
        let ts = TimeSeries::from_timestamps(&[42], 1).unwrap();
        assert_eq!(ts.len(), 1);
        assert!(!ts.is_empty());
    }

    #[test]
    fn coarse_scale_binning() {
        let ts = TimeSeries::from_timestamps(&[0, 30, 61, 95, 125], 60).unwrap();
        // bins: [0,60) -> 2, [60,120) -> 2, [120,180) -> 1
        assert_eq!(ts.values(), &[2.0, 2.0, 1.0]);
    }

    #[test]
    fn rejects_invalid_inputs() {
        assert!(matches!(
            TimeSeries::from_timestamps(&[], 1),
            Err(TimeSeriesError::TooFewEvents { .. })
        ));
        assert!(matches!(
            TimeSeries::from_timestamps(&[1, 2], 0),
            Err(TimeSeriesError::InvalidConfig { .. })
        ));
        assert!(matches!(
            TimeSeries::from_timestamps(&[5, 3], 1),
            Err(TimeSeriesError::UnsortedTimestamps { index: 1 })
        ));
    }

    #[test]
    fn rescale_sums_counts() {
        let ts = TimeSeries::from_values(0, 1, vec![1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        let r = ts.rescale(2).unwrap();
        assert_eq!(r.values(), &[3.0, 7.0, 5.0]); // last partial chunk kept
        assert_eq!(r.scale(), 2);
        assert_eq!(r.event_count(), ts.event_count());
    }

    #[test]
    fn rescale_identity() {
        let ts = TimeSeries::from_values(0, 5, vec![1.0, 0.0, 2.0]).unwrap();
        assert_eq!(ts.rescale(5).unwrap(), ts);
    }

    #[test]
    fn rescale_rejects_non_multiple() {
        let ts = TimeSeries::from_values(0, 2, vec![1.0; 4]).unwrap();
        assert!(ts.rescale(3).is_err());
        assert!(ts.rescale(1).is_err());
        assert!(ts.rescale(0).is_err());
    }

    #[test]
    fn rescale_preserves_total_count() {
        let timestamps: Vec<u64> = (0..500).map(|i| i * 7).collect();
        let fine = TimeSeries::from_timestamps(&timestamps, 1).unwrap();
        let coarse = fine.rescale(60).unwrap();
        let fine_sum: f64 = fine.values().iter().sum();
        let coarse_sum: f64 = coarse.values().iter().sum();
        assert_eq!(fine_sum, coarse_sum);
    }

    #[test]
    fn centered_has_zero_mean() {
        let ts = TimeSeries::from_values(0, 1, vec![1.0, 0.0, 0.0, 1.0, 0.0, 1.0]).unwrap();
        let c = ts.centered();
        let mean: f64 = c.iter().sum::<f64>() / c.len() as f64;
        assert!(mean.abs() < 1e-12);
    }

    #[test]
    fn truncated_caps_length() {
        let ts = TimeSeries::from_values(0, 1, vec![1.0; 100]).unwrap();
        assert_eq!(ts.truncated(10).len(), 10);
        assert_eq!(ts.truncated(200).len(), 100);
    }

    #[test]
    fn intervals_basic() {
        assert_eq!(intervals_of(&[0, 10, 30]).unwrap(), vec![10.0, 20.0]);
        assert!(intervals_of(&[1]).is_err());
        assert!(intervals_of(&[3, 1]).is_err());
    }

    #[test]
    fn intervals_allow_equal_timestamps() {
        assert_eq!(intervals_of(&[5, 5, 9]).unwrap(), vec![0.0, 4.0]);
    }
}
