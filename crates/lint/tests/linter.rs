//! End-to-end tests over the fixture mini-workspace in
//! `tests/fixtures/ws`, which plants exactly one positive per rule next
//! to its suppressed/negative twin (the L5/L6/L7 families get a
//! suppressed twin each, wired through the fixture `lint.toml`), plus a
//! dogfood test asserting the real repository tree lints clean.

use std::fs;
use std::path::{Path, PathBuf};

use baywatch_lint::{
    apply_fixes, baseline, lint_workspace, report, run, LintError, LintOptions, LintOutcome,
};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/ws")
}

/// A scratch directory unique to one test, recreated on every run.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("baywatch-lint-it-{name}"));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn fixture_opts() -> LintOptions {
    LintOptions {
        root: fixture_root(),
        ..LintOptions::default()
    }
}

/// Recursively copies the fixture workspace (sources, `lint.toml`,
/// `METRICS.md`) so `--fix` tests can rewrite files without touching
/// the committed fixtures.
fn copy_tree(from: &Path, to: &Path) {
    fs::create_dir_all(to).expect("create copy dir");
    for entry in fs::read_dir(from).expect("read fixture dir") {
        let entry = entry.expect("fixture entry");
        let src = entry.path();
        let dst = to.join(entry.file_name());
        if src.is_dir() {
            copy_tree(&src, &dst);
        } else {
            fs::copy(&src, &dst).expect("copy fixture file");
        }
    }
}

/// Every `.rs` file under `dir`, sorted, with its content — the
/// byte-identity witness for fix idempotence.
fn tree_snapshot(dir: &Path) -> Vec<(PathBuf, Vec<u8>)> {
    let mut files = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        for entry in fs::read_dir(&d).expect("read dir") {
            let p = entry.expect("entry").path();
            if p.is_dir() {
                stack.push(p);
            } else if p.extension().is_some_and(|e| e == "rs") {
                files.push((p.clone(), fs::read(&p).expect("read file")));
            }
        }
    }
    files.sort();
    files
}

fn keys(findings: &[baywatch_lint::rules::Finding]) -> Vec<(&str, &str, u32)> {
    findings
        .iter()
        .map(|f| (f.rule, f.path.as_str(), f.line))
        .collect()
}

#[test]
fn fixture_findings_are_exactly_the_planted_ones() {
    let findings = lint_workspace(&fixture_root()).expect("fixture lints");
    assert_eq!(
        keys(&findings),
        vec![
            ("L5-atomic-ordering", "crates/obs/src/bare.rs", 10),
            ("L5-atomic-ordering", "crates/obs/src/lib.rs", 15),
            ("L5-atomic-ordering", "crates/obs/src/lib.rs", 21),
            ("L6-metric-registry", "crates/obs/src/metrics_use.rs", 17),
            ("L6-metric-registry", "crates/obs/src/metrics_use.rs", 22),
            ("L6-metric-registry", "crates/obs/src/metrics_use.rs", 34),
            ("L6-metric-registry", "crates/obs/src/metrics_use.rs", 39),
            ("L6-metric-registry", "crates/obs/src/metrics_use.rs", 45),
            ("L3-budget", "crates/timeseries/src/detector.rs", 6),
            ("L3-budget", "crates/timeseries/src/detector.rs", 26),
            ("L2-ambient-rng", "crates/timeseries/src/lib.rs", 7),
            ("L2-wall-clock", "crates/timeseries/src/lib.rs", 12),
            ("L1-float-ord", "crates/timeseries/src/lib.rs", 17),
            ("L4-panic", "crates/timeseries/src/lib.rs", 17),
            ("L2-hash-iter", "crates/timeseries/src/lib.rs", 26),
            ("L2-ambient-fs", "crates/timeseries/src/lib.rs", 52),
            ("L7-ledger-arith", "crates/util/src/ledger.rs", 12),
            ("L7-ledger-arith", "crates/util/src/ledger.rs", 17),
            ("L7-ledger-arith", "crates/util/src/ledger.rs", 22),
            ("L7-ledger-arith", "crates/util/src/ledger.rs", 28),
            ("L4-panic", "crates/util/src/lib.rs", 11),
        ],
        "planted positives (and only those) must fire; negatives in the \
         same files — checkpointed loops, total_cmp, sorted/counted hash \
         iteration, cmp::Ordering variants, in-policy Relaxed, guarded \
         gated writes, declared metric names, widening casts, arithmetic \
         outside ledger types, cfg(test) code — must not"
    );
}

#[test]
fn without_a_baseline_everything_unsuppressed_is_new() {
    let outcome = run(&fixture_opts()).expect("fixture runs");
    assert_eq!(outcome.new.len(), 18);
    // The three suppressed twins (L5 control flag, L6 dynamic name, L7
    // backoff sum) land in `allowlisted` with their written reasons.
    assert_eq!(outcome.allowlisted.len(), 3);
    assert!(outcome.baselined.is_empty());
    assert!(outcome.unused_allows.is_empty());
    assert!(!outcome.is_clean());
}

#[test]
fn full_baseline_tolerates_every_finding() {
    let dir = scratch("full-baseline");
    let unsuppressed = run(&fixture_opts()).expect("fixture runs").new;
    let path = dir.join("baseline.json");
    fs::write(&path, baseline::to_json(&unsuppressed)).expect("write baseline");

    let outcome = run(&LintOptions {
        baseline_path: Some(path),
        ..fixture_opts()
    })
    .expect("fixture runs");
    assert!(outcome.is_clean());
    assert_eq!(outcome.baselined.len(), 18);
    assert!(outcome.stale_baseline.is_empty());
}

#[test]
fn a_finding_missing_from_the_baseline_fails_the_ratchet() {
    // Drop one entry from the full baseline: the corresponding finding is
    // exactly what an injected fresh violation looks like to the ratchet.
    let dir = scratch("ratchet");
    let mut findings = run(&fixture_opts()).expect("fixture runs").new;
    let pos = findings
        .iter()
        .position(|f| f.rule == "L1-float-ord")
        .expect("fixture plants an L1 finding");
    findings.remove(pos);
    let path = dir.join("baseline.json");
    fs::write(&path, baseline::to_json(&findings)).expect("write baseline");

    let outcome = run(&LintOptions {
        baseline_path: Some(path),
        ..fixture_opts()
    })
    .expect("fixture runs");
    assert!(!outcome.is_clean());
    assert_eq!(outcome.new.len(), 1);
    assert_eq!(outcome.new[0].rule, "L1-float-ord");
    assert_eq!(outcome.baselined.len(), 17);
}

#[test]
fn fixed_findings_surface_as_stale_baseline_entries_without_failing() {
    let dir = scratch("stale");
    let path = dir.join("baseline.json");
    let findings = run(&fixture_opts()).expect("fixture runs").new;
    let mut json = baseline::to_json(&findings);
    // Splice in an entry whose finding no longer exists.
    let extra = r#"[{"rule": "L4-panic", "path": "crates/gone/src/lib.rs", "snippet": "x.unwrap()", "occurrence": 0},"#;
    json = json.replacen('[', extra, 1);
    fs::write(&path, json).expect("write baseline");

    let outcome = run(&LintOptions {
        baseline_path: Some(path),
        ..fixture_opts()
    })
    .expect("fixture runs");
    assert!(outcome.is_clean(), "stale entries must not fail the build");
    assert_eq!(outcome.stale_baseline.len(), 1);
    assert_eq!(outcome.stale_baseline[0].path, "crates/gone/src/lib.rs");
}

#[test]
fn allowlist_suppresses_with_reason_and_reports_unused_entries() {
    let dir = scratch("allowlist");
    let path = dir.join("lint.toml");
    // An explicit config replaces the fixture one wholesale, so it
    // restates the policy tables to keep the L5/L7 findings stable, but
    // carries different [[allow]] entries: one that matches the planted
    // util unwrap and one that matches nothing.
    fs::write(
        &path,
        r#"
[[atomic]]
path = "crates/obs/src/lib.rs"
allow = ["Relaxed"]
reason = "fixture: counters merge after join, so Relaxed suffices here"

[[ledger]]
path = "crates/util/src/ledger.rs"
types = ["Ledger"]
reason = "fixture: Ledger totals feed the planted report rows exactly"

[[allow]]
rule = "L4-panic"
path = "crates/util/src/lib.rs"
reason = "fixture: the unwrap is planted deliberately"

[[allow]]
rule = "L1-float-ord"
path = "crates/util/src/lib.rs"
reason = "fixture: matches nothing in this file"
"#,
    )
    .expect("write allowlist");

    let outcome = run(&LintOptions {
        config_path: Some(path),
        ..fixture_opts()
    })
    .expect("fixture runs");
    assert_eq!(outcome.new.len(), 20, "one finding should be suppressed");
    assert_eq!(outcome.allowlisted.len(), 1);
    let (f, reason) = &outcome.allowlisted[0];
    assert_eq!(f.path, "crates/util/src/lib.rs");
    assert!(reason.contains("planted deliberately"));
    assert_eq!(outcome.unused_allows.len(), 1);
    assert_eq!(outcome.unused_allows[0].rule, "L1-float-ord");
}

#[test]
fn allowlist_without_a_real_reason_is_a_hard_error() {
    let dir = scratch("bad-reason");
    let path = dir.join("lint.toml");
    fs::write(
        &path,
        "[[allow]]\nrule = \"L4-panic\"\npath = \"x.rs\"\nreason = \"short\"\n",
    )
    .expect("write allowlist");

    let err = run(&LintOptions {
        config_path: Some(path),
        ..fixture_opts()
    })
    .expect_err("short reason must be rejected");
    assert!(matches!(err, LintError::Config(_)), "got {err}");
}

#[test]
fn allowlist_with_unknown_rule_is_a_hard_error() {
    let dir = scratch("bad-rule");
    let path = dir.join("lint.toml");
    fs::write(
        &path,
        "[[allow]]\nrule = \"L9-imaginary\"\npath = \"x.rs\"\nreason = \"long enough reason\"\n",
    )
    .expect("write allowlist");

    let err = run(&LintOptions {
        config_path: Some(path),
        ..fixture_opts()
    })
    .expect_err("unknown rule must be rejected");
    assert!(matches!(err, LintError::Config(_)), "got {err}");
}

#[test]
fn missing_explicit_config_path_is_an_error_but_missing_default_is_not() {
    let err = run(&LintOptions {
        config_path: Some(fixture_root().join("no-such-lint.toml")),
        ..fixture_opts()
    })
    .expect_err("explicitly named missing config must error");
    assert!(matches!(err, LintError::Io(..)), "got {err}");

    // A root without lint.toml / METRICS.md / a baseline: all three
    // defaults being absent is tolerated (config empty, L6 off, baseline
    // empty).
    let bare = scratch("bare-root");
    let outcome = run(&LintOptions {
        root: bare,
        ..LintOptions::default()
    })
    .expect("missing default config/manifest/baseline is fine");
    assert!(outcome.is_clean());
}

#[test]
fn malformed_baseline_is_a_hard_error() {
    let dir = scratch("bad-baseline");
    let path = dir.join("baseline.json");
    fs::write(&path, "{\"not\": \"an array\"}").expect("write baseline");

    let err = run(&LintOptions {
        baseline_path: Some(path),
        ..fixture_opts()
    })
    .expect_err("non-array baseline must be rejected");
    assert!(matches!(err, LintError::Baseline(_)), "got {err}");
}

#[test]
fn malformed_manifest_is_a_hard_error() {
    let dir = scratch("bad-manifest");
    let path = dir.join("METRICS.md");
    fs::write(
        &path,
        "| name | kind | gating | module |\n|---|---|---|---|\n| `x` | blimp | always | m |\n",
    )
    .expect("write manifest");

    let err = run(&LintOptions {
        manifest_path: Some(path),
        ..fixture_opts()
    })
    .expect_err("unknown metric kind must be rejected");
    assert!(matches!(err, LintError::Config(_)), "got {err}");
}

/// `--fix` end to end: mechanical findings (the planted L1 comparator
/// and the qualified in-policy-fixable L5 site) are repaired in place,
/// the repaired tree re-lints clean of them, the allowlisted twin is
/// left untouched, and a second application changes nothing.
#[test]
fn fix_repairs_mechanical_findings_and_is_idempotent() {
    let dir = scratch("fix-round-trip");
    copy_tree(&fixture_root(), &dir);
    let opts = LintOptions {
        root: dir.clone(),
        ..LintOptions::default()
    };

    let before = run(&opts).expect("copy lints");
    assert_eq!(before.new.len(), 18);
    let (fixed, after) = apply_fixes(&opts, &before).expect("fixes apply");
    assert_eq!(fixed, 2, "the planted L1 and the qualified L5 site");

    // The L1 fix rewrites `partial_cmp(..).unwrap()` to `total_cmp(..)`,
    // which also removes that line's L4 unwrap finding; the L5 fix
    // rewrites SeqCst to Relaxed. 18 - 3 remain.
    assert_eq!(after.new.len(), 15);
    assert!(after.new.iter().all(|f| f.rule != "L1-float-ord"));
    assert!(!keys(&after.new).contains(&("L5-atomic-ordering", "crates/obs/src/lib.rs", 15)));
    assert!(!keys(&after.new).contains(&("L4-panic", "crates/timeseries/src/lib.rs", 17)));

    // The allowlisted SeqCst twin must survive: suppressed findings are
    // deliberate exceptions, not fix targets.
    let obs = fs::read_to_string(dir.join("crates/obs/src/lib.rs")).expect("read fixed file");
    assert!(obs.contains("self.control.store(true, Ordering::SeqCst);"));
    assert!(obs.contains("self.hits.fetch_add(1, Ordering::Relaxed)"));

    // Idempotence: a second application fixes nothing and leaves every
    // byte in place.
    let snapshot = tree_snapshot(&dir);
    let (fixed_again, _) = apply_fixes(&opts, &after).expect("second pass applies");
    assert_eq!(fixed_again, 0);
    assert_eq!(tree_snapshot(&dir), snapshot, "fix must be idempotent");
}

/// The `--json` document is a consumed interface: field names, nesting,
/// and escaping are pinned by this snapshot. Changing the schema means
/// changing this test — deliberately.
#[test]
fn json_report_schema_is_stable() {
    use baywatch_lint::baseline::BaselineEntry;
    use baywatch_lint::rules::Finding;

    let outcome = LintOutcome {
        new: vec![Finding {
            rule: "L4-panic",
            path: "crates/a/src/lib.rs".to_string(),
            line: 3,
            snippet: "x.unwrap() // \"quoted\"".to_string(),
            message: "message with \\ backslash".to_string(),
            fix: None,
        }],
        baselined: vec![Finding {
            rule: "L1-float-ord",
            path: "crates/b/src/lib.rs".to_string(),
            line: 9,
            snippet: "a.partial_cmp(&b)".to_string(),
            message: "old friend".to_string(),
            fix: None,
        }],
        allowlisted: vec![(
            Finding {
                rule: "L5-atomic-ordering",
                path: "crates/c/src/lib.rs".to_string(),
                line: 1,
                snippet: "load(SeqCst)".to_string(),
                message: "out of policy".to_string(),
                fix: None,
            },
            "control cell stays sequentially consistent".to_string(),
        )],
        stale_baseline: vec![BaselineEntry {
            rule: "L2-wall-clock".to_string(),
            path: "crates/d/src/lib.rs".to_string(),
            snippet: "Instant::now()".to_string(),
            occurrence: 1,
        }],
        unused_allows: Vec::new(),
        cache_hits: 0,
        cache_misses: 0,
    };

    let expected = concat!(
        "{\n",
        "  \"findings\": [\n",
        "    {\"rule\": \"L4-panic\", \"path\": \"crates/a/src/lib.rs\", \"line\": 3, ",
        "\"snippet\": \"x.unwrap() // \\\"quoted\\\"\", ",
        "\"message\": \"message with \\\\ backslash\", \"status\": \"NEW\"},\n",
        "    {\"rule\": \"L1-float-ord\", \"path\": \"crates/b/src/lib.rs\", \"line\": 9, ",
        "\"snippet\": \"a.partial_cmp(&b)\", ",
        "\"message\": \"old friend\", \"status\": \"baselined\"},\n",
        "    {\"rule\": \"L5-atomic-ordering\", \"path\": \"crates/c/src/lib.rs\", \"line\": 1, ",
        "\"snippet\": \"load(SeqCst)\", ",
        "\"message\": \"out of policy\", \"status\": \"allowed\", ",
        "\"allowed_because\": \"control cell stays sequentially consistent\"}\n",
        "  ],\n",
        "  \"stale_baseline\": [\n",
        "    {\"rule\": \"L2-wall-clock\", \"path\": \"crates/d/src/lib.rs\", ",
        "\"snippet\": \"Instant::now()\", \"occurrence\": 1}\n",
        "  ]\n",
        "}\n",
    );
    assert_eq!(report::render_json(&outcome), expected);
}

/// The incremental cache: a cold run analyzes every file, a warm rerun
/// answers every file from the cache, and both agree on the findings.
#[test]
fn cache_warm_run_hits_every_file_and_agrees_with_cold() {
    let dir = scratch("cache");
    let opts = LintOptions {
        cache_path: Some(dir.join("lint-cache.tsv")),
        ..fixture_opts()
    };

    let cold = run(&opts).expect("cold run");
    assert_eq!(cold.cache_hits, 0);
    assert!(cold.cache_misses > 0, "cold run must analyze files");

    let warm = run(&opts).expect("warm run");
    assert_eq!(warm.cache_misses, 0, "nothing changed, nothing re-analyzed");
    assert_eq!(warm.cache_hits, cold.cache_misses);
    assert_eq!(keys(&warm.new), keys(&cold.new));
    assert_eq!(warm.allowlisted.len(), cold.allowlisted.len());

    // A config change invalidates the digest: everything re-analyzes.
    let config = dir.join("lint.toml");
    let mut text =
        fs::read_to_string(fixture_root().join("lint.toml")).expect("fixture config reads");
    text.push_str("\n# digest-changing comment\n");
    fs::write(&config, text).expect("write tweaked config");
    let invalidated = run(&LintOptions {
        config_path: Some(config),
        ..opts.clone()
    })
    .expect("invalidated run");
    assert_eq!(invalidated.cache_hits, 0, "config changes must cold-start");
    assert_eq!(invalidated.cache_misses, cold.cache_misses);
}

/// Dogfood: the repository this linter lives in must itself be clean —
/// every real finding either fixed or allowlisted with a written reason,
/// against an *empty* committed baseline — with the L5/L6/L7 families
/// fully armed (the repo commits both `lint.toml` policies and
/// `METRICS.md`).
#[test]
fn repo_tree_is_lint_clean() {
    let repo_root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("repo root resolves");
    let outcome = run(&LintOptions {
        root: repo_root,
        ..LintOptions::default()
    })
    .expect("repo lints");
    assert!(
        outcome.is_clean(),
        "new findings: {:?}",
        outcome
            .new
            .iter()
            .map(|f| format!("{} {}:{}", f.rule, f.path, f.line))
            .collect::<Vec<_>>()
    );
    assert!(
        outcome.baselined.is_empty(),
        "the committed baseline must stay empty — fix or allowlist instead"
    );
    assert!(
        outcome.unused_allows.is_empty(),
        "every committed allowlist entry must still match something: {:?}",
        outcome
            .unused_allows
            .iter()
            .map(|e| format!("{} {}", e.rule, e.path))
            .collect::<Vec<_>>()
    );
}
