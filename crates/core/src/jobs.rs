//! The pipeline phases expressed as MapReduce jobs (§VII of the paper).
//!
//! Each phase is a modularized job so long windows can be re-analyzed
//! without reprocessing raw logs:
//!
//! * **Data extraction** (§VII-A): `⟨k, l⟩ → ⟨H(s,d), (s,d,ts)⟩` then
//!   reduce to per-pair [`ActivitySummary`]s,
//! * **Rescaling & merging** (§VII-B): coarsen summaries and merge
//!   per-pair histories,
//! * **Beaconing detection** (§VII-D): run the periodicity detector per
//!   pair in the reduce step.
//!
//! (Destination popularity, §VII-C, lives in [`crate::popularity`]; ranking,
//! §VII-E, in [`crate::rank`].)
//!
//! Every job runs on the fault-tolerant engine
//! ([`MapReduce::run_fault_tolerant`]): a panicking mapper or reducer is
//! retried, bisected, and quarantined instead of tearing down the window,
//! and each `*_ft` variant returns a [`FaultReport`] alongside its results
//! so the pipeline can record what was dropped. The plain-named wrappers
//! keep the original infallible signatures for callers that don't need the
//! report. An optional [`FaultPlan`] threads the deterministic
//! fault-injection checkpoints through each phase for the robustness tests.

use baywatch_mapreduce::{
    CheckpointedRun, DlqEntry, DlqReason, FaultPlan, FaultPolicy, FaultReport, MapReduce,
    ShardedOutcome,
};
use baywatch_timeseries::detector::{DetectionReport, PeriodicityDetector};
use baywatch_timeseries::workspace::with_thread_workspace;
use baywatch_timeseries::{BudgetSpec, TimeSeriesError};

use crate::activity::ActivitySummary;
use crate::pair::CommunicationPair;
use crate::record::LogRecord;

/// Data-extraction job: raw records → one [`ActivitySummary`] per
/// communication pair at time scale `scale`.
///
/// MAP emits `(s, d)`-keyed records; REDUCE sorts each group's timestamps
/// and produces the summary. Output order is deterministic (partition, then
/// pair).
pub fn extract_summaries(
    engine: &MapReduce,
    records: Vec<LogRecord>,
    scale: u64,
) -> Vec<ActivitySummary> {
    extract_summaries_ft(engine, records, scale, None).0
}

/// Fault-tolerant data extraction: like [`extract_summaries`], but survives
/// panicking tasks (poison records are quarantined, poison pairs dropped)
/// and reports what was lost. `plan` arms deterministic fault-injection
/// checkpoints; pass `None` outside the harness.
pub fn extract_summaries_ft(
    engine: &MapReduce,
    records: Vec<LogRecord>,
    scale: u64,
    plan: Option<&FaultPlan>,
) -> (Vec<ActivitySummary>, FaultReport) {
    extract_summaries_ft_with_policy(engine, records, scale, plan, &FaultPolicy::default())
}

/// Like [`extract_summaries_ft`] with an explicit fault policy, so the
/// pipeline can arm per-task straggler deadlines
/// ([`FaultPolicy::task_deadline`]) on the extraction phase.
pub fn extract_summaries_ft_with_policy(
    engine: &MapReduce,
    records: Vec<LogRecord>,
    scale: u64,
    plan: Option<&FaultPlan>,
    policy: &FaultPolicy,
) -> (Vec<ActivitySummary>, FaultReport) {
    engine.run_fault_tolerant_with_policy(
        records,
        |record, emit| {
            if let Some(plan) = plan {
                plan.map_checkpoint(record);
            }
            let key = CommunicationPair::new(&record.source, &record.domain);
            emit(key, record.clone());
        },
        move |pair, group| {
            if let Some(plan) = plan {
                plan.reduce_checkpoint(pair);
            }
            // Groups are non-empty by construction and `scale` is validated
            // upstream, but a degenerate group is skipped, not fatal.
            match ActivitySummary::from_records(group, scale) {
                Ok(summary) => vec![summary],
                Err(_) => Vec::new(),
            }
        },
        policy,
    )
}

/// Rescaling & merging job: coarsens every summary to `new_scale` and
/// merges summaries of the same pair (e.g. daily summaries into a weekly
/// one).
///
/// Summaries whose scale does not divide `new_scale` are passed through a
/// timestamp-level rebuild instead of failing, so mixed-scale input is
/// tolerated.
pub fn rescale_and_merge(
    engine: &MapReduce,
    summaries: Vec<ActivitySummary>,
    new_scale: u64,
) -> Vec<ActivitySummary> {
    rescale_and_merge_ft(engine, summaries, new_scale, None).0
}

/// Fault-tolerant rescaling & merging: like [`rescale_and_merge`], but a
/// summary that cannot be rescaled *or* rebuilt is dropped (not fatal), a
/// summary that cannot be merged is skipped from its group, and panicking
/// tasks are quarantined per the engine's policy.
pub fn rescale_and_merge_ft(
    engine: &MapReduce,
    summaries: Vec<ActivitySummary>,
    new_scale: u64,
    plan: Option<&FaultPlan>,
) -> (Vec<ActivitySummary>, FaultReport) {
    engine.run_fault_tolerant(
        summaries,
        move |summary: &ActivitySummary, emit| {
            if let Some(plan) = plan {
                plan.map_checkpoint(&summary.pair);
            }
            let rescaled = match summary.rescale(new_scale) {
                Ok(s) => Some(s),
                Err(_) => {
                    // Mixed scales: rebuild from quantized timestamps.
                    let records: Vec<LogRecord> = summary
                        .timestamps()
                        .into_iter()
                        .map(|t| {
                            LogRecord::new(
                                t,
                                summary.pair.source.clone(),
                                summary.pair.destination.clone(),
                                "",
                            )
                        })
                        .collect();
                    ActivitySummary::from_records(&records, new_scale)
                        .ok()
                        .map(|mut rebuilt| {
                            rebuilt.url_tokens = summary.url_tokens.clone();
                            rebuilt
                        })
                }
            };
            if let Some(rescaled) = rescaled {
                emit(rescaled.pair.clone(), rescaled);
            }
        },
        |pair, group: &[ActivitySummary]| {
            if let Some(plan) = plan {
                plan.reduce_checkpoint(pair);
            }
            let mut acc: Option<ActivitySummary> = None;
            for s in group {
                acc = match acc {
                    None => Some(s.clone()),
                    // Same pair and scale by construction; a summary that
                    // still refuses to merge is skipped, not fatal.
                    Some(a) => Some(a.merge(s).unwrap_or(a)),
                };
            }
            acc.into_iter().collect()
        },
    )
}

/// Beaconing-detection job: runs the periodicity detector on each summary
/// in parallel; yields `(summary, report)` for pairs with at least one
/// verified candidate period (the paper's `⟨AS, CP⟩` output).
///
/// Each reduce invocation runs through its worker thread's
/// [`SpectralWorkspace`](baywatch_timeseries::workspace::SpectralWorkspace),
/// so FFT plans are built once per thread per window and reused across
/// every pair and every permutation round that thread processes.
pub fn detect_beaconing(
    engine: &MapReduce,
    summaries: Vec<ActivitySummary>,
    detector: &PeriodicityDetector,
) -> Vec<(ActivitySummary, DetectionReport)> {
    detect_beaconing_ft(engine, summaries, detector, None).0
}

/// Fault-tolerant beaconing detection: like [`detect_beaconing`], but a
/// pair whose detection panics is quarantined (costing that pair, not the
/// window) and counted in the returned [`FaultReport`].
///
/// Runs each pair under the detector's own configured execution budget
/// ([`DetectorConfig::budget`](baywatch_timeseries::detector::DetectorConfig));
/// pairs that exhaust it are silently dropped here — use
/// [`detect_beaconing_budgeted_ft`] to observe them.
pub fn detect_beaconing_ft(
    engine: &MapReduce,
    summaries: Vec<ActivitySummary>,
    detector: &PeriodicityDetector,
    plan: Option<&FaultPlan>,
) -> (Vec<(ActivitySummary, DetectionReport)>, FaultReport) {
    let budget = detector.config().budget;
    let (rows, report) = detect_beaconing_budgeted_ft(
        engine,
        summaries,
        detector,
        budget,
        plan,
        &FaultPolicy::default(),
    );
    let hits = rows
        .into_iter()
        .filter_map(|row| match row {
            DetectRow::Hit(hit) => Some(*hit),
            DetectRow::TimedOut(_) | DetectRow::Quiet(_) => None,
        })
        .collect();
    (hits, report)
}

/// One output row of [`detect_beaconing_budgeted_ft`].
#[derive(Debug, Clone, PartialEq)]
pub enum DetectRow {
    /// A pair with at least one verified candidate period.
    Hit(Box<(ActivitySummary, DetectionReport)>),
    /// A pair whose detection exhausted its per-pair execution budget
    /// before completing; no verdict was reached.
    TimedOut(CommunicationPair),
    /// A pair whose detection completed with no verified period. Emitted so
    /// checkpointed runs can tell "analyzed, found quiet" apart from "never
    /// finished" — a pair with *no* row at all was quarantined by the
    /// engine and belongs in the dead-letter queue.
    Quiet(CommunicationPair),
}

impl DetectRow {
    /// The communication pair this row is about.
    pub fn pair(&self) -> &CommunicationPair {
        match self {
            DetectRow::Hit(hit) => &hit.0.pair,
            DetectRow::TimedOut(pair) | DetectRow::Quiet(pair) => pair,
        }
    }
}

/// Budget-aware fault-tolerant beaconing detection: each pair runs under a
/// fresh [`ExecBudget`](baywatch_timeseries::ExecBudget) armed from
/// `pair_budget`, so one pathological series is cut off at a kernel
/// checkpoint and surfaced as [`DetectRow::TimedOut`] instead of stalling
/// the window. `policy` additionally arms MapReduce-level straggler
/// deadlines ([`FaultPolicy::task_deadline`]).
///
/// With an unlimited `pair_budget` and default `policy` this is
/// byte-identical to [`detect_beaconing_ft`]: the budget checkpoints only
/// ever early-return and never perturb RNG streams or numerical state.
pub fn detect_beaconing_budgeted_ft(
    engine: &MapReduce,
    summaries: Vec<ActivitySummary>,
    detector: &PeriodicityDetector,
    pair_budget: BudgetSpec,
    plan: Option<&FaultPlan>,
    policy: &FaultPolicy,
) -> (Vec<DetectRow>, FaultReport) {
    engine.run_fault_tolerant_with_policy(
        summaries,
        |summary: &ActivitySummary, emit| {
            if let Some(plan) = plan {
                plan.map_checkpoint(&summary.pair);
            }
            emit(summary.pair.clone(), summary.clone());
        },
        move |pair, group: &[ActivitySummary]| {
            detect_group(detector, &pair_budget, plan, pair, group)
        },
        policy,
    )
}

/// Detection reduce step shared by the budgeted and checkpointed jobs: run
/// every summary of one pair's group under a fresh budget.
fn detect_group(
    detector: &PeriodicityDetector,
    pair_budget: &BudgetSpec,
    plan: Option<&FaultPlan>,
    pair: &CommunicationPair,
    group: &[ActivitySummary],
) -> Vec<DetectRow> {
    if let Some(plan) = plan {
        plan.reduce_checkpoint(pair);
    }
    with_thread_workspace(|ws| {
        let mut out = Vec::new();
        // A group holds every summary keyed to one pair (several
        // when upstream produced per-window summaries of the same
        // pair); emit at most one TimedOut row for the whole group
        // so the funnel counts pairs, not summaries.
        let mut timed_out = false;
        for summary in group {
            let timestamps = summary.timestamps();
            match detector.detect_budgeted_in(ws, &timestamps, &pair_budget.start()) {
                Ok(report) if report.is_periodic() => {
                    out.push(DetectRow::Hit(Box::new((summary.clone(), report))));
                }
                Ok(_) => {}
                Err(TimeSeriesError::BudgetExhausted) => {
                    if !timed_out {
                        out.push(DetectRow::TimedOut(summary.pair.clone()));
                        timed_out = true;
                    }
                }
                // Validation errors (too few events, zero span, …)
                // simply mean "not a beacon candidate".
                Err(_) => {}
            }
        }
        if out.is_empty() {
            out.push(DetectRow::Quiet(pair.clone()));
        }
        out
    })
}

/// Checkpointed beaconing detection: the budgeted job run shard-by-shard
/// through [`MapReduce::run_sharded_checkpointed`], persisting each
/// completed shard (rows, fault report, metric deltas) to `run`'s
/// [`CheckpointStore`](baywatch_mapreduce::CheckpointStore) and classifying
/// pairs that never completed into dead-letter-queue entries with failure
/// provenance.
///
/// DLQ classification per input pair of a shard:
/// * a [`DetectRow::TimedOut`] row → [`DlqReason::BudgetExhausted`] (the
///   per-pair kernel budget was exhausted; the pair is replayable under a
///   larger budget),
/// * no row at all and the pair's key appears in the shard's
///   `timeout_samples` → [`DlqReason::TimedOut`] (a straggler task hit the
///   MapReduce deadline),
/// * no row at all otherwise → [`DlqReason::Poison`] (the engine
///   quarantined it after `policy.max_task_retries` retries).
pub fn detect_beaconing_checkpointed_ft(
    engine: &MapReduce,
    shards: Vec<Vec<ActivitySummary>>,
    detector: &PeriodicityDetector,
    pair_budget: BudgetSpec,
    plan: Option<&FaultPlan>,
    policy: &FaultPolicy,
    run: &CheckpointedRun<'_>,
) -> std::io::Result<ShardedOutcome<DetectRow>> {
    let sample_limit = policy.sample_limit;
    let max_retries = policy.max_task_retries;
    engine.run_sharded_checkpointed(
        shards,
        run,
        policy,
        |summary: &ActivitySummary, emit| {
            if let Some(plan) = plan {
                plan.map_checkpoint(&summary.pair);
            }
            emit(summary.pair.clone(), summary.clone());
        },
        move |pair, group: &[ActivitySummary]| {
            detect_group(detector, &pair_budget, plan, pair, group)
        },
        |rows: &[DetectRow]| crate::checkpoint::encode_rows(rows),
        |payload: &str| crate::checkpoint::decode_rows(payload),
        move |shard_id, inputs: &[ActivitySummary], outputs: &[DetectRow], faults: &FaultReport| {
            dlq_entries_for_shard(shard_id, inputs, outputs, faults, sample_limit, max_retries)
        },
    )
}

/// Classifies a completed shard's losses into DLQ entries (see
/// [`detect_beaconing_checkpointed_ft`] for the provenance rules). Entries
/// carry the pair's summaries as a replayable payload.
fn dlq_entries_for_shard(
    shard_id: usize,
    inputs: &[ActivitySummary],
    outputs: &[DetectRow],
    faults: &FaultReport,
    sample_limit: usize,
    max_retries: usize,
) -> Vec<DlqEntry> {
    use std::collections::{BTreeMap, BTreeSet};
    let completed: BTreeSet<&CommunicationPair> = outputs.iter().map(DetectRow::pair).collect();
    let budget_exhausted: BTreeSet<&CommunicationPair> = outputs
        .iter()
        .filter_map(|row| match row {
            DetectRow::TimedOut(pair) => Some(pair),
            _ => None,
        })
        .collect();
    let mut by_pair: BTreeMap<&CommunicationPair, Vec<ActivitySummary>> = BTreeMap::new();
    for summary in inputs {
        by_pair
            .entry(&summary.pair)
            .or_default()
            .push(summary.clone());
    }
    let mut entries = Vec::new();
    for (pair, summaries) in by_pair {
        let key = format!("{pair:?}");
        let (reason, retries, samples) = if budget_exhausted.contains(pair) {
            // The pair *completed* the shard with a verdictless row; it is
            // queued for replay under a larger budget, not lost.
            (DlqReason::BudgetExhausted, 0, Vec::new())
        } else if !completed.contains(pair) {
            if faults.timeout_samples.iter().any(|s| s == &key) {
                (DlqReason::TimedOut, 0, vec![key.clone()])
            } else {
                (
                    DlqReason::Poison,
                    max_retries,
                    faults
                        .panic_samples
                        .iter()
                        .take(sample_limit)
                        .cloned()
                        .collect(),
                )
            }
        } else {
            continue;
        };
        entries.push(DlqEntry {
            key,
            shard: shard_id,
            reason,
            retries,
            samples,
            payload: crate::checkpoint::encode_summaries(&summaries),
        });
    }
    entries
}

#[cfg(test)]
mod tests {
    use super::*;
    use baywatch_mapreduce::JobConfig;
    use baywatch_timeseries::detector::DetectorConfig;

    fn engine() -> MapReduce {
        MapReduce::new(JobConfig {
            partitions: 8,
            threads: 4,
        })
    }

    fn beacon_records(source: &str, domain: &str, period: u64, n: u64) -> Vec<LogRecord> {
        (0..n)
            .map(|i| LogRecord::new(1_000 + i * period, source, domain, "tok"))
            .collect()
    }

    #[test]
    fn extraction_groups_by_pair() {
        let mut records = beacon_records("a", "x.com", 60, 10);
        records.extend(beacon_records("a", "y.com", 30, 5));
        records.extend(beacon_records("b", "x.com", 45, 7));
        let summaries = extract_summaries(&engine(), records, 1);
        assert_eq!(summaries.len(), 3);
        let ax = summaries
            .iter()
            .find(|s| s.pair == CommunicationPair::new("a", "x.com"))
            .unwrap();
        assert_eq!(ax.request_count(), 10);
        assert!(ax.intervals.iter().all(|&i| i == 60));
    }

    #[test]
    fn extraction_deterministic() {
        let records = beacon_records("a", "x.com", 60, 20);
        let s1 = extract_summaries(&engine(), records.clone(), 1);
        let s2 = extract_summaries(&engine(), records, 1);
        assert_eq!(s1, s2);
    }

    #[test]
    fn rescale_and_merge_combines_days() {
        // Same pair split across two "days".
        let day1 = extract_summaries(&engine(), beacon_records("a", "x.com", 600, 10), 1);
        let day2: Vec<ActivitySummary> = extract_summaries(
            &engine(),
            (0..10)
                .map(|i| LogRecord::new(100_000 + i * 600, "a", "x.com", "tok"))
                .collect(),
            1,
        );
        let mut all = day1;
        all.extend(day2);
        assert_eq!(all.len(), 2);
        let merged = rescale_and_merge(&engine(), all, 60);
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].scale, 60);
        assert_eq!(merged[0].request_count(), 20);
    }

    #[test]
    fn rescale_handles_mixed_scales() {
        let fine = extract_summaries(&engine(), beacon_records("a", "x.com", 600, 8), 1);
        let coarse = extract_summaries(&engine(), beacon_records("b", "y.com", 600, 8), 7);
        let mut all = fine;
        all.extend(coarse);
        // 60 is not a multiple of 7: the 7-scale summary is rebuilt.
        let out = rescale_and_merge(&engine(), all, 60);
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|s| s.scale == 60));
    }

    #[test]
    fn detection_job_finds_beacon_pairs_only() {
        let mut records = beacon_records("infected", "evil.com", 60, 100);
        // Irregular traffic.
        for i in 0..50u64 {
            records.push(LogRecord::new(
                1_000 + (i * i * 37) % 50_000,
                "clean",
                "news.com",
                "index",
            ));
        }
        let summaries = extract_summaries(&engine(), records, 1);
        let detector = PeriodicityDetector::new(DetectorConfig::default());
        let hits = detect_beaconing(&engine(), summaries, &detector);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].0.pair.destination, "evil.com");
        assert!((hits[0].1.best().unwrap().period - 60.0).abs() < 3.0);
    }

    #[test]
    fn detection_job_skips_tiny_pairs() {
        let records = beacon_records("a", "x.com", 60, 3); // below min_events
        let summaries = extract_summaries(&engine(), records, 1);
        let detector = PeriodicityDetector::new(DetectorConfig::default());
        let hits = detect_beaconing(&engine(), summaries, &detector);
        assert!(hits.is_empty());
    }

    #[test]
    fn extraction_quarantines_poison_pair_and_keeps_the_rest() {
        let mut records = beacon_records("a", "x.com", 60, 10);
        records.extend(beacon_records("bad", "evil.com", 30, 5));
        let poison = format!("{:?}", CommunicationPair::new("bad", "evil.com"));
        let plan = FaultPlan::new().poison_key(&poison);
        let (summaries, report) = extract_summaries_ft(&engine(), records, 1, Some(&plan));
        assert_eq!(summaries.len(), 1);
        assert_eq!(summaries[0].pair, CommunicationPair::new("a", "x.com"));
        assert_eq!(report.quarantined_keys, 1);
        assert_eq!(report.lost_values, 5);
        assert!(plan.injected_faults() > 0);
    }

    #[test]
    fn extraction_survives_transient_map_fault_without_loss() {
        let records = beacon_records("a", "x.com", 60, 10);
        let plan = FaultPlan::new().panic_on_map_call(3);
        let clean = extract_summaries(&engine(), records.clone(), 1);
        let (summaries, report) = extract_summaries_ft(&engine(), records, 1, Some(&plan));
        assert_eq!(summaries, clean);
        assert!(report.map_retries >= 1);
        assert_eq!(report.quarantined_inputs, 0);
    }

    #[test]
    fn detection_quarantines_poison_pair_and_keeps_the_rest() {
        let mut records = beacon_records("infected", "evil.com", 60, 100);
        records.extend(beacon_records("other", "beacon.net", 45, 100));
        let summaries = extract_summaries(&engine(), records, 1);
        let detector = PeriodicityDetector::new(DetectorConfig::default());
        let poison = format!("{:?}", CommunicationPair::new("other", "beacon.net"));
        let plan = FaultPlan::new().poison_key(&poison);
        let (hits, report) = detect_beaconing_ft(&engine(), summaries, &detector, Some(&plan));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].0.pair.destination, "evil.com");
        assert_eq!(report.quarantined_keys, 1);
    }

    #[test]
    fn budgeted_detection_surfaces_timed_out_pairs() {
        let mut records = beacon_records("infected", "evil.com", 60, 100);
        // A sparse strided pair: ~700k bins at time scale 1, so the ops
        // ceiling below trips at the first kernel checkpoint.
        records.extend(
            (0..300u64).map(|i| LogRecord::new(50_000 + i * 2_333, "slowpoke", "weird.biz", "x")),
        );
        let summaries = extract_summaries(&engine(), records, 1);
        let detector = PeriodicityDetector::new(DetectorConfig::default());
        let budget = BudgetSpec {
            max_ops: Some(500_000),
            ..Default::default()
        };
        let (rows, report) = detect_beaconing_budgeted_ft(
            &engine(),
            summaries,
            &detector,
            budget,
            None,
            &FaultPolicy::default(),
        );
        assert!(report.is_clean(), "a timeout is not a fault: {report:?}");
        let mut hits = 0;
        let mut timed_out = Vec::new();
        for row in rows {
            match row {
                DetectRow::Hit(hit) => {
                    hits += 1;
                    assert_eq!(hit.0.pair.destination, "evil.com");
                }
                DetectRow::TimedOut(pair) => timed_out.push(pair),
                DetectRow::Quiet(_) => {}
            }
        }
        assert_eq!(hits, 1);
        assert_eq!(
            timed_out,
            vec![CommunicationPair::new("slowpoke", "weird.biz")]
        );
    }

    #[test]
    fn pair_with_multiple_summaries_times_out_once() {
        // Two per-window summaries of the SAME sparse pair land in one
        // reduce group; both exhaust the budget, but the funnel must count
        // the pair once, not once per summary.
        let window = |offset: u64| -> Vec<LogRecord> {
            (0..300u64)
                .map(|i| LogRecord::new(offset + i * 2_333, "slowpoke", "weird.biz", "x"))
                .collect()
        };
        let summaries = vec![
            ActivitySummary::from_records(&window(50_000), 1).unwrap(),
            ActivitySummary::from_records(&window(5_000_000), 1).unwrap(),
        ];
        let detector = PeriodicityDetector::new(DetectorConfig::default());
        let budget = BudgetSpec {
            max_ops: Some(500_000),
            ..Default::default()
        };
        let (rows, report) = detect_beaconing_budgeted_ft(
            &engine(),
            summaries,
            &detector,
            budget,
            None,
            &FaultPolicy::default(),
        );
        assert!(report.is_clean(), "a timeout is not a fault: {report:?}");
        let timed_out: Vec<_> = rows
            .into_iter()
            .filter_map(|row| match row {
                DetectRow::TimedOut(pair) => Some(pair),
                DetectRow::Hit(_) | DetectRow::Quiet(_) => None,
            })
            .collect();
        assert_eq!(
            timed_out,
            vec![CommunicationPair::new("slowpoke", "weird.biz")],
            "one pair must yield exactly one TimedOut row"
        );
    }

    #[test]
    fn unlimited_budgeted_detection_matches_plain_detection() {
        let mut records = beacon_records("infected", "evil.com", 60, 100);
        records.extend(beacon_records("other", "beacon.net", 45, 100));
        let summaries = extract_summaries(&engine(), records, 1);
        let detector = PeriodicityDetector::new(DetectorConfig::default());
        let plain = detect_beaconing(&engine(), summaries.clone(), &detector);
        let (rows, report) = detect_beaconing_budgeted_ft(
            &engine(),
            summaries,
            &detector,
            BudgetSpec::UNLIMITED,
            None,
            &FaultPolicy::default(),
        );
        assert!(report.is_clean());
        let hits: Vec<(ActivitySummary, DetectionReport)> = rows
            .into_iter()
            .filter_map(|row| match row {
                DetectRow::Hit(hit) => Some(*hit),
                DetectRow::TimedOut(pair) => panic!("unexpected timeout for {pair}"),
                DetectRow::Quiet(_) => None,
            })
            .collect();
        assert_eq!(hits, plain);
    }

    #[test]
    fn dlq_classification_distinguishes_failure_provenance() {
        let s = |src: &str, dst: &str| {
            ActivitySummary::from_records(&beacon_records(src, dst, 60, 5), 1).unwrap()
        };
        let ok = s("h", "fine.test");
        let exhausted = s("h", "slow.test");
        let poisoned = s("h", "poison.test");
        let straggler = s("h", "straggler.test");
        let inputs = vec![
            ok.clone(),
            exhausted.clone(),
            poisoned.clone(),
            straggler.clone(),
        ];
        // `ok` completed quiet, `exhausted` hit its kernel budget; the
        // other two produced no row at all.
        let outputs = vec![
            DetectRow::Quiet(ok.pair.clone()),
            DetectRow::TimedOut(exhausted.pair.clone()),
        ];
        let mut faults = FaultReport::default();
        faults.panic_samples.push("panicked: boom".to_string());
        faults.timeout_samples.push(format!("{:?}", straggler.pair));
        let entries = dlq_entries_for_shard(3, &inputs, &outputs, &faults, 8, 2);
        // Entries come out pair-sorted; `fine.test` produced no entry.
        let by_dst: Vec<(&str, DlqReason, usize)> = entries
            .iter()
            .map(|e| (e.key.as_str(), e.reason, e.retries))
            .collect();
        assert_eq!(entries.len(), 3);
        assert!(by_dst[0].0.contains("poison.test"));
        assert_eq!(by_dst[0].1, DlqReason::Poison);
        assert_eq!(by_dst[0].2, 2);
        assert_eq!(entries[0].samples, vec!["panicked: boom".to_string()]);
        assert!(by_dst[1].0.contains("slow.test"));
        assert_eq!(by_dst[1].1, DlqReason::BudgetExhausted);
        assert_eq!(by_dst[1].2, 0);
        assert!(by_dst[2].0.contains("straggler.test"));
        assert_eq!(by_dst[2].1, DlqReason::TimedOut);
        // Every payload replays: it decodes back to the pair's summaries.
        let replayed = crate::checkpoint::decode_summaries(&entries[1].payload).unwrap();
        assert_eq!(replayed, vec![exhausted]);
    }

    #[test]
    fn ft_jobs_with_no_plan_match_plain_jobs() {
        let mut records = beacon_records("a", "x.com", 60, 30);
        records.extend(beacon_records("b", "y.com", 90, 30));
        let plain = extract_summaries(&engine(), records.clone(), 1);
        let (ft, report) = extract_summaries_ft(&engine(), records, 1, None);
        assert_eq!(ft, plain);
        assert!(report.is_clean());

        let detector = PeriodicityDetector::new(DetectorConfig::default());
        let plain_hits = detect_beaconing(&engine(), plain.clone(), &detector);
        let (ft_hits, report) = detect_beaconing_ft(&engine(), plain, &detector, None);
        assert_eq!(ft_hits, plain_hits);
        assert!(report.is_clean());
    }
}
