//! URL path-token filter (§V-A).
//!
//! Legitimate beaconing — software update checks, AV signature polls,
//! mail/news polling — typically requests well-known URL paths. The token
//! filter removes candidate cases whose observed URL tokens are dominated
//! by such known-benign vocabulary, *before* analysts ever see them.
//!
//! A case survives the filter if fewer than
//! [`TokenFilter::benign_fraction`] of its distinct tokens are on the
//! benign list (malware check-ins typically use random or hex paths).

use std::collections::BTreeSet;
use std::collections::HashSet;

/// The token filter.
#[derive(Debug, Clone)]
pub struct TokenFilter {
    benign: HashSet<String>,
    benign_fraction: f64,
}

/// Built-in benign URL-token vocabulary.
pub const DEFAULT_BENIGN_TOKENS: &[&str] = &[
    "update",
    "updates",
    "signature",
    "signatures",
    "definitions",
    "poll",
    "polling",
    "feed",
    "feeds",
    "rss",
    "news",
    "license",
    "licensing",
    "heartbeat",
    "ping",
    "health",
    "status",
    "version",
    "check",
    "sync",
    "playlist",
    "scores",
    "weather",
    "mail",
    "calendar",
    "ocsp",
    "crl",
];

impl TokenFilter {
    /// Creates a filter with a custom benign vocabulary and threshold.
    ///
    /// # Panics
    ///
    /// Panics if `benign_fraction` is outside `(0, 1]`.
    pub fn new<I, S>(benign_tokens: I, benign_fraction: f64) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        assert!(
            benign_fraction > 0.0 && benign_fraction <= 1.0,
            "benign_fraction must be in (0, 1]"
        );
        Self {
            benign: benign_tokens
                .into_iter()
                .map(|t| t.as_ref().to_lowercase())
                .collect(),
            benign_fraction,
        }
    }

    /// The benign-fraction threshold.
    pub fn benign_fraction(&self) -> f64 {
        self.benign_fraction
    }

    /// Whether a case with the given distinct URL tokens should be
    /// *filtered out* as likely-benign.
    ///
    /// Cases with no tokens at all (Netflow/DNS input) are never filtered
    /// here — there is no evidence either way.
    ///
    /// # Example
    ///
    /// ```
    /// use baywatch_core::tokens::TokenFilter;
    /// use std::collections::BTreeSet;
    ///
    /// let filter = TokenFilter::default();
    /// let updater: BTreeSet<String> = ["update".to_owned()].into();
    /// assert!(filter.is_benign(&updater));
    /// let c2: BTreeSet<String> = ["a91f3c".to_owned(), "0be122".to_owned()].into();
    /// assert!(!filter.is_benign(&c2));
    /// ```
    pub fn is_benign(&self, tokens: &BTreeSet<String>) -> bool {
        if tokens.is_empty() {
            return false;
        }
        let benign_count = tokens
            .iter()
            .filter(|t| self.benign.contains(&t.to_lowercase()))
            .count();
        benign_count as f64 / tokens.len() as f64 >= self.benign_fraction
    }
}

impl Default for TokenFilter {
    fn default() -> Self {
        Self::new(DEFAULT_BENIGN_TOKENS.iter().copied(), 0.6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(list: &[&str]) -> BTreeSet<String> {
        list.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn pure_benign_filtered() {
        let f = TokenFilter::default();
        assert!(f.is_benign(&toks(&["update"])));
        assert!(f.is_benign(&toks(&["update", "version"])));
        assert!(f.is_benign(&toks(&["SIGNATURE"])));
    }

    #[test]
    fn random_paths_survive() {
        let f = TokenFilter::default();
        assert!(!f.is_benign(&toks(&["9f3ac1", "b27e90", "cc1444"])));
    }

    #[test]
    fn mixed_tokens_threshold() {
        let f = TokenFilter::default(); // threshold 0.6
                                        // 1 of 3 benign (33%) -> not filtered.
        assert!(!f.is_benign(&toks(&["update", "9f3ac1", "b27e90"])));
        // 2 of 3 benign (67%) -> filtered.
        assert!(f.is_benign(&toks(&["update", "version", "b27e90"])));
    }

    #[test]
    fn empty_tokens_never_filtered() {
        let f = TokenFilter::default();
        assert!(!f.is_benign(&BTreeSet::new()));
    }

    #[test]
    fn custom_vocabulary() {
        let f = TokenFilter::new(["corp-agent"], 1.0);
        assert!(f.is_benign(&toks(&["corp-agent"])));
        assert!(!f.is_benign(&toks(&["update"]))); // not in custom vocab
        assert_eq!(f.benign_fraction(), 1.0);
    }

    #[test]
    #[should_panic]
    fn zero_fraction_panics() {
        TokenFilter::new(["x"], 0.0);
    }
}
