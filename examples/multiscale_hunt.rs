//! Multi-scale operation (§X): daily, weekly and monthly passes catch
//! beacons at different time scales — a 24-hour callback is invisible to a
//! daily run (one event per day!) but unmistakable over a month.
//!
//! ```text
//! cargo run --release --example multiscale_hunt
//! ```

#![warn(clippy::unwrap_used)]

use baywatch::core::record::LogRecord;
use baywatch::core::schedule::MultiScaleScheduler;

const DAY: u64 = 86_400;

/// One day of records for a beacon with the given period.
fn beacon_day(day: usize, source: &str, domain: &str, period: u64) -> Vec<LogRecord> {
    let start = day as u64 * DAY;
    let mut t = start + (period - (start % period)) % period;
    let mut out = Vec::new();
    while t < start + DAY {
        out.push(LogRecord::new(t, source, domain, "cb"));
        t += period;
    }
    out
}

fn main() {
    let mut sched = MultiScaleScheduler::standard();

    println!("simulating 30 days with three infections at different cadences:");
    println!("  laptop-a -> fast-c2.example      (5-minute beacon)");
    println!("  laptop-b -> medium-c2.example    (6-hour beacon)");
    println!("  laptop-c -> slow-c2.example      (24-hour beacon)\n");

    let mut findings: Vec<(usize, &'static str, String, f64)> = Vec::new();
    for day in 0..30 {
        let mut records = beacon_day(day, "laptop-a", "fast-c2.example", 300);
        records.extend(beacon_day(day, "laptop-b", "medium-c2.example", 6 * 3600));
        records.extend(beacon_day(day, "laptop-c", "slow-c2.example", 24 * 3600));
        for det in sched.ingest_day(records) {
            let period = det.report.best().map(|c| c.period).unwrap_or(0.0);
            findings.push((day, det.tier, det.pair.destination.clone(), period));
        }
    }

    println!("day | tier    | destination        | detected period");
    println!("----+---------+--------------------+----------------");
    let mut seen = std::collections::HashSet::new();
    for (day, tier, dest, period) in &findings {
        // Print only the first sighting per (tier, dest) to keep it short.
        if seen.insert((tier.to_string(), dest.clone())) {
            println!("{day:>3} | {tier:<7} | {dest:<18} | {period:>8.0} s");
        }
    }

    let tiers_for = |d: &str| -> Vec<&str> {
        findings
            .iter()
            .filter(|(_, _, dest, _)| dest == d)
            .map(|(_, t, _, _)| *t)
            .collect()
    };
    assert!(
        tiers_for("fast-c2.example").contains(&"daily"),
        "5-minute beacon must be caught daily"
    );
    assert!(
        tiers_for("medium-c2.example").contains(&"weekly"),
        "6-hour beacon needs the weekly pass"
    );
    assert!(
        tiers_for("slow-c2.example").contains(&"monthly"),
        "24-hour beacon needs the monthly pass"
    );
    assert!(
        !tiers_for("slow-c2.example").contains(&"daily"),
        "one event per day can never look periodic in a daily window"
    );
    println!("\nOK: each cadence was caught exactly by the tier designed for it.");
}
