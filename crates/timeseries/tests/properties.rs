//! Property-based tests of the time-series layer.

use baywatch_timeseries::acf::Autocorrelation;
use baywatch_timeseries::gmm::{fit_gmm, select_gmm, GmmConfig};
use baywatch_timeseries::periodogram::Periodogram;
use baywatch_timeseries::permutation::{permutation_threshold, PermutationConfig};
use baywatch_timeseries::series::TimeSeries;
use baywatch_timeseries::symbolize::{match_fraction, ngram_histogram, symbolize};
use proptest::prelude::*;

fn sorted_timestamps() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(0u64..500_000, 8..300).prop_map(|mut v| {
        v.sort_unstable();
        v
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// ACF values are bounded by 1 in magnitude and ACF(0) = 1 for any
    /// non-degenerate series.
    #[test]
    fn acf_bounds(ts in sorted_timestamps()) {
        prop_assume!(ts.first() != ts.last());
        let series = TimeSeries::from_timestamps(&ts, 1).unwrap();
        let acf = Autocorrelation::compute(&series);
        prop_assert!((acf.value_at_lag(0).unwrap() - 1.0).abs() < 1e-6);
        for (lag, &v) in acf.values().iter().enumerate() {
            prop_assert!(v.abs() <= 1.0 + 1e-6, "ACF({lag}) = {v}");
        }
    }

    /// Periodogram power is non-negative; frequency × period ≡ 1.
    #[test]
    fn periodogram_sanity(ts in sorted_timestamps()) {
        prop_assume!(ts.first() != ts.last());
        let series = TimeSeries::from_timestamps(&ts, 1).unwrap();
        let pg = Periodogram::compute(&series);
        for line in pg.lines() {
            prop_assert!(line.power >= 0.0);
            prop_assert!((line.frequency * line.period - 1.0).abs() < 1e-9);
        }
    }

    /// The permutation threshold is one of the shuffled maxima and the
    /// maxima are sorted.
    #[test]
    fn permutation_threshold_well_formed(ts in sorted_timestamps(), m in 1usize..30) {
        prop_assume!(ts.first() != ts.last());
        let series = TimeSeries::from_timestamps(&ts, 1).unwrap();
        let cfg = PermutationConfig { permutations: m, ..Default::default() };
        let thr = permutation_threshold(&series, &cfg).unwrap();
        prop_assert_eq!(thr.shuffled_maxima.len(), m);
        prop_assert!(thr.shuffled_maxima.windows(2).all(|w| w[0] <= w[1]));
        prop_assert!(thr.shuffled_maxima.contains(&thr.threshold));
    }

    /// GMM weights always sum to 1 and components are finite, for any data
    /// and any component count that fits.
    #[test]
    fn gmm_weights_normalized(
        data in prop::collection::vec(0.1..10_000.0f64, 8..150),
        k in 1usize..5,
    ) {
        prop_assume!(data.len() >= k);
        let g = fit_gmm(&data, k, &GmmConfig::default()).unwrap();
        let sum: f64 = g.components().iter().map(|c| c.weight).sum();
        prop_assert!((sum - 1.0).abs() < 1e-6, "weights sum to {sum}");
        for c in g.components() {
            prop_assert!(c.mean.is_finite());
            prop_assert!(c.std_dev > 0.0);
        }
        prop_assert!(g.bic().is_finite());
    }

    /// BIC model selection returns one BIC per candidate k and the chosen
    /// model's BIC is the minimum.
    #[test]
    fn gmm_selection_minimizes_bic(data in prop::collection::vec(0.1..1000.0f64, 16..120)) {
        let cfg = GmmConfig { max_components: 3, ..Default::default() };
        let (best, bics) = select_gmm(&data, &cfg).unwrap();
        prop_assert!(!bics.is_empty());
        let min = bics.iter().cloned().fold(f64::INFINITY, f64::min);
        prop_assert!((best.bic() - min).abs() < 1e-6);
    }

    /// Symbolization is total (one symbol per interval) and consistent
    /// with match_fraction.
    #[test]
    fn symbolize_consistency(
        intervals in prop::collection::vec(0.0..5_000.0f64, 0..300),
        period in 1.0..5_000.0f64,
        tol in 0.0..0.5f64,
    ) {
        let symbols = symbolize(&intervals, &[period], tol);
        prop_assert_eq!(symbols.len(), intervals.len());
        let matches = symbols.iter().filter(|&&s| s == b'x').count();
        if !symbols.is_empty() {
            prop_assert!((match_fraction(&symbols) - matches as f64 / symbols.len() as f64).abs() < 1e-12);
        }
        // n-gram histogram total = len - n + 1 (when applicable).
        let hist = ngram_histogram(&symbols, 3);
        let total: usize = hist.values().sum();
        prop_assert_eq!(total, symbols.len().saturating_sub(2));
    }

    /// Rescaling twice equals rescaling once to the final scale.
    #[test]
    fn rescale_composes(ts in sorted_timestamps(), a in 2u64..10, b in 2u64..10) {
        prop_assume!(ts.first() != ts.last());
        let fine = TimeSeries::from_timestamps(&ts, 1).unwrap();
        let two_step = fine.rescale(a).unwrap().rescale(a * b).unwrap();
        let one_step = fine.rescale(a * b).unwrap();
        // Bin boundaries agree because both anchor at the series start.
        let s2: f64 = two_step.values().iter().sum();
        let s1: f64 = one_step.values().iter().sum();
        prop_assert_eq!(s1, s2);
        prop_assert_eq!(one_step.scale(), two_step.scale());
    }
}
