//! Criterion micro-bench: MapReduce shuffle throughput vs partition and
//! thread counts (the knob the paper tunes with its k-bit hash, §VII-A).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use baywatch_mapreduce::{JobConfig, MapReduce};

fn bench_shuffle(c: &mut Criterion) {
    let inputs: Vec<u64> = (0..200_000).collect();

    let mut group = c.benchmark_group("mapreduce_wordcount_200k");
    group.sample_size(10);
    group.throughput(Throughput::Elements(inputs.len() as u64));
    for (partitions, threads) in [(1usize, 1usize), (32, 1), (32, 4), (32, 8), (256, 8)] {
        let engine = MapReduce::new(JobConfig {
            partitions,
            threads,
        });
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("p{partitions}_t{threads}")),
            &engine,
            |b, engine| {
                b.iter_batched(
                    || inputs.clone(),
                    |inputs| {
                        engine.run(
                            inputs,
                            |n, emit| emit(n % 5_000, 1u64),
                            |k, vs| vec![(*k, vs.len() as u64)],
                        )
                    },
                    criterion::BatchSize::LargeInput,
                )
            },
        );
    }
    group.finish();

    // Combiner ablation: associative aggregation with and without map-side
    // combining.
    let mut group = c.benchmark_group("mapreduce_combiner_ablation");
    group.sample_size(10);
    let engine = MapReduce::new(JobConfig {
        partitions: 32,
        threads: 8,
    });
    group.bench_function("plain", |b| {
        b.iter_batched(
            || inputs.clone(),
            |inputs| {
                engine.run(
                    inputs,
                    |n, emit| emit(n % 100, 1u64),
                    |k, vs| vec![(*k, vs.iter().sum::<u64>())],
                )
            },
            criterion::BatchSize::LargeInput,
        )
    });
    group.bench_function("with_combiner", |b| {
        b.iter_batched(
            || inputs.clone(),
            |inputs| {
                engine.run_with_combiner(
                    inputs,
                    |n: u64, emit: &mut dyn FnMut(u64, u64)| emit(n % 100, 1u64),
                    |a, b| a + b,
                    |k, vs| vec![(*k, vs.iter().sum::<u64>())],
                )
            },
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_shuffle);
criterion_main!(benches);
