//! §VIII-B2 — scalability: pipeline runtime vs number of connection pairs.
//!
//! Paper (13-node Hadoop cluster): weekend days average 3.3 M distinct
//! pairs and take 14 minutes; weekdays average 26 M pairs and take 1.5 h —
//! runtime "mainly depended on the amount of data to be analyzed,
//! especially the number of connection pairs" (≈ linear). We reproduce the
//! *shape* on one machine: wall-clock across increasing host counts, the
//! weekday/weekend swing, and the near-linear pairs→runtime relationship.

#![warn(clippy::unwrap_used)]

use std::time::Instant;

use baywatch_bench::{f, render_table, save_json};
use baywatch_core::pipeline::{Baywatch, BaywatchConfig};
use baywatch_core::record::LogRecord;
use baywatch_netsim::enterprise::{EnterpriseConfig, EnterpriseSimulator};

fn records_for(sim: &EnterpriseSimulator, day: usize) -> Vec<LogRecord> {
    sim.generate_day(day)
        .iter()
        .map(|e| {
            LogRecord::new(
                e.timestamp,
                e.host.to_string(),
                e.domain.clone(),
                e.url_path.clone(),
            )
        })
        .collect()
}

fn main() {
    println!("=== Scalability: runtime vs connection pairs (§VIII-B2 shape) ===\n");

    let mut rows = Vec::new();
    let mut json = Vec::new();
    let mut series: Vec<(f64, f64)> = Vec::new();

    for hosts in [50usize, 100, 200, 400] {
        let sim = EnterpriseSimulator::new(EnterpriseConfig {
            hosts,
            days: 7,
            seed: 0x5CA1E,
            ..Default::default()
        });
        for (day, label) in [(1usize, "weekday"), (5usize, "weekend")] {
            let records = records_for(&sim, day);
            let events = records.len();
            let mut engine = Baywatch::new(BaywatchConfig {
                local_tau: 0.05,
                ..Default::default()
            });
            let start = Instant::now();
            let report = engine.analyze(records);
            let elapsed = start.elapsed().as_secs_f64();
            rows.push(vec![
                hosts.to_string(),
                label.into(),
                events.to_string(),
                report.stats.pairs.to_string(),
                format!("{:.2} s", elapsed),
                format!("{:.0}", report.stats.pairs as f64 / elapsed.max(1e-9)),
            ]);
            json.push((
                hosts,
                label.to_string(),
                events,
                report.stats.pairs,
                elapsed,
            ));
            if label == "weekday" {
                series.push((report.stats.pairs as f64, elapsed));
            }
        }
    }

    println!(
        "{}",
        render_table(
            &["hosts", "day", "events", "pairs", "wall clock", "pairs/s"],
            &rows
        )
    );

    // Weekday/weekend swing at the largest size; skipped (not fatal) if a
    // sweep produced no row of either kind.
    let wd = json.iter().rev().find(|r| r.1 == "weekday");
    let we = json.iter().rev().find(|r| r.1 == "weekend");
    if let (Some(wd), Some(we)) = (wd, we) {
        println!(
            "weekday/weekend pair ratio at {} hosts: {:.1}x (paper: 26 M / 3.3 M ≈ 7.9x)",
            wd.0,
            wd.3 as f64 / we.3.max(1) as f64
        );
    }

    // Near-linearity: runtime per pair should be roughly flat across the
    // weekday sweep. The smallest size is excluded (constant setup costs
    // like LM training dominate there) and an order-of-magnitude band is
    // allowed to absorb scheduler noise on a shared machine.
    let per_pair: Vec<f64> = series
        .iter()
        .filter(|(p, _)| *p >= 4_000.0)
        .map(|(p, t)| t / p)
        .collect();
    let min = per_pair.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = per_pair.iter().cloned().fold(0.0, f64::max);
    println!(
        "runtime per pair across weekday sweep (n ≥ 4k pairs): {}–{} µs (ratio {:.1}x; linear ⇒ ~flat)",
        f(min * 1e6, 1),
        f(max * 1e6, 1),
        max / min
    );
    assert!(
        max / min < 10.0,
        "runtime departs from the paper's linear-in-pairs behaviour"
    );

    save_json("scalability", &json);
}
