//! L7 fixture: accounting arithmetic inside a declared `[[ledger]]`
//! type (`types = ["Ledger"]` in ws `lint.toml`).

pub struct Ledger {
    pub total: u64,
    pub backoff_nanos: u64,
}

impl Ledger {
    /// Positive: narrowing cast truncates the tally.
    pub fn as_report_row(&self) -> u32 {
        self.total as u32
    }

    /// Positive: wraps silently on overflow.
    pub fn bump(&mut self) {
        self.total = self.total.wrapping_add(1);
    }

    /// Positive: clamps silently at zero.
    pub fn shrink(&mut self, by: u64) {
        self.total = self.total.saturating_sub(by);
    }

    /// Suppressed twin: allowlisted by the `backoff` pattern — the
    /// saturating duration sum is the intended clamp.
    pub fn wait(&mut self, nanos: u64) {
        self.backoff_nanos = self.backoff_nanos.saturating_add(nanos);
    }

    /// Negative: widening is lossless.
    pub fn grand_total(&self) -> u128 {
        self.total as u128
    }
}

/// Negative: the same arithmetic outside a declared ledger type.
pub fn helper_sum(a: u64, b: u64) -> u64 {
    a.wrapping_add(b)
}
