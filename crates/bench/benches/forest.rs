//! Criterion micro-bench: random-forest training and prediction at the
//! paper's scale (200 trees, Table-II feature vectors).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use baywatch_classifier::forest::{ForestConfig, RandomForest};
use baywatch_classifier::N_FEATURES;

fn synthetic_dataset(n: usize) -> (Vec<Vec<f64>>, Vec<bool>) {
    let xs: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            (0..N_FEATURES)
                .map(|j| (((i * 31 + j * 17) % 97) as f64) / 97.0 + (i % 2) as f64 * 0.3)
                .collect()
        })
        .collect();
    let ys: Vec<bool> = (0..n).map(|i| i % 2 == 0).collect();
    (xs, ys)
}

fn bench_forest(c: &mut Criterion) {
    let (xs, ys) = synthetic_dataset(470); // ≈ the paper's 1-month training window

    let mut group = c.benchmark_group("forest_train");
    group.sample_size(10);
    for trees in [50usize, 200] {
        let cfg = ForestConfig {
            n_trees: trees,
            ..Default::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(trees), &cfg, |b, cfg| {
            b.iter(|| RandomForest::fit(black_box(&xs), black_box(&ys), cfg).unwrap());
        });
    }
    group.finish();

    let rf = RandomForest::fit(
        &xs,
        &ys,
        &ForestConfig {
            n_trees: 200,
            ..Default::default()
        },
    )
    .unwrap();
    let (test_xs, _) = synthetic_dataset(1_882); // ≈ the paper's residual cases

    let mut group = c.benchmark_group("forest_predict");
    group.throughput(Throughput::Elements(test_xs.len() as u64));
    group.bench_function("classify_residual_cases", |b| {
        b.iter(|| {
            let mut pos = 0usize;
            for x in &test_xs {
                if rf.predict(black_box(x)) {
                    pos += 1;
                }
            }
            pos
        });
    });
    group.finish();
}

criterion_group!(benches, bench_forest);
criterion_main!(benches);
