//! L6 — every metric and span name written at runtime must be declared in
//! the committed manifest (`METRICS.md`).
//!
//! The clean-path `export_json` document is a byte-stability contract:
//! golden tests and downstream consumers key on exact metric names. A
//! typo'd name (`pipline.events`), a counter written unconditionally but
//! documented as gated, or an instrument added without a manifest row all
//! drift that contract silently. This rule extracts every
//! `.counter("…")`/`.gauge("…")`/`.histogram("…")`/`.operational("…")`/
//! `.timing("…")`/`.span("…")` site — including `format!`-built names,
//! whose `{…}` holes become `*` wildcards — and cross-checks the manifest:
//!
//! * undeclared names fail (with a Levenshtein-≤2 typo suggestion);
//! * a site whose method disagrees with the declared kind fails (drift);
//! * a site declared `gated` must sit inside a conditional, so the clean
//!   path cannot reach it;
//! * names the rule cannot read (arbitrary expressions) fail as
//!   non-literal, to be allowlisted with a written reason.
//!
//! The rule only runs when the workspace commits a `METRICS.md`.

use super::{snippet_at, Finding};
use crate::lexer::{Token, TokenKind};
use crate::manifest::Manifest;
use crate::syntax::File;
use crate::walk::SourceFile;

/// Instrumentation methods and the manifest kind each implies.
const METHODS: &[&str] = &[
    "counter",
    "gauge",
    "histogram",
    "operational",
    "timing",
    "span",
];

pub fn check(
    sf: &SourceFile,
    file: &File,
    source: &str,
    lines: &[&str],
    manifest: &Manifest,
    findings: &mut Vec<Finding>,
) {
    let tokens = &file.tokens;
    for (i, t) in tokens.iter().enumerate() {
        let Some(method) = METHODS.iter().find(|m| t.is_ident(m)) else {
            continue;
        };
        // `.method ( …` — a method call, not a field, macro, or fn item.
        if i == 0
            || !tokens[i - 1].is_punct('.')
            || !tokens.get(i + 1).is_some_and(|n| n.is_punct('('))
        {
            continue;
        }
        if file.in_test_code(i) {
            continue;
        }
        let arg = i + 2;
        // Zero-argument calls (`span.close()`-style APIs named `span()`)
        // carry no name to check.
        if tokens.get(arg).is_some_and(|n| n.is_punct(')')) {
            continue;
        }
        let name = extract_name(tokens, arg, source);
        let Some(name) = name else {
            findings.push(Finding {
                rule: "L6-metric-registry",
                path: sf.rel_path.clone(),
                line: t.line,
                snippet: snippet_at(lines, t.line),
                message: format!(
                    ".{method}(..) with a non-literal name cannot be checked against \
                     METRICS.md; use a string literal/format! or allowlist with the names \
                     it can produce written down"
                ),
                fix: None,
            });
            continue;
        };
        let decl = if name.contains('*') {
            // Format-derived names must be declared by the *same* wildcard
            // pattern, so the manifest stays an exact inventory of what
            // runtime can emit.
            manifest.lookup_pattern(&name)
        } else {
            manifest.lookup(&name)
        };
        let Some(decl) = decl else {
            let suggestion = manifest
                .nearest(&name)
                .map(|n| format!("; did you mean `{n}`?"))
                .unwrap_or_default();
            findings.push(Finding {
                rule: "L6-metric-registry",
                path: sf.rel_path.clone(),
                line: t.line,
                snippet: snippet_at(lines, t.line),
                message: format!("metric name `{name}` is not declared in METRICS.md{suggestion}"),
                fix: None,
            });
            continue;
        };
        if decl.kind != *method {
            findings.push(Finding {
                rule: "L6-metric-registry",
                path: sf.rel_path.clone(),
                line: t.line,
                snippet: snippet_at(lines, t.line),
                message: format!(
                    "`{name}` is declared as a {} in METRICS.md but written via .{method}(..)",
                    decl.kind
                ),
                fix: None,
            });
            continue;
        }
        if decl.gating == "gated" && !inside_conditional(file, i) {
            findings.push(Finding {
                rule: "L6-metric-registry",
                path: sf.rel_path.clone(),
                line: t.line,
                snippet: snippet_at(lines, t.line),
                message: format!(
                    "`{name}` is declared gated (clean-path-silent) in METRICS.md but this \
                     write is unconditional; guard it or re-declare the gating"
                ),
                fix: None,
            });
        }
    }
}

/// Reads the metric name from the first argument: a string literal,
/// `&`-ref of one, or a `format!("…")` whose holes become `*`. `None`
/// means the name is not statically readable.
fn extract_name(tokens: &[Token], mut arg: usize, source: &str) -> Option<String> {
    if tokens.get(arg).is_some_and(|t| t.is_punct('&')) {
        arg += 1;
    }
    let t = tokens.get(arg)?;
    if t.kind == TokenKind::Str {
        return str_literal_value(source, t);
    }
    // `format ! ( "…" …`
    if t.is_ident("format")
        && tokens.get(arg + 1).is_some_and(|n| n.is_punct('!'))
        && tokens.get(arg + 2).is_some_and(|n| n.is_punct('('))
        && tokens
            .get(arg + 3)
            .is_some_and(|n| n.kind == TokenKind::Str)
    {
        let fmt = str_literal_value(source, &tokens[arg + 3])?;
        return Some(wildcard_format(&fmt));
    }
    None
}

/// The text content of a string-literal token, via its byte span:
/// `"x"` → `x`, `r#"x"#` → `x`.
pub(crate) fn str_literal_value(source: &str, t: &Token) -> Option<String> {
    let raw = source.get(t.start..t.end)?;
    let raw = raw.strip_prefix('r').unwrap_or(raw);
    let raw = raw.trim_matches('#');
    let raw = raw.strip_prefix('"')?.strip_suffix('"')?;
    Some(raw.to_string())
}

/// `"stage.{stage}.admitted"` → `stage.*.admitted`; `{{`/`}}` unescape to
/// literal braces.
fn wildcard_format(fmt: &str) -> String {
    let mut out = String::with_capacity(fmt.len());
    let mut chars = fmt.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '{' if chars.peek() == Some(&'{') => {
                chars.next();
                out.push('{');
            }
            '}' if chars.peek() == Some(&'}') => {
                chars.next();
                out.push('}');
            }
            '{' => {
                for n in chars.by_ref() {
                    if n == '}' {
                        break;
                    }
                }
                out.push('*');
            }
            c => out.push(c),
        }
    }
    out
}

/// Whether any block containing `idx` is the body of an `if`/`else`/
/// `match`/`while` — i.e. the write is unreachable on an unconditional
/// straight-line path through its function.
fn inside_conditional(file: &File, idx: usize) -> bool {
    let tokens = &file.tokens;
    for (j, t) in tokens.iter().enumerate().take(idx) {
        if !t.is_punct('{') {
            continue;
        }
        let Some(close) = file.matching(j) else {
            continue;
        };
        if close <= idx {
            continue;
        }
        // This block contains the site; does a conditional introduce it?
        let start = file.statement_start(j);
        let guarded = tokens[start..j].iter().any(|h| {
            h.is_ident("if") || h.is_ident("else") || h.is_ident("match") || h.is_ident("while")
        });
        if guarded {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::walk::Section;
    use std::path::PathBuf;

    const MANIFEST: &str = "\
| name | kind | gating | module |
|------|------|--------|--------|
| `pipeline.events` | counter | always | core/pipeline |
| `stage.*.admitted` | counter | always | core/pipeline |
| `dlq.entries` | counter | gated | core/pipeline |
| `detector.series_bins` | histogram | always | timeseries |
";

    fn lib_file() -> SourceFile {
        SourceFile {
            abs_path: PathBuf::from("crates/core/src/pipeline.rs"),
            rel_path: "crates/core/src/pipeline.rs".to_string(),
            crate_name: Some("core".to_string()),
            section: Section::Lib,
        }
    }

    fn run(src: &str) -> Vec<Finding> {
        let manifest = Manifest::parse(MANIFEST).expect("fixture manifest");
        let file = File::parse(lex(src));
        let lines: Vec<&str> = src.lines().collect();
        let mut findings = Vec::new();
        check(&lib_file(), &file, src, &lines, &manifest, &mut findings);
        findings
    }

    #[test]
    fn declared_names_pass_and_typos_get_suggestions() {
        let ok = "fn f(m: &M) { m.counter(\"pipeline.events\").add(1); }";
        assert!(run(ok).is_empty());

        let typo = "fn f(m: &M) { m.counter(\"pipline.events\").add(1); }";
        let f = run(typo);
        assert_eq!(f.len(), 1);
        assert!(
            f[0].message.contains("did you mean `pipeline.events`"),
            "{}",
            f[0].message
        );
    }

    #[test]
    fn format_names_match_wildcard_rows_exactly() {
        let ok = "fn f(m: &M, s: &str) { m.counter(&format!(\"stage.{s}.admitted\")).add(1); }";
        assert!(run(ok).is_empty());

        let undeclared =
            "fn f(m: &M, s: &str) { m.counter(&format!(\"stage.{s}.rejected\")).add(1); }";
        assert_eq!(run(undeclared).len(), 1);
    }

    #[test]
    fn kind_drift_is_flagged() {
        let src = "fn f(m: &M) { m.gauge(\"pipeline.events\").set(1); }";
        let f = run(src);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("declared as a counter"));
    }

    #[test]
    fn gated_names_must_be_conditional() {
        let bare = "fn f(m: &M) { m.counter(\"dlq.entries\").add(n); }";
        let f = run(bare);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("unconditional"));

        let guarded = "fn f(m: &M, n: u64) { if n > 0 { m.counter(\"dlq.entries\").add(n); } }";
        assert!(run(guarded).is_empty());

        let matched =
            "fn f(m: &M, n: u64) { match n { 0 => {}, n => { m.counter(\"dlq.entries\").add(n); } } }";
        assert!(run(matched).is_empty());
    }

    #[test]
    fn non_literal_names_are_flagged() {
        let src = "fn f(m: &M, name: &str) { m.counter(name).add(1); }";
        let f = run(src);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("non-literal"));
    }

    #[test]
    fn zero_arg_and_test_sites_are_skipped() {
        let src = "fn f(s: &S) { s.span(); }\n\
                   #[cfg(test)]\nmod tests { fn t(m: &M) { m.counter(\"nope\").add(1); } }";
        assert!(run(src).is_empty());
    }

    #[test]
    fn wildcard_format_handles_escaped_braces() {
        assert_eq!(wildcard_format("stage.{s}.admitted"), "stage.*.admitted");
        assert_eq!(wildcard_format("lit.{{x}}.y"), "lit.{x}.y");
        assert_eq!(wildcard_format("a.{x:>3}.b"), "a.*.b");
    }
}
