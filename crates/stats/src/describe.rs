//! Descriptive statistics: mean, variance, percentiles and summaries.
//!
//! These are used throughout BAYWATCH: the pruning step compares candidate
//! periods against the minimum observed interval, the ranking filter
//! thresholds scores at the 90th percentile of the score distribution, and
//! the classifier features include the standard deviation of the interval
//! list.

use crate::StatsError;

/// Arithmetic mean of a sample.
///
/// # Errors
///
/// Returns [`StatsError::InsufficientData`] for an empty sample.
///
/// # Example
///
/// ```
/// use baywatch_stats::describe::mean;
/// assert_eq!(mean(&[1.0, 2.0, 3.0]).unwrap(), 2.0);
/// ```
pub fn mean(data: &[f64]) -> Result<f64, StatsError> {
    if data.is_empty() {
        return Err(StatsError::InsufficientData {
            required: 1,
            actual: 0,
        });
    }
    Ok(data.iter().sum::<f64>() / data.len() as f64)
}

/// Unbiased (n−1 denominator) sample variance.
///
/// # Errors
///
/// Returns [`StatsError::InsufficientData`] if fewer than two observations
/// are provided.
pub fn variance(data: &[f64]) -> Result<f64, StatsError> {
    if data.len() < 2 {
        return Err(StatsError::InsufficientData {
            required: 2,
            actual: data.len(),
        });
    }
    let m = mean(data)?;
    // Two-pass algorithm for numerical stability.
    let ss: f64 = data.iter().map(|x| (x - m) * (x - m)).sum();
    Ok(ss / (data.len() - 1) as f64)
}

/// Unbiased sample standard deviation.
///
/// # Errors
///
/// Returns [`StatsError::InsufficientData`] if fewer than two observations
/// are provided.
pub fn std_dev(data: &[f64]) -> Result<f64, StatsError> {
    Ok(variance(data)?.sqrt())
}

/// Linear-interpolation percentile (the "type 7" definition used by R and
/// NumPy's default). `q` is in `[0, 100]`.
///
/// # Errors
///
/// Returns [`StatsError::InsufficientData`] for an empty sample and
/// [`StatsError::InvalidParameter`] if `q` is outside `[0, 100]`.
///
/// # Example
///
/// ```
/// use baywatch_stats::describe::percentile;
/// let data = [1.0, 2.0, 3.0, 4.0];
/// assert_eq!(percentile(&data, 50.0).unwrap(), 2.5);
/// assert_eq!(percentile(&data, 100.0).unwrap(), 4.0);
/// ```
pub fn percentile(data: &[f64], q: f64) -> Result<f64, StatsError> {
    if data.is_empty() {
        return Err(StatsError::InsufficientData {
            required: 1,
            actual: 0,
        });
    }
    if !(0.0..=100.0).contains(&q) {
        return Err(StatsError::InvalidParameter {
            name: "q",
            constraint: "must be within [0, 100]",
        });
    }
    let mut sorted: Vec<f64> = data.to_vec();
    // NaN is rejected above; total_cmp keeps the sort total (and the
    // ordering reproducible) even if that guard ever regresses.
    sorted.sort_by(f64::total_cmp);
    let h = (sorted.len() - 1) as f64 * q / 100.0;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    if lo == hi {
        Ok(sorted[lo])
    } else {
        let frac = h - lo as f64;
        Ok(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
    }
}

/// Median (50th percentile).
///
/// # Errors
///
/// Returns [`StatsError::InsufficientData`] for an empty sample.
pub fn median(data: &[f64]) -> Result<f64, StatsError> {
    percentile(data, 50.0)
}

/// A one-shot five-plus-two-number summary of a sample.
///
/// # Example
///
/// ```
/// use baywatch_stats::describe::Summary;
/// let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
/// assert_eq!(s.count, 8);
/// assert_eq!(s.mean, 5.0);
/// assert_eq!(s.min, 2.0);
/// assert_eq!(s.max, 9.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Unbiased standard deviation (0 for a single observation).
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// 25th percentile.
    pub q25: f64,
    /// Median.
    pub median: f64,
    /// 75th percentile.
    pub q75: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Computes the summary of a sample.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InsufficientData`] for an empty sample.
    pub fn of(data: &[f64]) -> Result<Self, StatsError> {
        if data.is_empty() {
            return Err(StatsError::InsufficientData {
                required: 1,
                actual: 0,
            });
        }
        let sd = if data.len() >= 2 { std_dev(data)? } else { 0.0 };
        Ok(Summary {
            count: data.len(),
            mean: mean(data)?,
            std_dev: sd,
            min: data.iter().cloned().fold(f64::INFINITY, f64::min),
            q25: percentile(data, 25.0)?,
            median: median(data)?,
            q75: percentile(data, 75.0)?,
            max: data.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
        })
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={:.4} sd={:.4} min={:.4} q25={:.4} med={:.4} q75={:.4} max={:.4}",
            self.count,
            self.mean,
            self.std_dev,
            self.min,
            self.q25,
            self.median,
            self.q75,
            self.max
        )
    }
}

/// Coefficient of variation (`σ / μ`); a unit-free measure of interval
/// regularity used in the weighted ranking filter (low CV ⇒ strong
/// periodicity).
///
/// # Errors
///
/// Returns [`StatsError::InsufficientData`] for samples with fewer than two
/// observations and [`StatsError::ZeroVariance`] if the mean is zero.
pub fn coefficient_of_variation(data: &[f64]) -> Result<f64, StatsError> {
    let m = mean(data)?;
    if m == 0.0 {
        return Err(StatsError::ZeroVariance);
    }
    Ok(std_dev(data)? / m.abs())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[4.0]).unwrap(), 4.0);
        assert_eq!(mean(&[1.0, 3.0]).unwrap(), 2.0);
        assert!(mean(&[]).is_err());
    }

    #[test]
    fn variance_basic() {
        // Var([1,2,3,4]) with n-1 denominator = 5/3
        let v = variance(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert!((v - 5.0 / 3.0).abs() < 1e-12);
        assert!(variance(&[1.0]).is_err());
    }

    #[test]
    fn variance_of_constant_is_zero() {
        let v = variance(&[7.0; 10]).unwrap();
        assert_eq!(v, 0.0);
    }

    #[test]
    fn std_dev_matches_variance() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let v = variance(&data).unwrap();
        assert!((std_dev(&data).unwrap() - v.sqrt()).abs() < 1e-15);
    }

    #[test]
    fn percentile_endpoints_and_interp() {
        let data = [3.0, 1.0, 2.0, 4.0]; // unsorted on purpose
        assert_eq!(percentile(&data, 0.0).unwrap(), 1.0);
        assert_eq!(percentile(&data, 100.0).unwrap(), 4.0);
        assert_eq!(percentile(&data, 50.0).unwrap(), 2.5);
        // 25th percentile of [1,2,3,4] (type 7): 1.75
        assert!((percentile(&data, 25.0).unwrap() - 1.75).abs() < 1e-12);
    }

    #[test]
    fn percentile_rejects_bad_q() {
        assert!(percentile(&[1.0], -1.0).is_err());
        assert!(percentile(&[1.0], 101.0).is_err());
        assert!(percentile(&[], 50.0).is_err());
    }

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[5.0, 1.0, 3.0]).unwrap(), 3.0);
        assert_eq!(median(&[1.0, 2.0, 3.0, 4.0]).unwrap(), 2.5);
    }

    #[test]
    fn summary_single_value() {
        let s = Summary::of(&[42.0]).unwrap();
        assert_eq!(s.count, 1);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.min, 42.0);
        assert_eq!(s.max, 42.0);
        assert!(!format!("{s}").is_empty());
    }

    #[test]
    fn cv_detects_regularity() {
        // A tight beacon train has a far lower CV than random intervals.
        let regular = [60.0, 60.5, 59.5, 60.1, 59.9];
        let irregular = [5.0, 200.0, 33.0, 170.0, 12.0];
        let cv_r = coefficient_of_variation(&regular).unwrap();
        let cv_i = coefficient_of_variation(&irregular).unwrap();
        assert!(cv_r < 0.01);
        assert!(cv_i > 0.5);
    }

    #[test]
    fn cv_zero_mean_errors() {
        assert_eq!(
            coefficient_of_variation(&[-1.0, 1.0]),
            Err(StatsError::ZeroVariance)
        );
    }
}
