//! Fig. 7 — GMM for detecting multiple periods.
//!
//! The paper fits a Gaussian mixture to the interval list of a bot with
//! two-scale behaviour and reads the periods off the component means
//! (their example: means ≈ 175.1 s and ≈ 4.5 s with weights 0.46 / 0.53
//! plus a 0.01 outlier component), selecting the component count by BIC.

#![warn(clippy::unwrap_used)]

use baywatch_bench::{f, render_table, save_json};
use baywatch_netsim::synth::multi_period_burst;
use baywatch_timeseries::gmm::{select_gmm, GmmConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("=== Fig. 7: GMM for detecting multiple periods ===\n");

    // Two-scale trace shaped like the paper's example: pairs of requests
    // 4.5 s apart repeating every ~175 s — the structure whose GMM readout
    // Fig. 7 reports as means ≈ 4.51 / ≈ 175.1 with weights ≈ 0.53 / 0.46.
    let timestamps = multi_period_burst(0, 300, 2, 4.5, 175.0, 0.3, 3);
    let intervals: Vec<f64> = timestamps
        .windows(2)
        .map(|w| (w[1] - w[0]) as f64)
        .collect();
    println!(
        "{} intervals; first few: {:?}",
        intervals.len(),
        &intervals[..8.min(intervals.len())]
    );

    let cfg = GmmConfig::default();
    let (best, bics) = select_gmm(&intervals, &cfg)?;

    println!("\n--- BIC vs number of components ---");
    let rows: Vec<Vec<String>> = bics
        .iter()
        .enumerate()
        .map(|(i, b)| {
            let marker = if *b == bics.iter().cloned().fold(f64::INFINITY, f64::min) {
                "<- selected"
            } else {
                ""
            };
            vec![(i + 1).to_string(), f(*b, 1), marker.into()]
        })
        .collect();
    println!("{}", render_table(&["k", "BIC", ""], &rows));

    println!("--- selected mixture components ---");
    let rows: Vec<Vec<String>> = best
        .components()
        .iter()
        .map(|c| vec![f(c.mean, 2), f(c.std_dev, 3), f(c.weight, 3)])
        .collect();
    println!(
        "{}",
        render_table(&["mean (s)", "std dev", "weight"], &rows)
    );

    let means = best.dominant_means(0.02);
    println!("dominant periods read off the GMM: {means:?}");
    assert!(
        means.iter().any(|&m| (m - 4.5).abs() < 1.5),
        "fast component missing"
    );
    assert!(means.iter().any(|&m| m > 10.0), "gap component missing");
    assert!(
        best.components().len() >= 2,
        "BIC must prefer a multi-component fit"
    );
    println!("\nOK: both time scales recovered, matching the paper's Fig. 7 readout.");

    save_json(
        "fig07_gmm",
        &(
            bics,
            best.components()
                .iter()
                .map(|c| (c.mean, c.std_dev, c.weight))
                .collect::<Vec<_>>(),
        ),
    );
    Ok(())
}
