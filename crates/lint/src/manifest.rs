//! The committed metrics manifest (`METRICS.md`): the source of truth the
//! L6-metric-registry rule checks instrumentation sites against.
//!
//! The manifest is a markdown table — human-readable documentation first,
//! machine-checkable second. Rows look like:
//!
//! ```text
//! | name                  | kind    | gating      | module            |
//! |-----------------------|---------|-------------|-------------------|
//! | `pipeline.events`     | counter | always      | core/pipeline     |
//! | `stage.*.admitted`    | counter | always      | core/pipeline     |
//! ```
//!
//! Names may contain `*` wildcards, each matching exactly one
//! dot-delimited segment — that is how dynamically formatted names
//! (`format!("stage.{stage}.admitted")`) are declared. Kinds mirror the
//! `MetricsRegistry` families plus `span`; gating records whether a write
//! is reachable on the byte-identical clean path (`always`), only behind a
//! non-zero condition (`gated`), or excluded from `to_json` entirely
//! (`operational`, which also covers `timing`/`span`).

use std::fs;
use std::path::Path;

/// One declared metric or span name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricDecl {
    /// Declared name; `*` segments match one dot-delimited segment each.
    pub name: String,
    /// `counter` | `gauge` | `histogram` | `timing` | `operational` | `span`
    pub kind: String,
    /// `always` | `gated` | `operational`
    pub gating: String,
    /// Owning module, informational only.
    pub module: String,
}

const KINDS: &[&str] = &[
    "counter",
    "gauge",
    "histogram",
    "timing",
    "operational",
    "span",
];
const GATINGS: &[&str] = &["always", "gated", "operational"];

/// The parsed manifest.
#[derive(Debug, Default)]
pub struct Manifest {
    pub decls: Vec<MetricDecl>,
}

impl Manifest {
    /// Loads `METRICS.md` from `path`. A missing file is `Ok(None)` — the
    /// L6 rule simply stays off — but a present-and-malformed manifest is
    /// a hard error: a manifest that silently half-parses would let drift
    /// through the exact gap it exists to close.
    pub fn load(path: &Path) -> Result<Option<Self>, String> {
        let text = match fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(format!("{}: {e}", path.display())),
        };
        Self::parse(&text).map(Some)
    }

    pub fn parse(text: &str) -> Result<Self, String> {
        let mut decls = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if !line.starts_with('|') {
                continue;
            }
            let cells: Vec<String> = line
                .trim_matches('|')
                .split('|')
                .map(|c| c.trim().trim_matches('`').to_string())
                .collect();
            if cells.len() < 4 {
                continue;
            }
            // Header and separator rows.
            if cells[0] == "name" || cells[0].chars().all(|c| c == '-' || c == ':') {
                continue;
            }
            let decl = MetricDecl {
                name: cells[0].clone(),
                kind: cells[1].clone(),
                gating: cells[2].clone(),
                module: cells[3].clone(),
            };
            if decl.name.is_empty() {
                return Err(format!("METRICS.md line {}: empty metric name", lineno + 1));
            }
            if !KINDS.contains(&decl.kind.as_str()) {
                return Err(format!(
                    "METRICS.md line {}: unknown kind `{}` for `{}` (expected one of {})",
                    lineno + 1,
                    decl.kind,
                    decl.name,
                    KINDS.join("/")
                ));
            }
            if !GATINGS.contains(&decl.gating.as_str()) {
                return Err(format!(
                    "METRICS.md line {}: unknown gating `{}` for `{}` (expected one of {})",
                    lineno + 1,
                    decl.gating,
                    decl.name,
                    GATINGS.join("/")
                ));
            }
            if decls.iter().any(|d: &MetricDecl| d.name == decl.name) {
                return Err(format!(
                    "METRICS.md line {}: duplicate declaration of `{}`",
                    lineno + 1,
                    decl.name
                ));
            }
            decls.push(decl);
        }
        Ok(Self { decls })
    }

    /// The declaration matching `name` exactly or via `*` segments.
    /// Exact rows win over wildcard rows so `stage.extract.admitted` can
    /// carry its own gating even when `stage.*.admitted` exists.
    pub fn lookup(&self, name: &str) -> Option<&MetricDecl> {
        self.decls
            .iter()
            .find(|d| d.name == name)
            .or_else(|| self.decls.iter().find(|d| segments_match(&d.name, name)))
    }

    /// The declaration whose *pattern text* equals `name` verbatim —
    /// how format-derived names (already wildcarded by the rule) match.
    pub fn lookup_pattern(&self, pattern: &str) -> Option<&MetricDecl> {
        self.decls.iter().find(|d| d.name == pattern)
    }

    /// The declared exact (wildcard-free) name closest to `name` within
    /// Levenshtein distance 2 — the typo-drift suggestion.
    pub fn nearest(&self, name: &str) -> Option<&str> {
        self.decls
            .iter()
            .filter(|d| !d.name.contains('*'))
            .map(|d| (levenshtein(&d.name, name), d.name.as_str()))
            .filter(|(dist, _)| *dist <= 2 && *dist > 0)
            .min_by_key(|(dist, _)| *dist)
            .map(|(_, n)| n)
    }
}

/// Dot-segment match: `*` in the pattern matches exactly one segment.
fn segments_match(pattern: &str, name: &str) -> bool {
    let p: Vec<&str> = pattern.split('.').collect();
    let n: Vec<&str> = name.split('.').collect();
    p.len() == n.len() && p.iter().zip(&n).all(|(ps, ns)| *ps == "*" || ps == ns)
}

/// Plain dynamic-programming Levenshtein distance, O(|a|·|b|).
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# Metrics

| name | kind | gating | module |
|------|------|--------|--------|
| `pipeline.events` | counter | always | core/pipeline |
| `stage.*.admitted` | counter | always | core/pipeline |
| `dlq.entries` | counter | gated | core/pipeline |
| `detector.series_bins` | histogram | always | timeseries |
";

    #[test]
    fn rows_parse_and_lookups_resolve() {
        let m = Manifest::parse(SAMPLE).expect("sample manifest parses");
        assert_eq!(m.decls.len(), 4);
        assert_eq!(
            m.lookup("pipeline.events").expect("declared").kind,
            "counter"
        );
        assert_eq!(
            m.lookup("stage.extract.admitted")
                .expect("wildcard row")
                .gating,
            "always"
        );
        assert!(m.lookup("stage.extract.rejected").is_none());
        assert!(
            m.lookup("stage.a.b.admitted").is_none(),
            "wildcards span one segment"
        );
        assert!(m.lookup_pattern("stage.*.admitted").is_some());
        assert!(m.lookup_pattern("stage.extract.admitted").is_none());
    }

    #[test]
    fn typo_suggestions_stay_within_distance_two() {
        let m = Manifest::parse(SAMPLE).expect("sample manifest parses");
        assert_eq!(m.nearest("pipeline.event"), Some("pipeline.events"));
        assert_eq!(m.nearest("dlq.entires"), Some("dlq.entries"));
        assert_eq!(m.nearest("completely.unrelated"), None);
    }

    #[test]
    fn malformed_rows_are_hard_errors() {
        let bad_kind = "| `x.y` | meter | always | here |";
        assert!(Manifest::parse(bad_kind)
            .expect_err("must reject")
            .contains("unknown kind"));
        let bad_gate = "| `x.y` | counter | sometimes | here |";
        assert!(Manifest::parse(bad_gate)
            .expect_err("must reject")
            .contains("unknown gating"));
        let dup = "| `x.y` | counter | always | here |\n| `x.y` | gauge | always | there |";
        assert!(Manifest::parse(dup)
            .expect_err("must reject")
            .contains("duplicate"));
    }

    #[test]
    fn levenshtein_basics() {
        assert_eq!(levenshtein("abc", "abc"), 0);
        assert_eq!(levenshtein("abc", "abd"), 1);
        assert_eq!(levenshtein("abc", "acbd"), 2);
        assert_eq!(levenshtein("", "abc"), 3);
    }
}
