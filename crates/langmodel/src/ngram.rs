//! Interpolated Kneser-Ney character n-gram model.
//!
//! The model estimates `P(c | c₁…cₙ₋₁)`, the probability of the next
//! character given the previous `n − 1`. The highest order uses absolute
//! discounting over raw counts; lower orders use Kneser-Ney *continuation
//! counts* ("in how many distinct contexts does this gram appear?"), which
//! measure how versatile a character sequence is rather than how frequent —
//! the property that makes KN the standard smoother for previously unseen
//! n-grams (footnote 3 of the paper).

use std::collections::HashMap;

/// Start-of-string padding character.
const PAD: u8 = b'^';
/// End-of-string marker.
const END: u8 = b'$';
/// Catch-all byte for characters outside the domain-name alphabet.
const UNK: u8 = b'?';
/// Alphabet size for the uniform base distribution: 26 letters + 10 digits
/// + '-' + '.' + '_' + end marker + unknown.
const ALPHABET: f64 = 41.0;
/// Absolute discount (the standard Kneser-Ney choice).
const DISCOUNT: f64 = 0.75;

/// Per-context aggregates: total mass, per-character mass and the number of
/// distinct following characters.
#[derive(Debug, Clone, Default)]
struct ContextStats {
    total: f64,
    follows: HashMap<u8, f64>,
}

impl ContextStats {
    fn distinct(&self) -> f64 {
        self.follows.len() as f64
    }
}

/// An interpolated Kneser-Ney character n-gram model.
///
/// # Example
///
/// ```
/// use baywatch_langmodel::ngram::NgramModel;
///
/// let model = NgramModel::train(["banana", "bandana", "cabana"], 3);
/// // "ban" fragments are familiar; "xqz" is not.
/// assert!(model.log_prob("banana") > model.log_prob("xqzxqz"));
/// ```
#[derive(Debug, Clone)]
pub struct NgramModel {
    order: usize,
    /// `levels[k]` holds the context statistics for predicting with a
    /// context of length `k` (so `levels[order-1]` is the highest order).
    /// Level 0 is the unigram (empty-context) distribution.
    /// Levels below the highest are built from continuation counts.
    levels: Vec<HashMap<Vec<u8>, ContextStats>>,
    trained_on: usize,
}

impl NgramModel {
    /// Trains a model of the given order (e.g. 3 for the paper's 3-gram
    /// model) on an iterator of strings.
    ///
    /// # Panics
    ///
    /// Panics if `order == 0`.
    pub fn train<I, S>(corpus: I, order: usize) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        assert!(order > 0, "n-gram order must be at least 1");

        // Raw counts of k-grams for k = 1..=order.
        let mut raw: Vec<HashMap<Vec<u8>, f64>> = vec![HashMap::new(); order];
        let mut trained_on = 0usize;
        for s in corpus {
            trained_on += 1;
            let padded = pad(s.as_ref(), order);
            for k in 1..=order {
                for w in padded.windows(k) {
                    // Padding only ever appears as *context*, never as a
                    // predicted character; counting grams that end in PAD
                    // would leak probability mass onto an unreachable
                    // outcome.
                    if w[k - 1] == PAD {
                        continue;
                    }
                    *raw[k - 1].entry(w.to_vec()).or_insert(0.0) += 1.0;
                }
            }
        }

        // Continuation counts for k-grams, k = 1..order: number of distinct
        // predecessors w with raw count(w·g) > 0.
        let mut cont: Vec<HashMap<Vec<u8>, f64>> = vec![HashMap::new(); order];
        for k in 1..order {
            let mut seen: HashMap<Vec<u8>, std::collections::HashSet<u8>> = HashMap::new();
            for gram in raw[k].keys() {
                // gram has length k+1: predecessor byte + k-gram.
                let (w, g) = (gram[0], gram[1..].to_vec());
                seen.entry(g).or_default().insert(w);
            }
            for (g, ws) in seen {
                cont[k - 1].insert(g, ws.len() as f64);
            }
        }

        // Build per-level context statistics. Highest level from raw
        // counts, lower levels from continuation counts.
        let mut levels: Vec<HashMap<Vec<u8>, ContextStats>> = Vec::with_capacity(order);
        for ctx_len in 0..order {
            let counts = if ctx_len == order - 1 {
                &raw[order - 1]
            } else {
                &cont[ctx_len]
            };
            let mut level: HashMap<Vec<u8>, ContextStats> = HashMap::new();
            for (gram, &c) in counts {
                // gram = context (ctx_len bytes) + next char.
                let ctx = gram[..ctx_len].to_vec();
                let next = gram[ctx_len];
                let stats = level.entry(ctx).or_default();
                stats.total += c;
                *stats.follows.entry(next).or_insert(0.0) += c;
            }
            levels.push(level);
        }

        Self {
            order,
            levels,
            trained_on,
        }
    }

    /// The n-gram order.
    pub fn order(&self) -> usize {
        self.order
    }

    /// Number of training strings.
    pub fn trained_on(&self) -> usize {
        self.trained_on
    }

    /// Smoothed probability of `next` following `context` (only the final
    /// `order − 1` bytes of the context are used).
    pub fn prob(&self, context: &[u8], next: u8) -> f64 {
        let next = canon(next);
        let ctx_len = self.order - 1;
        let start = context.len().saturating_sub(ctx_len);
        let ctx: Vec<u8> = context[start..].iter().map(|&b| canon(b)).collect();
        self.prob_at_level(ctx.len(), &ctx, next)
    }

    fn prob_at_level(&self, level: usize, ctx: &[u8], next: u8) -> f64 {
        if level == 0 {
            // Unigram continuation distribution interpolated with uniform.
            let stats = self.levels[0].get(&Vec::new());
            return match stats {
                Some(s) if s.total > 0.0 => {
                    let c = s.follows.get(&next).copied().unwrap_or(0.0);
                    let num = (c - DISCOUNT).max(0.0);
                    let lambda = DISCOUNT * s.distinct() / s.total;
                    num / s.total + lambda / ALPHABET
                }
                _ => 1.0 / ALPHABET,
            };
        }
        let key = ctx[ctx.len() - level..].to_vec();
        match self.levels[level].get(&key) {
            Some(s) if s.total > 0.0 => {
                let c = s.follows.get(&next).copied().unwrap_or(0.0);
                let num = (c - DISCOUNT).max(0.0);
                let lambda = DISCOUNT * s.distinct() / s.total;
                num / s.total + lambda * self.prob_at_level(level - 1, ctx, next)
            }
            _ => self.prob_at_level(level - 1, ctx, next),
        }
    }

    /// Total log-probability (natural log) of a string, including the
    /// end-of-string transition: `ln P(s) = Σ ln P(cₖ | history)`.
    pub fn log_prob(&self, s: &str) -> f64 {
        let padded = pad(s, self.order);
        let n = self.order;
        let mut total = 0.0;
        for i in (n - 1)..padded.len() {
            let p = self.prob_at_level(n - 1, &padded[i - (n - 1)..i], padded[i]);
            total += p.max(f64::MIN_POSITIVE).ln();
        }
        total
    }

    /// Log-probability divided by the number of scored transitions.
    pub fn log_prob_per_char(&self, s: &str) -> f64 {
        let transitions = s.chars().count() + 1; // + end marker
        self.log_prob(s) / transitions as f64
    }
}

/// Lower-cases implicitly assumed done by callers; maps out-of-alphabet
/// bytes to the catch-all.
fn canon(b: u8) -> u8 {
    match b {
        b'a'..=b'z' | b'0'..=b'9' | b'-' | b'.' | b'_' | PAD | END => b,
        b'A'..=b'Z' => b + 32,
        _ => UNK,
    }
}

/// `^^…^` padding + canonicalized bytes + `$`.
fn pad(s: &str, order: usize) -> Vec<u8> {
    let mut out = vec![PAD; order - 1];
    out.extend(s.bytes().map(canon));
    out.push(END);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_model() -> NgramModel {
        NgramModel::train(
            ["google.com", "goodreads.com", "goldman.com", "gopro.com"],
            3,
        )
    }

    #[test]
    fn probabilities_are_valid() {
        let m = tiny_model();
        for ctx in [&b"go"[..], &b"og"[..], &b"zz"[..], &b""[..]] {
            for next in [b'o', b'g', b'.', b'z', b'q', END] {
                let p = m.prob(ctx, next);
                assert!(p > 0.0 && p <= 1.0, "P({next}|{ctx:?}) = {p}");
            }
        }
    }

    #[test]
    fn distribution_sums_to_one() {
        // Over the full alphabet, probabilities given a context must sum
        // to ~1 (the uniform base covers exactly the canonical alphabet).
        let m = tiny_model();
        let alphabet: Vec<u8> = (b'a'..=b'z')
            .chain(b'0'..=b'9')
            .chain([b'-', b'.', b'_', END, UNK])
            .collect();
        assert_eq!(alphabet.len() as f64, ALPHABET);
        for ctx in [&b"go"[..], &b"om"[..], &b"qq"[..]] {
            let sum: f64 = alphabet.iter().map(|&c| m.prob(ctx, c)).sum();
            assert!((sum - 1.0).abs() < 1e-9, "sum for {ctx:?} = {sum}");
        }
    }

    #[test]
    fn seen_transitions_more_likely() {
        let m = tiny_model();
        // "go" -> 'o' appears in every training string.
        assert!(m.prob(b"go", b'o') > m.prob(b"go", b'z'));
    }

    #[test]
    fn log_prob_orders_familiar_over_random() {
        let m = NgramModel::train(crate::corpus::training_corpus(), 3);
        assert!(m.log_prob("facebook.com") > m.log_prob("xkqjzvwpqy.com"));
        assert!(m.log_prob("microsoft.com") > m.log_prob("a1b2c3d4e5f6.com"));
    }

    #[test]
    fn log_prob_is_finite_for_any_input() {
        let m = tiny_model();
        for s in ["", "a", "!!!###", "ΩΩΩ", &"x".repeat(500)] {
            assert!(m.log_prob(s).is_finite(), "log_prob({s:?})");
        }
    }

    #[test]
    fn unknown_chars_canonicalized() {
        let m = tiny_model();
        // Characters outside the alphabet map to the same catch-all.
        assert_eq!(m.log_prob("go!gle.com"), m.log_prob("go*gle.com"));
    }

    #[test]
    fn order_one_model_works() {
        let m = NgramModel::train(["aaa", "aab"], 1);
        assert_eq!(m.order(), 1);
        assert!(m.prob(b"", b'a') > m.prob(b"", b'z'));
        assert!(m.log_prob("aaa").is_finite());
    }

    #[test]
    #[should_panic]
    fn order_zero_panics() {
        NgramModel::train(["x"], 0);
    }

    #[test]
    fn empty_corpus_falls_back_to_uniform() {
        let m = NgramModel::train(Vec::<String>::new(), 3);
        assert_eq!(m.trained_on(), 0);
        let p = m.prob(b"ab", b'c');
        assert!((p - 1.0 / ALPHABET).abs() < 1e-12);
    }

    #[test]
    fn longer_context_is_truncated_not_rejected() {
        let m = tiny_model();
        let short = m.prob(b"le", b'.');
        let long = m.prob(b"veryverylongcontextle", b'.');
        assert_eq!(short, long);
    }

    #[test]
    fn per_char_normalization() {
        let m = tiny_model();
        let s = "google.com";
        let expected = m.log_prob(s) / (s.len() + 1) as f64;
        assert!((m.log_prob_per_char(s) - expected).abs() < 1e-12);
    }
}
