//! Model tests over the resilience state machines: an exhaustive
//! interleaving explorer in the style of `loom`, plus real-thread smoke
//! tests that give ThreadSanitizer a concurrent workload.
//!
//! `CircuitBreaker` and `AdmissionController` are `&mut self` state
//! machines — callers serialize access (a mutex, or per-shard ownership
//! with a post-join merge). What concurrency can still vary is the
//! *order* in which two callers' operations reach the machine. The
//! explorer therefore enumerates **every** merge order of two operation
//! scripts (every path through the interleaving lattice — `C(m+n, m)`
//! orders, 924 for two six-op scripts), replays each against a fresh
//! breaker on a shared manual clock, and checks after every single step:
//!
//! 1. Only legal transitions occur: Closed→Open, Open→HalfOpen,
//!    HalfOpen→Open, HalfOpen→Closed.
//! 2. Conservation: every `allow()` is counted exactly once as admitted
//!    or rejected; every recorded outcome exactly once as a success or
//!    failure.
//! 3. The half-open probe count never exceeds the per-period budget
//!    times the number of half-open entries.
//! 4. An Open breaker under an unexpired cooldown admits nothing.
//!
//! The admission model runs every pressure script over a small alphabet
//! through the controller and pins the hysteresis band: inside
//! `[degrade_exit, degrade_enter)` the level is sticky, at or above
//! `reject_enter` (or exhausted) rejection is unconditional, and the
//! stats ledger conserves decisions.

use std::sync::{Arc, Mutex};

use baywatch_obs::{Clock, ManualClock};
use baywatch_resilience::{
    AdmissionConfig, AdmissionController, AdmissionDecision, BreakerConfig, BreakerState,
    CircuitBreaker,
};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Op {
    Allow,
    Success,
    Failure,
    Advance(u64),
}

fn model_config() -> BreakerConfig {
    BreakerConfig {
        // Two consecutive failures trip; the rate trigger is disabled so
        // the model's legal-transition oracle stays simple.
        failure_threshold: 2,
        failure_rate: 0.0,
        min_samples: 0,
        success_threshold: 2,
        half_open_requests: 2,
        cooldown_nanos: 100,
    }
}

/// Which transition kinds a replay exercised, for lattice-wide coverage
/// accounting: [Closed→Open, Open→HalfOpen, HalfOpen→Open,
/// HalfOpen→Closed].
type TransitionCoverage = [bool; 4];

/// Replays one merged schedule against a fresh breaker, checking the
/// step invariants, and returns the final state plus the transition
/// kinds seen, for coverage counting.
fn replay(schedule: &[Op]) -> (BreakerState, TransitionCoverage) {
    let clock = Arc::new(ManualClock::new());
    let mut breaker = CircuitBreaker::new(model_config(), Arc::clone(&clock) as _);
    let budget = breaker.config().probe_budget() as u64;

    let mut allows = 0u64;
    let mut outcomes = 0u64;
    let mut half_open_entries = 0u64;
    let mut coverage = [false; 4];
    let mut prev = breaker.state();
    for (step, op) in schedule.iter().enumerate() {
        match op {
            Op::Allow => {
                let before = breaker.state();
                let cooling = before == BreakerState::Open
                    && clock.now_nanos() < breaker.config().cooldown_nanos;
                let admitted = breaker.allow();
                allows += 1;
                if cooling {
                    assert!(
                        !admitted,
                        "step {step}: Open breaker admitted before its cooldown expired"
                    );
                }
            }
            Op::Success => {
                breaker.record_success();
                outcomes += 1;
            }
            Op::Failure => {
                breaker.record_failure();
                outcomes += 1;
            }
            Op::Advance(nanos) => clock.advance(*nanos),
        }

        let state = breaker.state();
        if state != prev {
            let kind = match (prev, state) {
                (BreakerState::Closed, BreakerState::Open) => 0,
                (BreakerState::Open, BreakerState::HalfOpen) => 1,
                (BreakerState::HalfOpen, BreakerState::Open) => 2,
                (BreakerState::HalfOpen, BreakerState::Closed) => 3,
                _ => panic!("step {step}: illegal transition {prev:?} -> {state:?}"),
            };
            coverage[kind] = true;
            if state == BreakerState::HalfOpen {
                half_open_entries += 1;
            }
            prev = state;
        }

        let stats = breaker.stats();
        assert_eq!(
            stats.admitted + stats.rejected,
            allows,
            "step {step}: every allow() must land in admitted or rejected exactly once"
        );
        assert_eq!(
            stats.successes + stats.failures,
            outcomes,
            "step {step}: every recorded outcome must land in successes or failures"
        );
        assert!(
            stats.probes <= budget * half_open_entries,
            "step {step}: {} probes exceed {budget} per half-open period × {half_open_entries}",
            stats.probes
        );
    }

    // The transition log and the observed state history must agree.
    let logged = breaker.take_transitions();
    for t in &logged {
        assert_ne!(t.from, t.to, "degenerate transition logged");
    }
    assert_eq!(
        logged.last().map(|t| t.to).unwrap_or(BreakerState::Closed),
        breaker.state(),
        "transition log must end at the final state"
    );
    (breaker.state(), coverage)
}

/// Lattice-wide tallies accumulated across every replayed schedule.
#[derive(Default)]
struct Tally {
    /// Replays ending Closed / Open / HalfOpen.
    seen: [u64; 3],
    covered: TransitionCoverage,
    count: u64,
}

/// Depth-first enumeration of every merge order of `a` and `b`.
fn explore(a: &[Op], b: &[Op], ai: usize, bi: usize, schedule: &mut Vec<Op>, tally: &mut Tally) {
    if ai == a.len() && bi == b.len() {
        let (final_state, coverage) = replay(schedule);
        tally.seen[match final_state {
            BreakerState::Closed => 0,
            BreakerState::Open => 1,
            BreakerState::HalfOpen => 2,
        }] += 1;
        for (slot, hit) in tally.covered.iter_mut().zip(coverage) {
            *slot |= hit;
        }
        tally.count += 1;
        return;
    }
    if ai < a.len() {
        schedule.push(a[ai]);
        explore(a, b, ai + 1, bi, schedule, tally);
        schedule.pop();
    }
    if bi < b.len() {
        schedule.push(b[bi]);
        explore(a, b, ai, bi + 1, schedule, tally);
        schedule.pop();
    }
}

#[test]
fn breaker_invariants_hold_under_every_interleaving_of_two_scripts() {
    // Script A drives recovery: trip, cool down, probe successfully.
    let a = [
        Op::Failure,
        Op::Failure,
        Op::Advance(100),
        Op::Allow,
        Op::Success,
        Op::Success,
    ];
    // Script B drives churn: admissions and a probe failure re-tripping
    // the breaker, plus its own cooldown expiry.
    let b = [
        Op::Allow,
        Op::Failure,
        Op::Allow,
        Op::Advance(100),
        Op::Allow,
        Op::Failure,
    ];
    let mut schedule = Vec::with_capacity(a.len() + b.len());
    let mut tally = Tally::default();
    explore(&a, &b, 0, 0, &mut schedule, &mut tally);
    assert_eq!(
        tally.count, 924,
        "C(12, 6) merge orders of two six-op scripts"
    );
    // Coverage: the lattice must actually exercise the whole state
    // machine — every legal transition kind somewhere, and more than one
    // terminal state — or the invariants above checked nothing.
    assert!(
        tally.covered.iter().all(|&c| c),
        "all four legal transition kinds must occur across the lattice, got {:?}",
        tally.covered
    );
    assert!(
        tally.seen.iter().filter(|&&n| n > 0).count() >= 2,
        "the final state must depend on the schedule, got {:?}",
        tally.seen
    );
}

#[test]
fn admission_hysteresis_holds_for_every_pressure_script() {
    // (pressure, exhausted) alphabet spanning all bands of the default
    // config: calm, inside the hysteresis band, degraded, rejecting, and
    // budget exhaustion at low pressure.
    let alphabet: [(f64, bool); 5] = [
        (0.2, false),
        (0.7, false),
        (0.9, false),
        (1.0, false),
        (0.3, true),
    ];
    let config = AdmissionConfig::default();
    let len = 5usize;
    let scripts = alphabet.len().pow(len as u32);
    for script_id in 0..scripts {
        let mut controller = AdmissionController::new(config);
        let mut id = script_id;
        let mut decisions = 0u64;
        let mut prev = AdmissionDecision::Accept;
        for step in 0..len {
            let (pressure, exhausted) = alphabet[id % alphabet.len()];
            id /= alphabet.len();
            let decision = controller.decide(pressure, exhausted);
            decisions += 1;

            if exhausted || pressure >= config.reject_enter {
                assert_eq!(
                    decision,
                    AdmissionDecision::Reject,
                    "script {script_id} step {step}: exhaustion/overload must reject"
                );
            }
            // Hysteresis: inside [degrade_exit, degrade_enter) the level
            // is sticky — an elevated controller must not relax there.
            if !exhausted
                && pressure >= config.degrade_exit
                && pressure < config.degrade_enter
                && prev != AdmissionDecision::Accept
            {
                assert_ne!(
                    decision,
                    AdmissionDecision::Accept,
                    "script {script_id} step {step}: relaxed inside the hysteresis band"
                );
            }
            // Below every band a non-rejecting controller runs normally.
            if !exhausted && pressure < config.degrade_exit && prev != AdmissionDecision::Reject {
                assert_eq!(decision, AdmissionDecision::Accept);
            }
            prev = decision;
        }
        let stats = controller.stats();
        assert_eq!(
            stats.accepted + stats.degraded + stats.rejected,
            decisions,
            "script {script_id}: decision ledger must conserve"
        );
        assert_eq!(
            stats.transitions,
            controller.changes().len() as u64,
            "script {script_id}: transition count must match the change log"
        );
    }
}

/// Real threads hammering a mutex-shared breaker while another thread
/// advances the shared manual clock: the serialization contract under
/// which the breaker is actually deployed. Runs under ThreadSanitizer in
/// the nightly CI job; the conservation check catches lost updates.
#[test]
fn breaker_conservation_survives_real_threads() {
    const THREADS: u64 = 4;
    const OPS: u64 = 200;
    let clock = Arc::new(ManualClock::new());
    let breaker = Arc::new(Mutex::new(CircuitBreaker::new(
        model_config(),
        Arc::clone(&clock) as _,
    )));

    let workers: Vec<_> = (0..THREADS)
        .map(|t| {
            let breaker = Arc::clone(&breaker);
            let clock = Arc::clone(&clock);
            std::thread::spawn(move || {
                for i in 0..OPS {
                    let mut b = breaker.lock().expect("breaker lock");
                    if b.allow() {
                        // Mixed outcomes, deterministic per (thread, i).
                        if (t + i) % 3 == 0 {
                            b.record_failure();
                        } else {
                            b.record_success();
                        }
                    }
                    drop(b);
                    if i % 50 == 0 {
                        clock.advance(60);
                    }
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("worker join");
    }

    let b = breaker.lock().expect("final lock");
    let stats = b.stats();
    assert_eq!(stats.admitted + stats.rejected, THREADS * OPS);
    assert_eq!(stats.successes + stats.failures, stats.admitted);
}

/// The same contract for the admission controller: decisions from many
/// threads through a mutex conserve exactly.
#[test]
fn admission_conservation_survives_real_threads() {
    const THREADS: u64 = 4;
    const OPS: u64 = 250;
    let controller = Arc::new(Mutex::new(AdmissionController::new(
        AdmissionConfig::default(),
    )));

    let workers: Vec<_> = (0..THREADS)
        .map(|t| {
            let controller = Arc::clone(&controller);
            std::thread::spawn(move || {
                for i in 0..OPS {
                    // Sweep pressure deterministically through every band.
                    let pressure = ((t * OPS + i) % 11) as f64 / 10.0;
                    let mut c = controller.lock().expect("controller lock");
                    c.decide(pressure, i % 97 == 0);
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("worker join");
    }

    let stats = controller.lock().expect("final lock").stats();
    assert_eq!(
        stats.accepted + stats.degraded + stats.rejected,
        THREADS * OPS
    );
}
