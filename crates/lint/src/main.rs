//! CLI driver for `baywatch-lint`.
//!
//! ```text
//! cargo run -p baywatch-lint [--] [OPTIONS]
//!
//!   --root <DIR>        workspace root (default: .)
//!   --config <FILE>     allowlist/policies (default: <root>/lint.toml)
//!   --baseline <FILE>   ratchet baseline (default: <root>/lint-baseline.json)
//!   --manifest <FILE>   metrics manifest (default: <root>/METRICS.md)
//!   --json              machine-readable output instead of the table
//!   --verbose           include baselined and allowlisted findings
//!   --update-baseline   rewrite the baseline to the current findings
//!   --fix               apply mechanical fixes (L1/L5), then re-lint
//!   --no-cache          disable the incremental cache for this run
//!   --stats             print cache hit/miss counts to stderr
//! ```
//!
//! Exit codes: 0 clean (no new findings), 1 new findings, 2 usage or
//! configuration error. With `--fix`, the exit code reflects the tree
//! *after* fixes were applied.

#![warn(clippy::unwrap_used)]

use std::path::PathBuf;
use std::process::ExitCode;

use baywatch_lint::{apply_fixes, baseline, report, run, LintOptions};

struct Args {
    opts: LintOptions,
    json: bool,
    verbose: bool,
    update_baseline: bool,
    fix: bool,
    no_cache: bool,
    stats: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        opts: LintOptions::default(),
        json: false,
        verbose: false,
        update_baseline: false,
        fix: false,
        no_cache: false,
        stats: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut path_arg = |name: &str| {
            it.next()
                .map(PathBuf::from)
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--root" => args.opts.root = path_arg("--root")?,
            "--config" => args.opts.config_path = Some(path_arg("--config")?),
            "--baseline" => args.opts.baseline_path = Some(path_arg("--baseline")?),
            "--manifest" => args.opts.manifest_path = Some(path_arg("--manifest")?),
            "--json" => args.json = true,
            "--verbose" => args.verbose = true,
            "--update-baseline" => args.update_baseline = true,
            "--fix" => args.fix = true,
            "--no-cache" => args.no_cache = true,
            "--stats" => args.stats = true,
            "--help" | "-h" => {
                println!(
                    "baywatch-lint: workspace invariant linter (L1 float ordering, \
                     L2 determinism, L3 budget checkpoints, L4 panic hygiene, \
                     L5 atomic-ordering policy, L6 metric registry, L7 ledger arithmetic)\n\n\
                     Options:\n  --root <DIR>  --config <FILE>  --baseline <FILE>  \
                     --manifest <FILE>\n  --json  --verbose  --update-baseline  --fix  \
                     --no-cache  --stats"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    // `--fix` rewrites files, so a cached answer keyed on the old bytes
    // must never be consulted or written.
    if !args.no_cache && !args.fix {
        let root = if args.opts.root.as_os_str().is_empty() {
            PathBuf::from(".")
        } else {
            args.opts.root.clone()
        };
        args.opts.cache_path = Some(root.join("target").join("lint-cache.tsv"));
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("baywatch-lint: {msg}");
            return ExitCode::from(2);
        }
    };
    let mut outcome = match run(&args.opts) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("baywatch-lint: {e}");
            return ExitCode::from(2);
        }
    };
    if args.stats {
        eprintln!(
            "cache: {} hit{}, {} miss{}",
            outcome.cache_hits,
            if outcome.cache_hits == 1 { "" } else { "s" },
            outcome.cache_misses,
            if outcome.cache_misses == 1 { "" } else { "es" },
        );
    }

    if args.fix {
        match apply_fixes(&args.opts, &outcome) {
            Ok((fixed, refreshed)) => {
                eprintln!("applied {fixed} fix{}", if fixed == 1 { "" } else { "es" });
                outcome = refreshed;
            }
            Err(e) => {
                eprintln!("baywatch-lint: {e}");
                return ExitCode::from(2);
            }
        }
    }

    if args.update_baseline {
        // The baseline covers findings that are neither fixed nor
        // allowlisted: exactly the new + already-baselined sets.
        let mut all = outcome.new.clone();
        all.extend(outcome.baselined.iter().cloned());
        let path = args
            .opts
            .baseline_path
            .clone()
            .unwrap_or_else(|| args.opts.root.join("lint-baseline.json"));
        if let Err(e) = std::fs::write(&path, baseline::to_json(&all)) {
            eprintln!("baywatch-lint: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!(
            "baseline updated: {} entr{}",
            all.len(),
            if all.len() == 1 { "y" } else { "ies" }
        );
        return ExitCode::SUCCESS;
    }

    if args.json {
        print!("{}", report::render_json(&outcome));
    } else {
        print!("{}", report::render_table(&outcome, args.verbose));
    }
    if outcome.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
