//! Novelty analysis — change detection over reported cases (§V-B).
//!
//! Analysts should not re-investigate what they have already seen. The
//! novelty filter consolidates cases of the same source/destination pair
//! and forwards a case only when
//!
//! * its destination has never been reported before, or
//! * the source has never been reported as beaconing *to that
//!   destination*.
//!
//! Suppressed cases are still logged (kept available for review) but do not
//! enter the ranking stage again. The store persists across analysis runs
//! (daily operation), which is exactly what makes it a change detector.

use std::collections::{HashMap, HashSet};

use crate::pair::CommunicationPair;

/// The decision for one candidate case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Novelty {
    /// Destination never reported before.
    NewDestination,
    /// Destination known, but this source is new for it.
    NewSourceForDestination,
    /// Pair already reported — suppress from ranking.
    Duplicate,
}

impl Novelty {
    /// Whether the case should be forwarded to ranking.
    pub fn is_novel(&self) -> bool {
        !matches!(self, Novelty::Duplicate)
    }
}

/// Persistent memory of reported cases.
#[derive(Debug, Clone, Default)]
pub struct NoveltyStore {
    /// destination → sources already reported for it.
    reported: HashMap<String, HashSet<String>>,
    suppressed_log: Vec<CommunicationPair>,
}

impl NoveltyStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Classifies a pair *and records it* (the filter runs exactly once per
    /// candidate case per run).
    pub fn observe(&mut self, pair: &CommunicationPair) -> Novelty {
        use std::collections::hash_map::Entry;
        match self.reported.entry(pair.destination.clone()) {
            Entry::Vacant(e) => {
                e.insert(HashSet::from([pair.source.clone()]));
                Novelty::NewDestination
            }
            Entry::Occupied(mut e) => {
                if e.get_mut().insert(pair.source.clone()) {
                    Novelty::NewSourceForDestination
                } else {
                    self.suppressed_log.push(pair.clone());
                    Novelty::Duplicate
                }
            }
        }
    }

    /// Whether a destination has been reported before (read-only).
    pub fn destination_known(&self, destination: &str) -> bool {
        self.reported.contains_key(destination)
    }

    /// Number of distinct destinations ever reported.
    pub fn known_destinations(&self) -> usize {
        self.reported.len()
    }

    /// Cases suppressed as duplicates (kept for analyst review, per the
    /// paper: "the candidate is still logged and reported").
    pub fn suppressed(&self) -> &[CommunicationPair] {
        &self.suppressed_log
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(s: &str, d: &str) -> CommunicationPair {
        CommunicationPair::new(s, d)
    }

    #[test]
    fn first_sighting_is_new_destination() {
        let mut store = NoveltyStore::new();
        assert_eq!(store.observe(&pair("a", "x.com")), Novelty::NewDestination);
        assert!(store.destination_known("x.com"));
        assert_eq!(store.known_destinations(), 1);
    }

    #[test]
    fn new_source_same_destination() {
        let mut store = NoveltyStore::new();
        store.observe(&pair("a", "x.com"));
        assert_eq!(
            store.observe(&pair("b", "x.com")),
            Novelty::NewSourceForDestination
        );
    }

    #[test]
    fn exact_duplicate_suppressed_and_logged() {
        let mut store = NoveltyStore::new();
        store.observe(&pair("a", "x.com"));
        let second = store.observe(&pair("a", "x.com"));
        assert_eq!(second, Novelty::Duplicate);
        assert!(!second.is_novel());
        assert_eq!(store.suppressed(), &[pair("a", "x.com")]);
    }

    #[test]
    fn persists_across_runs() {
        let mut store = NoveltyStore::new();
        // Run 1.
        store.observe(&pair("a", "x.com"));
        // Run 2 (same store): the pair is a duplicate, a new pair is not.
        assert_eq!(store.observe(&pair("a", "x.com")), Novelty::Duplicate);
        assert_eq!(store.observe(&pair("a", "y.com")), Novelty::NewDestination);
    }

    #[test]
    fn novelty_is_novel_semantics() {
        assert!(Novelty::NewDestination.is_novel());
        assert!(Novelty::NewSourceForDestination.is_novel());
        assert!(!Novelty::Duplicate.is_novel());
    }
}
