//! The enterprise web-proxy simulator.
//!
//! Generates per-day proxy events for a population of hosts:
//!
//! * every host browses popular destinations (Zipf-weighted) during working
//!   hours — heavier on weekdays than weekends, which reproduces the
//!   paper's observed weekday/weekend pair-count swing (26 M vs 3.3 M,
//!   §VIII-B2),
//! * hosts subscribe to legitimate periodic services (update/AV/mail/news
//!   pollers — the Challenge-4 lookalikes),
//! * a configurable fraction of hosts is infected: malware campaigns group
//!   several hosts beaconing to the same DGA destination, as in the paper's
//!   Table V where up to 19–20 clients share one C&C domain.
//!
//! All randomness is seeded; the same configuration always yields the same
//! trace and ground truth.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use baywatch_langmodel::corpus;
use rand::prelude::*;
use rand::rngs::StdRng;

use crate::benign::{BrowsingModel, PeriodicService};
use crate::malware::MalwareProfile;
use crate::rngutil::Zipf;
use crate::types::{GroundTruth, HostId, ProxyEvent};

/// Seconds per day.
pub const DAY_SECONDS: u64 = 86_400;

/// Simulator configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct EnterpriseConfig {
    /// Number of monitored hosts.
    pub hosts: usize,
    /// Number of simulated days.
    pub days: usize,
    /// Epoch timestamp of day 0 (assumed midnight; day 0 is a Monday).
    pub start_epoch: u64,
    /// Size of the popular-domain catalog hosts browse.
    pub popular_domains: usize,
    /// Zipf exponent of destination popularity.
    pub zipf_exponent: f64,
    /// Human browsing model.
    pub browsing: BrowsingModel,
    /// Probability that a host subscribes to each always-on catalog
    /// service.
    pub common_service_prob: f64,
    /// Probability that a host subscribes to each office-hours (niche)
    /// catalog service.
    pub niche_service_prob: f64,
    /// Fraction of hosts infected with malware.
    pub infection_rate: f64,
    /// Fraction of weekday activity present on weekends.
    pub weekend_activity: f64,
    /// Master seed.
    pub seed: u64,
}

impl Default for EnterpriseConfig {
    fn default() -> Self {
        Self {
            hosts: 200,
            days: 7,
            start_epoch: 1_420_070_400, // 2015-01-01-ish; day alignment is what matters
            popular_domains: 300,
            zipf_exponent: 1.1,
            browsing: BrowsingModel::default(),
            common_service_prob: 0.8,
            niche_service_prob: 0.05,
            infection_rate: 0.05,
            weekend_activity: 0.12,
            seed: 0xE17E4,
        }
    }
}

/// One simulated malware campaign: a set of hosts beaconing to one
/// destination.
#[derive(Debug, Clone)]
pub struct Campaign {
    /// The malware family behaviour.
    pub profile: MalwareProfile,
    /// The C&C destination domain.
    pub domain: String,
    /// Infected hosts.
    pub hosts: Vec<HostId>,
    /// First day (index) the campaign is active.
    pub start_day: usize,
}

/// A generated trace: the event stream plus ground truth.
#[derive(Debug, Clone)]
pub struct Trace {
    /// All events, sorted by timestamp.
    pub events: Vec<ProxyEvent>,
    /// Ground truth for evaluation.
    pub ground_truth: GroundTruth,
    /// The campaigns that were injected.
    pub campaigns: Vec<Campaign>,
}

/// The enterprise simulator.
#[derive(Debug, Clone)]
pub struct EnterpriseSimulator {
    config: EnterpriseConfig,
    catalog: Vec<String>,
    zipf: Zipf,
    services: Vec<PeriodicService>,
    /// `subscriptions[h]` = indices into `services` host `h` runs.
    subscriptions: Vec<Vec<usize>>,
    campaigns: Vec<Campaign>,
}

const URL_TOKENS: &[&str] = &[
    "index", "search", "images", "news", "watch", "login", "api", "static", "cart", "profile",
];

impl EnterpriseSimulator {
    /// Builds the simulator: draws the domain catalog, subscribes hosts to
    /// services, and plans malware campaigns.
    ///
    /// # Panics
    ///
    /// Panics if `hosts == 0`, `days == 0` or probabilities are out of
    /// range.
    pub fn new(config: EnterpriseConfig) -> Self {
        assert!(config.hosts > 0, "hosts must be positive");
        assert!(config.days > 0, "days must be positive");
        assert!((0.0..=1.0).contains(&config.infection_rate));
        assert!((0.0..=1.0).contains(&config.common_service_prob));
        assert!((0.0..=1.0).contains(&config.niche_service_prob));
        assert!((0.0..=1.0).contains(&config.weekend_activity));

        let mut rng = StdRng::seed_from_u64(config.seed);

        // Popular-domain catalog: real seeds first (most popular), then
        // synthetic expansion.
        let mut catalog: Vec<String> = corpus::seed_domains()
            .into_iter()
            .map(str::to_owned)
            .collect();
        catalog.extend(corpus::synthetic_domains(config.popular_domains));
        catalog.truncate(config.popular_domains.max(10));
        let zipf = Zipf::new(catalog.len(), config.zipf_exponent);

        // Service subscriptions.
        let services = PeriodicService::catalog();
        let mut subscriptions = Vec::with_capacity(config.hosts);
        for _ in 0..config.hosts {
            let mut subs = Vec::new();
            for (i, svc) in services.iter().enumerate() {
                let p = if svc.always_on {
                    config.common_service_prob
                } else {
                    config.niche_service_prob
                };
                if rng.random_range(0.0..1.0) < p {
                    subs.push(i);
                }
            }
            subscriptions.push(subs);
        }

        // Malware campaigns.
        let infected =
            ((config.hosts as f64 * config.infection_rate).round() as usize).min(config.hosts);
        let mut host_pool: Vec<u32> = (0..config.hosts as u32).collect();
        host_pool.shuffle(&mut rng);
        let roster: [MalwareProfile; 6] = [
            MalwareProfile::Zeus { period: 180.0 },
            MalwareProfile::Zeus { period: 63.0 },
            MalwareProfile::ZeroAccess { period: 929.0 },
            MalwareProfile::Tdss,
            MalwareProfile::Conficker,
            MalwareProfile::LowAndSlow { period: 7200.0 },
        ];
        let mut campaigns = Vec::new();
        let mut assigned = 0usize;
        let mut c = 0usize;
        while assigned < infected {
            let profile = roster[c % roster.len()];
            // Campaign size 1..=5 hosts (Table V shows 1–19 clients; small
            // populations keep most campaigns small).
            let size = rng.random_range(1..=5usize).min(infected - assigned);
            let hosts: Vec<HostId> = host_pool[assigned..assigned + size]
                .iter()
                .map(|&h| HostId(h))
                .collect();
            let domain = profile.domain(config.seed ^ (c as u64) << 17);
            let start_day = if config.days > 1 {
                rng.random_range(0..config.days.div_ceil(2))
            } else {
                0
            };
            campaigns.push(Campaign {
                profile,
                domain,
                hosts,
                start_day,
            });
            assigned += size;
            c += 1;
        }

        Self {
            config,
            catalog,
            zipf,
            services,
            subscriptions,
            campaigns,
        }
    }

    /// The simulator configuration.
    pub fn config(&self) -> &EnterpriseConfig {
        &self.config
    }

    /// The planned campaigns (ground truth for tests).
    pub fn campaigns(&self) -> &[Campaign] {
        &self.campaigns
    }

    /// The popular-domain catalog.
    pub fn catalog(&self) -> &[String] {
        &self.catalog
    }

    /// Whether day index `d` is a weekend (day 0 is a Monday).
    pub fn is_weekend(&self, day: usize) -> bool {
        matches!(day % 7, 5 | 6)
    }

    /// Generates the events of one day, sorted by timestamp.
    pub fn generate_day(&self, day: usize) -> Vec<ProxyEvent> {
        assert!(day < self.config.days, "day out of range");
        let day_start = self.config.start_epoch + day as u64 * DAY_SECONDS;
        let weekend = self.is_weekend(day);
        let mut events = Vec::new();

        for h in 0..self.config.hosts {
            let host = HostId(h as u32);
            // Weekends: only a fraction of hosts are present at all.
            let presence_hash = stable_hash((self.config.seed, h, day, "presence"));
            if weekend && (presence_hash % 10_000) as f64 / 10_000.0 >= self.config.weekend_activity
            {
                continue;
            }
            let mut rng = StdRng::seed_from_u64(stable_hash((self.config.seed, h, day, "rng")));
            let source_ip = self.ip_of(host, day);
            let (active_start, active_end) = if weekend {
                (10 * 3600, 16 * 3600)
            } else {
                (8 * 3600, 18 * 3600)
            };

            // Browsing.
            for t in
                self.config
                    .browsing
                    .day_schedule(day_start, active_start, active_end, &mut rng)
            {
                let domain = self.catalog[self.zipf.sample(&mut rng)].clone();
                let token = URL_TOKENS[rng.random_range(0..URL_TOKENS.len())];
                events.push(ProxyEvent {
                    timestamp: t,
                    host,
                    source_ip,
                    domain,
                    url_path: token.to_owned(),
                });
            }

            // Periodic services.
            for &svc_idx in &self.subscriptions[h] {
                let svc = &self.services[svc_idx];
                for t in svc.day_schedule(day_start, active_start, active_end, &mut rng) {
                    events.push(ProxyEvent {
                        timestamp: t,
                        host,
                        source_ip,
                        domain: svc.domain.clone(),
                        url_path: svc.url_token.clone(),
                    });
                }
            }
        }

        // Malware beacons: run around the clock regardless of presence
        // (infected machines are typically left powered on).
        for (ci, campaign) in self.campaigns.iter().enumerate() {
            if day < campaign.start_day {
                continue;
            }
            for (hi, &host) in campaign.hosts.iter().enumerate() {
                let seed = stable_hash((self.config.seed, ci, hi, day, "malware"));
                let schedule = campaign.profile.schedule(day_start, DAY_SECONDS, seed);
                let source_ip = self.ip_of(host, day);
                let mut rng = StdRng::seed_from_u64(seed ^ 0xFACE);
                for t in schedule {
                    // C&C check-ins typically hit a short random path.
                    let token = format!("{:06x}", rng.random_range(0..0xFFFFFFu32));
                    events.push(ProxyEvent {
                        timestamp: t,
                        host,
                        source_ip,
                        domain: campaign.domain.clone(),
                        url_path: token,
                    });
                }
            }
        }

        events.sort_by_key(|e| e.timestamp);
        events
    }

    /// Generates the full trace across all configured days.
    pub fn generate(&mut self) -> Trace {
        let mut events = Vec::new();
        for d in 0..self.config.days {
            events.extend(self.generate_day(d));
        }
        Trace {
            events,
            ground_truth: self.ground_truth(),
            campaigns: self.campaigns.clone(),
        }
    }

    /// The ground truth implied by the planned campaigns and service
    /// catalog.
    pub fn ground_truth(&self) -> GroundTruth {
        let mut gt = GroundTruth::default();
        for c in &self.campaigns {
            gt.malicious_domains.insert(c.domain.clone());
            for &h in &c.hosts {
                gt.infections.entry(h).or_default().push(c.domain.clone());
            }
        }
        for svc in &self.services {
            gt.benign_periodic_domains.insert(svc.domain.clone());
        }
        gt
    }

    /// The (churning) IP a host uses on a given day.
    fn ip_of(&self, host: HostId, day: usize) -> u32 {
        // 10.x.y.z with daily churn.
        let h = stable_hash((self.config.seed, host.0, day / 3, "dhcp"));
        0x0A00_0000 | (h as u32 & 0x00FF_FFFF)
    }
}

fn stable_hash<T: Hash>(value: T) -> u64 {
    let mut h = DefaultHasher::new();
    value.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_sim() -> EnterpriseSimulator {
        EnterpriseSimulator::new(EnterpriseConfig {
            hosts: 60,
            days: 7,
            popular_domains: 100,
            ..Default::default()
        })
    }

    #[test]
    fn deterministic_trace() {
        let a = small_sim().generate();
        let b = small_sim().generate();
        assert_eq!(a.events.len(), b.events.len());
        assert_eq!(a.events.first(), b.events.first());
        assert_eq!(a.events.last(), b.events.last());
    }

    #[test]
    fn events_sorted_within_day() {
        let sim = small_sim();
        let day = sim.generate_day(0);
        assert!(day.windows(2).all(|w| w[0].timestamp <= w[1].timestamp));
        assert!(!day.is_empty());
    }

    #[test]
    fn weekend_has_fewer_pairs_than_weekday() {
        let sim = small_sim();
        let count_pairs = |events: &[ProxyEvent]| {
            let mut pairs: Vec<(HostId, &str)> =
                events.iter().map(|e| (e.host, e.domain.as_str())).collect();
            pairs.sort();
            pairs.dedup();
            pairs.len()
        };
        let monday = sim.generate_day(0);
        let saturday = sim.generate_day(5);
        let weekday_pairs = count_pairs(&monday);
        let weekend_pairs = count_pairs(&saturday);
        assert!(
            (weekend_pairs as f64) < weekday_pairs as f64 * 0.5,
            "weekday {weekday_pairs} vs weekend {weekend_pairs}"
        );
    }

    #[test]
    fn infected_hosts_beacon_every_active_day() {
        let sim = small_sim();
        let campaign = &sim.campaigns()[0];
        let day = campaign.start_day;
        let events = sim.generate_day(day);
        let host = campaign.hosts[0];
        let beacons: Vec<&ProxyEvent> = events
            .iter()
            .filter(|e| e.host == host && e.domain == campaign.domain)
            .collect();
        assert!(
            beacons.len() >= 5,
            "campaign {:?} produced {} beacons",
            campaign.profile,
            beacons.len()
        );
    }

    #[test]
    fn campaign_inactive_before_start_day() {
        let sim = EnterpriseSimulator::new(EnterpriseConfig {
            hosts: 60,
            days: 6,
            ..Default::default()
        });
        if let Some(c) = sim.campaigns().iter().find(|c| c.start_day > 0) {
            let before = sim.generate_day(c.start_day - 1);
            assert!(before.iter().all(|e| e.domain != c.domain));
        }
    }

    #[test]
    fn ground_truth_consistent_with_campaigns() {
        let mut sim = small_sim();
        let trace = sim.generate();
        for c in &trace.campaigns {
            assert!(trace.ground_truth.is_malicious(&c.domain));
            for h in &c.hosts {
                assert!(trace.ground_truth.infections.contains_key(h));
            }
        }
        // ~5% of 60 hosts infected.
        let infected = trace.ground_truth.infected_host_count();
        assert!((2..=6).contains(&infected), "infected = {infected}");
    }

    #[test]
    fn ip_churns_but_host_is_stable() {
        let sim = small_sim();
        let h = HostId(3);
        let ip0 = sim.ip_of(h, 0);
        let ip9 = sim.ip_of(h, 9);
        assert_ne!(ip0, ip9, "DHCP churn expected across days");
        assert_eq!(sim.ip_of(h, 0), ip0, "same day, same IP");
        // 10.0.0.0/8 range.
        assert_eq!(ip0 >> 24, 10);
    }

    #[test]
    fn popular_domains_dominate_browsing() {
        let sim = small_sim();
        let events = sim.generate_day(1);
        let top_domain = sim.catalog()[0].as_str();
        let top_count = events.iter().filter(|e| e.domain == top_domain).count();
        let rare_domain = sim.catalog().last().unwrap().as_str();
        let rare_count = events.iter().filter(|e| e.domain == rare_domain).count();
        assert!(
            top_count > rare_count,
            "top {top_count} vs rare {rare_count}"
        );
    }

    #[test]
    #[should_panic]
    fn zero_hosts_panics() {
        EnterpriseSimulator::new(EnterpriseConfig {
            hosts: 0,
            ..Default::default()
        });
    }

    #[test]
    #[should_panic]
    fn day_out_of_range_panics() {
        small_sim().generate_day(100);
    }

    #[test]
    fn malicious_domains_look_dga() {
        let sim = small_sim();
        for c in sim.campaigns() {
            let name = c.domain.split('.').next().unwrap();
            assert!(name.len() >= 4, "{}", c.domain);
        }
    }
}
