//! The ratchet: known findings live in a committed baseline; only *new*
//! findings fail CI, and fixed findings are reported so the baseline can
//! shrink monotonically.
//!
//! A baseline entry identifies a finding by `(rule, path, snippet,
//! occurrence)` — never by line number, so unrelated edits above a known
//! finding cannot churn the file. `occurrence` disambiguates identical
//! snippets in one file (0-indexed, in file order).
//!
//! The file is a JSON array of flat string/number objects; the parser and
//! writer below cover exactly that grammar (the linter is dependency-free
//! by design).

use std::collections::BTreeMap;

use crate::rules::Finding;
use crate::LintError;

/// One baselined finding identity.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct BaselineEntry {
    pub rule: String,
    pub path: String,
    pub snippet: String,
    pub occurrence: u32,
}

/// The ratchet verdict for one run.
#[derive(Debug, Default)]
pub struct Ratchet {
    /// Findings absent from the baseline — these fail the build.
    pub new: Vec<Finding>,
    /// Findings covered by the baseline — tolerated, listed for shame.
    pub known: Vec<Finding>,
    /// Baseline entries with no matching finding — fixed! The baseline
    /// should be regenerated to drop them (`--update-baseline`).
    pub stale: Vec<BaselineEntry>,
}

/// Assigns each finding its `(rule, path, snippet)` occurrence index, in
/// the findings' existing (path-sorted, line-sorted) order.
fn keyed(findings: &[Finding]) -> Vec<(BaselineEntry, Finding)> {
    let mut seen: BTreeMap<(String, String, String), u32> = BTreeMap::new();
    findings
        .iter()
        .map(|f| {
            let k = (f.rule.to_string(), f.path.clone(), f.snippet.clone());
            let n = seen.entry(k).or_insert(0);
            let entry = BaselineEntry {
                rule: f.rule.to_string(),
                path: f.path.clone(),
                snippet: f.snippet.clone(),
                occurrence: *n,
            };
            *n += 1;
            (entry, f.clone())
        })
        .collect()
}

/// Splits findings into new vs. known and spots stale baseline entries.
pub fn ratchet(findings: &[Finding], baseline: &[BaselineEntry]) -> Ratchet {
    let mut out = Ratchet::default();
    let mut unseen: Vec<&BaselineEntry> = baseline.iter().collect();
    for (key, finding) in keyed(findings) {
        match unseen.iter().position(|b| **b == key) {
            Some(i) => {
                unseen.swap_remove(i);
                out.known.push(finding);
            }
            None => out.new.push(finding),
        }
    }
    out.stale = unseen.into_iter().cloned().collect();
    out.stale.sort();
    out
}

/// Serializes findings as a baseline JSON document (sorted, stable).
pub fn to_json(findings: &[Finding]) -> String {
    let mut entries: Vec<BaselineEntry> = keyed(findings).into_iter().map(|(e, _)| e).collect();
    entries.sort();
    let mut out = String::from("[");
    for (i, e) in entries.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str(&format!(
            "  {{\"rule\": {}, \"path\": {}, \"snippet\": {}, \"occurrence\": {}}}",
            json_string(&e.rule),
            json_string(&e.path),
            json_string(&e.snippet),
            e.occurrence
        ));
    }
    out.push_str(if entries.is_empty() { "]\n" } else { "\n]\n" });
    out
}

pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Parses a baseline document: a JSON array of flat objects with string
/// or unsigned-integer values. `origin` names the file in errors.
pub fn parse(text: &str, origin: &str) -> Result<Vec<BaselineEntry>, LintError> {
    let mut p = Parser {
        chars: text.chars().collect(),
        pos: 0,
        origin,
    };
    p.skip_ws();
    let entries = p.array()?;
    p.skip_ws();
    if p.pos != p.chars.len() {
        return Err(p.err("trailing content after the baseline array"));
    }
    Ok(entries)
}

struct Parser<'a> {
    chars: Vec<char>,
    pos: usize,
    origin: &'a str,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> LintError {
        LintError::Baseline(format!("{}: {msg} (at offset {})", self.origin, self.pos))
    }

    fn skip_ws(&mut self) {
        while self.chars.get(self.pos).is_some_and(|c| c.is_whitespace()) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, c: char) -> Result<(), LintError> {
        self.skip_ws();
        if self.chars.get(self.pos) == Some(&c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{c}`")))
        }
    }

    fn peek_is(&mut self, c: char) -> bool {
        self.skip_ws();
        self.chars.get(self.pos) == Some(&c)
    }

    fn array(&mut self) -> Result<Vec<BaselineEntry>, LintError> {
        self.eat('[')?;
        let mut out = Vec::new();
        if self.peek_is(']') {
            self.pos += 1;
            return Ok(out);
        }
        loop {
            out.push(self.object()?);
            self.skip_ws();
            match self.chars.get(self.pos) {
                Some(',') => self.pos += 1,
                Some(']') => {
                    self.pos += 1;
                    return Ok(out);
                }
                _ => return Err(self.err("expected `,` or `]` after an entry")),
            }
        }
    }

    fn object(&mut self) -> Result<BaselineEntry, LintError> {
        self.eat('{')?;
        let mut rule = None;
        let mut path = None;
        let mut snippet = None;
        let mut occurrence = None;
        if self.peek_is('}') {
            self.pos += 1;
        } else {
            loop {
                self.skip_ws();
                let key = self.string()?;
                self.eat(':')?;
                self.skip_ws();
                match key.as_str() {
                    "rule" => rule = Some(self.string()?),
                    "path" => path = Some(self.string()?),
                    "snippet" => snippet = Some(self.string()?),
                    "occurrence" => occurrence = Some(self.number()?),
                    other => return Err(self.err(&format!("unknown baseline key `{other}`"))),
                }
                self.skip_ws();
                match self.chars.get(self.pos) {
                    Some(',') => self.pos += 1,
                    Some('}') => {
                        self.pos += 1;
                        break;
                    }
                    _ => return Err(self.err("expected `,` or `}` in an entry")),
                }
            }
        }
        match (rule, path, snippet) {
            (Some(rule), Some(path), Some(snippet)) => Ok(BaselineEntry {
                rule,
                path,
                snippet,
                occurrence: occurrence.unwrap_or(0),
            }),
            _ => Err(self.err("baseline entry needs rule, path, and snippet")),
        }
    }

    fn string(&mut self) -> Result<String, LintError> {
        self.eat('"')?;
        let mut out = String::new();
        loop {
            let Some(&c) = self.chars.get(self.pos) else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match c {
                '"' => return Ok(out),
                '\\' => {
                    let Some(&e) = self.chars.get(self.pos) else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match e {
                        '"' => out.push('"'),
                        '\\' => out.push('\\'),
                        '/' => out.push('/'),
                        'n' => out.push('\n'),
                        't' => out.push('\t'),
                        'r' => out.push('\r'),
                        'u' => {
                            let mut v = 0u32;
                            for _ in 0..4 {
                                let Some(d) = self.chars.get(self.pos).and_then(|c| c.to_digit(16))
                                else {
                                    return Err(self.err("bad \\u escape"));
                                };
                                v = v * 16 + d;
                                self.pos += 1;
                            }
                            out.push(char::from_u32(v).unwrap_or('\u{FFFD}'));
                        }
                        other => return Err(self.err(&format!("bad escape `\\{other}`"))),
                    }
                }
                c => out.push(c),
            }
        }
    }

    fn number(&mut self) -> Result<u32, LintError> {
        self.skip_ws();
        let start = self.pos;
        while self.chars.get(self.pos).is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(self.err("expected a number"));
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        text.parse()
            .map_err(|_| self.err("occurrence does not fit in u32"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, path: &str, snippet: &str) -> Finding {
        Finding {
            rule,
            path: path.to_string(),
            line: 1,
            snippet: snippet.to_string(),
            message: String::new(),
            fix: None,
        }
    }

    #[test]
    fn round_trip_preserves_identity() {
        let findings = vec![
            finding("L4-panic", "src/a.rs", "x.unwrap();"),
            finding("L4-panic", "src/a.rs", "x.unwrap();"),
            finding("L1-float-ord", "src/b.rs", "a.partial_cmp(b).unwrap()"),
        ];
        let json = to_json(&findings);
        let parsed = parse(&json, "b.json").expect("round-trips");
        assert_eq!(parsed.len(), 3);
        let r = ratchet(&findings, &parsed);
        assert!(r.new.is_empty());
        assert_eq!(r.known.len(), 3);
        assert!(r.stale.is_empty());
    }

    #[test]
    fn new_findings_are_isolated_and_fixed_ones_go_stale() {
        let old = vec![
            finding("L4-panic", "src/a.rs", "x.unwrap();"),
            finding("L4-panic", "src/a.rs", "gone.unwrap();"),
        ];
        let baseline = parse(&to_json(&old), "b.json").expect("parses");
        let now = vec![
            finding("L4-panic", "src/a.rs", "x.unwrap();"),
            finding("L4-panic", "src/a.rs", "fresh.unwrap();"),
        ];
        let r = ratchet(&now, &baseline);
        assert_eq!(r.new.len(), 1);
        assert_eq!(r.new[0].snippet, "fresh.unwrap();");
        assert_eq!(r.known.len(), 1);
        assert_eq!(r.stale.len(), 1);
        assert_eq!(r.stale[0].snippet, "gone.unwrap();");
    }

    #[test]
    fn duplicate_snippets_ratchet_by_occurrence() {
        let one = vec![finding("L4-panic", "src/a.rs", "x.unwrap();")];
        let baseline = parse(&to_json(&one), "b.json").expect("parses");
        let two = vec![
            finding("L4-panic", "src/a.rs", "x.unwrap();"),
            finding("L4-panic", "src/a.rs", "x.unwrap();"),
        ];
        let r = ratchet(&two, &baseline);
        assert_eq!(r.known.len(), 1, "first occurrence is baselined");
        assert_eq!(r.new.len(), 1, "second occurrence is new");
    }

    #[test]
    fn empty_baseline_is_the_empty_array() {
        assert_eq!(to_json(&[]), "[]\n");
        assert!(parse("[]\n", "b.json").expect("parses").is_empty());
        assert!(parse("  [ ]  ", "b.json").expect("parses").is_empty());
    }

    #[test]
    fn malformed_documents_are_rejected() {
        for bad in [
            "",
            "{",
            "[{]",
            "[{\"rule\": \"x\"}]",
            "[{\"rule\": \"a\", \"path\": \"b\", \"snippet\": \"c\"}] trailing",
            "[{\"rule\": \"a\", \"path\": \"b\", \"snippet\": \"c\", \"nope\": 1}]",
            "[{\"rule\": 3, \"path\": \"b\", \"snippet\": \"c\"}]",
        ] {
            assert!(parse(bad, "b.json").is_err(), "{bad:?}");
        }
    }

    #[test]
    fn snippets_with_quotes_and_backslashes_round_trip() {
        let f = vec![finding(
            "L4-panic",
            "src/a.rs",
            r#"let s = re.find("a\\b\"c").unwrap();"#,
        )];
        let parsed = parse(&to_json(&f), "b.json").expect("round-trips");
        assert_eq!(parsed[0].snippet, r#"let s = re.find("a\\b\"c").unwrap();"#);
    }
}
