//! `baywatch-lint` — the workspace invariant linter.
//!
//! BAYWATCH's verdicts are only auditable if a rerun over the same window
//! is byte-identical, and its scale (the paper evaluates 30 billion
//! events) means "rare" hazards fire daily. This crate mechanically
//! enforces the repo's reproducibility catalogue — see [`rules`] for the
//! rule-by-rule story — with CI ratcheting via a committed baseline
//! ([`baseline`]) and per-site suppression that demands written
//! justification ([`config`]).
//!
//! The analysis is a token-level pass (a hand-rolled lexer plus delimiter
//! matching, [`lexer`]/[`syntax`]) extended with a lightweight item parser
//! ([`items`]: `fn`/`impl`/`mod` nesting and per-scope `use` resolution)
//! rather than a full `syn` AST: the linter must build with **zero
//! dependencies** so hermetic and offline builds can always run it. The
//! rules are scope-aware (test code, function bodies, bindings, enclosing
//! impls) but heuristic; the determinism integration tests backstop what
//! lexing cannot see.
//!
//! Repo-wide runs stay fast through an incremental file-hash cache
//! ([`cache`]), and the mechanical rules (L1, L5) carry byte-precise
//! fixes applied by `--fix` ([`fix`]).

#![warn(clippy::unwrap_used)]

pub mod baseline;
pub mod cache;
pub mod config;
pub mod fix;
pub mod items;
pub mod lexer;
pub mod manifest;
pub mod report;
pub mod rules;
pub mod syntax;
pub mod walk;

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

use baseline::BaselineEntry;
use cache::Cache;
use config::{AllowEntry, Config};
use manifest::Manifest;
use rules::{Finding, RuleContext};
use walk::walk_workspace;

/// Everything that can go wrong while linting. I/O failures carry the
/// path; config/baseline failures carry file/line context.
#[derive(Debug)]
pub enum LintError {
    Io(PathBuf, std::io::Error),
    Config(String),
    Baseline(String),
}

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LintError::Io(path, e) => write!(f, "{}: {e}", path.display()),
            LintError::Config(msg) => write!(f, "invalid config: {msg}"),
            LintError::Baseline(msg) => write!(f, "invalid baseline: {msg}"),
        }
    }
}

impl std::error::Error for LintError {}

/// Where to lint and against what.
#[derive(Debug, Clone, Default)]
pub struct LintOptions {
    /// Workspace root. Defaults to the current directory.
    pub root: PathBuf,
    /// Allowlist path; `None` means `<root>/lint.toml`, tolerated missing.
    pub config_path: Option<PathBuf>,
    /// Baseline path; `None` means `<root>/lint-baseline.json`, tolerated
    /// missing (treated as empty — everything is new).
    pub baseline_path: Option<PathBuf>,
    /// Metrics manifest path; `None` means `<root>/METRICS.md`, tolerated
    /// missing (the L6 rule stays off).
    pub manifest_path: Option<PathBuf>,
    /// Incremental cache location. `None` disables caching entirely — the
    /// library default, so test runs and fixture lints never write state.
    /// The CLI opts in with `<root>/target/lint-cache.tsv`.
    pub cache_path: Option<PathBuf>,
}

/// The result of a full run: findings partitioned by how CI should react.
#[derive(Debug, Default)]
pub struct LintOutcome {
    /// Unsuppressed findings not in the baseline. Nonempty ⇒ fail.
    pub new: Vec<Finding>,
    /// Findings tolerated by the committed baseline.
    pub baselined: Vec<Finding>,
    /// Findings suppressed by `lint.toml`, with the entry's reason.
    pub allowlisted: Vec<(Finding, String)>,
    /// Baseline entries whose finding has been fixed.
    pub stale_baseline: Vec<BaselineEntry>,
    /// Allowlist entries that matched nothing.
    pub unused_allows: Vec<AllowEntry>,
    /// Files answered from the incremental cache / re-analyzed. Both zero
    /// when caching is disabled.
    pub cache_hits: usize,
    pub cache_misses: usize,
}

impl LintOutcome {
    /// The ratchet passes when nothing new was found. (Stale entries and
    /// unused allows are reported but do not fail the build: they appear
    /// exactly when someone fixes a tolerated finding, and failing on the
    /// fix would punish it.)
    pub fn is_clean(&self) -> bool {
        self.new.is_empty()
    }
}

/// Lints every source file under `root` and returns the raw findings,
/// path-sorted, with no allowlist or baseline applied. Policies and the
/// metrics manifest are loaded from their default locations under `root`
/// so the L5–L7 families run fully armed.
pub fn lint_workspace(root: &Path) -> Result<Vec<Finding>, LintError> {
    let config = load_config(root, None)?;
    let manifest = load_manifest(root, None)?;
    let ctx = RuleContext {
        config: Some(&config),
        manifest: manifest.as_ref(),
    };
    lint_files(root, ctx, None).map(|(findings, _)| findings)
}

/// Walks and lints with an explicit rule context and optional cache.
/// Returns findings plus (hits, misses).
fn lint_files(
    root: &Path,
    ctx: RuleContext<'_>,
    mut cache: Option<&mut Cache>,
) -> Result<(Vec<Finding>, (usize, usize)), LintError> {
    let files = walk_workspace(root).map_err(|e| LintError::Io(root.to_path_buf(), e))?;
    let mut findings = Vec::new();
    for sf in &files {
        let source =
            fs::read_to_string(&sf.abs_path).map_err(|e| LintError::Io(sf.abs_path.clone(), e))?;
        if let Some(cache) = cache.as_mut() {
            let hash = cache::fnv64(source.as_bytes());
            if let Some(cached) = cache.get(&sf.rel_path, hash) {
                findings.extend(cached);
                continue;
            }
            let fresh = rules::check_file_with(sf, &source, ctx);
            cache.put(&sf.rel_path, hash, &fresh);
            findings.extend(fresh);
        } else {
            findings.extend(rules::check_file_with(sf, &source, ctx));
        }
    }
    // Files are walked in sorted order; keep (path, line) order globally.
    findings.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    let stats = cache.map(|c| (c.hits, c.misses)).unwrap_or((0, 0));
    Ok((findings, stats))
}

/// The full pipeline: walk, lint (through the cache when configured),
/// apply the allowlist, ratchet against the baseline.
pub fn run(opts: &LintOptions) -> Result<LintOutcome, LintError> {
    let root = if opts.root.as_os_str().is_empty() {
        PathBuf::from(".")
    } else {
        opts.root.clone()
    };
    let (config, config_text) = load_config_with_text(&root, opts.config_path.as_deref())?;
    let baseline_entries = load_baseline(&root, opts.baseline_path.as_deref())?;
    let (manifest, manifest_text) = load_manifest_with_text(&root, opts.manifest_path.as_deref())?;
    let ctx = RuleContext {
        config: Some(&config),
        manifest: manifest.as_ref(),
    };

    let mut cache_store: Option<Cache> = opts.cache_path.as_ref().map(|p| {
        let digest = cache::config_digest(&config_text, &manifest_text);
        Cache::load(p, digest)
    });
    let (findings, (cache_hits, cache_misses)) = lint_files(&root, ctx, cache_store.as_mut())?;
    if let (Some(cache), Some(path)) = (&cache_store, &opts.cache_path) {
        // A cache that cannot be written is a performance bug, not a lint
        // failure; the next run is simply cold.
        let _ = cache.save(path);
    }

    // Allowlist first: suppressed findings never reach the ratchet, so a
    // baseline can shrink to empty while justified exceptions remain.
    let mut surviving = Vec::new();
    let mut allowlisted = Vec::new();
    let mut used = vec![false; config.allows.len()];
    'findings: for f in findings {
        for (i, entry) in config.allows.iter().enumerate() {
            if entry.matches(&f) {
                used[i] = true;
                allowlisted.push((f, entry.reason.clone()));
                continue 'findings;
            }
        }
        surviving.push(f);
    }

    let ratchet = baseline::ratchet(&surviving, &baseline_entries);
    Ok(LintOutcome {
        new: ratchet.new,
        baselined: ratchet.known,
        allowlisted,
        stale_baseline: ratchet.stale,
        unused_allows: config
            .allows
            .iter()
            .zip(&used)
            .filter(|(_, u)| !**u)
            .map(|(e, _)| e.clone())
            .collect(),
        cache_hits,
        cache_misses,
    })
}

/// Applies the mechanical fixes attached to `outcome.new` to the files
/// under `opts.root`, then re-lints (cache bypassed: the tree changed).
/// Returns the number of findings repaired and the post-fix outcome —
/// which callers assert is clean of the fixed rules, and which a second
/// application must leave byte-identical (idempotence).
pub fn apply_fixes(
    opts: &LintOptions,
    outcome: &LintOutcome,
) -> Result<(usize, LintOutcome), LintError> {
    let root = if opts.root.as_os_str().is_empty() {
        PathBuf::from(".")
    } else {
        opts.root.clone()
    };
    let fixed =
        fix::apply_fixes(&root, &outcome.new).map_err(|e| LintError::Io(root.clone(), e))?;
    let refreshed = run(&LintOptions {
        cache_path: None,
        ..opts.clone()
    })?;
    Ok((fixed, refreshed))
}

fn load_config(root: &Path, explicit: Option<&Path>) -> Result<Config, LintError> {
    load_config_with_text(root, explicit).map(|(c, _)| c)
}

/// Loads the config plus its raw text (folded into the cache digest).
fn load_config_with_text(
    root: &Path,
    explicit: Option<&Path>,
) -> Result<(Config, String), LintError> {
    let path = explicit
        .map(Path::to_path_buf)
        .unwrap_or_else(|| root.join("lint.toml"));
    match fs::read_to_string(&path) {
        Ok(text) => Config::parse(&text, &path.display().to_string()).map(|c| (c, text)),
        // A missing default allowlist is fine; a missing *explicit* one is
        // an error (the caller named it, so a typo must not pass silently).
        Err(e) if e.kind() == std::io::ErrorKind::NotFound && explicit.is_none() => {
            Ok((Config::default(), String::new()))
        }
        Err(e) => Err(LintError::Io(path, e)),
    }
}

fn load_manifest(root: &Path, explicit: Option<&Path>) -> Result<Option<Manifest>, LintError> {
    load_manifest_with_text(root, explicit).map(|(m, _)| m)
}

fn load_manifest_with_text(
    root: &Path,
    explicit: Option<&Path>,
) -> Result<(Option<Manifest>, String), LintError> {
    let path = explicit
        .map(Path::to_path_buf)
        .unwrap_or_else(|| root.join("METRICS.md"));
    match fs::read_to_string(&path) {
        Ok(text) => Manifest::parse(&text)
            .map(|m| (Some(m), text))
            .map_err(LintError::Config),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound && explicit.is_none() => {
            Ok((None, String::new()))
        }
        Err(e) => Err(LintError::Io(path, e)),
    }
}

fn load_baseline(root: &Path, explicit: Option<&Path>) -> Result<Vec<BaselineEntry>, LintError> {
    let path = explicit
        .map(Path::to_path_buf)
        .unwrap_or_else(|| root.join("lint-baseline.json"));
    match fs::read_to_string(&path) {
        Ok(text) => baseline::parse(&text, &path.display().to_string()),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound && explicit.is_none() => Ok(Vec::new()),
        Err(e) => Err(LintError::Io(path, e)),
    }
}
