//! Admission control with hysteresis.
//!
//! The wave scheduler in `core::pipeline` polls its window budget between
//! waves; historically the only lever was binary — keep going or shed the
//! rest. The [`AdmissionController`] adds a middle setting: as budget
//! *pressure* (a utilization fraction, 0 = idle, ≥ 1 = exhausted) climbs
//! past `degrade_enter`, waves are admitted under **degraded** (coarser,
//! `Tier`-style tightened) per-pair budgets; only past `reject_enter` —
//! or outright budget exhaustion — is work rejected (shed). Each
//! threshold pairs with a lower exit threshold, so a pressure reading
//! oscillating around a boundary does not flap the controller between
//! levels every wave:
//!
//! ```text
//!             pressure ≥ degrade_enter        pressure ≥ reject_enter
//!   ┌────────┐ ──────────────────────► ┌─────────┐ ───────────────► ┌───────────┐
//!   │ Normal │                         │ Degraded│                  │ Rejecting │
//!   └────────┘ ◄────────────────────── └─────────┘ ◄─────────────── └───────────┘
//!             pressure < degrade_exit        pressure < reject_exit
//! ```
//!
//! Decisions are a pure function of the pressure sequence, so an
//! ops-ceiling budget (the deterministic kind) yields byte-identical
//! decision streams on every run.

/// Enter/exit pressure thresholds for the two elevated levels.
///
/// Invariant (clamped at use): exits sit at or below their enters, and
/// the reject band sits above the degrade band.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionConfig {
    /// Pressure at or above which admission degrades.
    pub degrade_enter: f64,
    /// Pressure below which a degraded controller recovers to normal.
    pub degrade_exit: f64,
    /// Pressure at or above which admission rejects outright.
    pub reject_enter: f64,
    /// Pressure below which a rejecting controller falls back (to
    /// degraded or normal, depending on the degrade band).
    pub reject_exit: f64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            degrade_enter: 0.85,
            degrade_exit: 0.65,
            reject_enter: 1.0,
            reject_exit: 0.9,
        }
    }
}

/// The verdict for one unit (a wave, a batch, a request).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionDecision {
    /// Admit under the normal budget.
    Accept,
    /// Admit under a degraded (coarser) budget.
    Degrade,
    /// Do not admit; the caller sheds or queues the unit.
    Reject,
}

impl AdmissionDecision {
    /// Stable lower-case label used in metrics names and span events.
    pub fn label(&self) -> &'static str {
        match self {
            AdmissionDecision::Accept => "accept",
            AdmissionDecision::Degrade => "degrade",
            AdmissionDecision::Reject => "reject",
        }
    }
}

/// Additive decision counters for one controller.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Decisions returned as [`AdmissionDecision::Accept`].
    pub accepted: u64,
    /// Decisions returned as [`AdmissionDecision::Degrade`].
    pub degraded: u64,
    /// Decisions returned as [`AdmissionDecision::Reject`].
    pub rejected: u64,
    /// Level changes (any direction).
    pub transitions: u64,
}

impl AdmissionStats {
    /// Field-wise sum.
    pub fn merge(&mut self, other: &AdmissionStats) {
        self.accepted += other.accepted;
        self.degraded += other.degraded;
        self.rejected += other.rejected;
        self.transitions += other.transitions;
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Level {
    Normal,
    Degraded,
    Rejecting,
}

impl Level {
    fn decision(self) -> AdmissionDecision {
        match self {
            Level::Normal => AdmissionDecision::Accept,
            Level::Degraded => AdmissionDecision::Degrade,
            Level::Rejecting => AdmissionDecision::Reject,
        }
    }
}

/// One recorded level change, stamped with the pressure that caused it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LevelChange {
    /// Pressure reading that triggered the change.
    pub pressure: f64,
    /// Decision level entered.
    pub entered: AdmissionDecision,
}

/// Bound on the retained level-change log.
const CHANGE_LOG_LIMIT: usize = 64;

/// Converts a pressure stream into accept/degrade/reject decisions with
/// hysteresis.
#[derive(Debug)]
pub struct AdmissionController {
    config: AdmissionConfig,
    level: Level,
    stats: AdmissionStats,
    changes: Vec<LevelChange>,
}

impl AdmissionController {
    /// A controller starting at the normal level.
    pub fn new(config: AdmissionConfig) -> Self {
        AdmissionController {
            config,
            level: Level::Normal,
            stats: AdmissionStats::default(),
            changes: Vec::new(),
        }
    }

    /// Decision counters so far.
    pub fn stats(&self) -> AdmissionStats {
        self.stats
    }

    /// The retained level-change log (bounded; oldest entries kept).
    pub fn changes(&self) -> &[LevelChange] {
        &self.changes
    }

    /// Drains the level-change log.
    pub fn take_changes(&mut self) -> Vec<LevelChange> {
        std::mem::take(&mut self.changes)
    }

    /// True while the controller is at an elevated level.
    pub fn is_elevated(&self) -> bool {
        self.level != Level::Normal
    }

    /// Decides the next unit given the current `pressure` reading.
    /// `exhausted` short-circuits to rejection regardless of pressure
    /// (a wall-clock deadline can expire while the utilization fraction
    /// still reads low).
    pub fn decide(&mut self, pressure: f64, exhausted: bool) -> AdmissionDecision {
        let c = self.config;
        // Clamp the bands so a mis-ordered config degenerates to
        // sane threshold behavior instead of oscillation.
        let degrade_exit = c.degrade_exit.min(c.degrade_enter);
        let reject_exit = c.reject_exit.min(c.reject_enter);
        let next = if exhausted || pressure >= c.reject_enter {
            Level::Rejecting
        } else {
            match self.level {
                Level::Normal => {
                    if pressure >= c.degrade_enter {
                        Level::Degraded
                    } else {
                        Level::Normal
                    }
                }
                Level::Degraded => {
                    if pressure < degrade_exit {
                        Level::Normal
                    } else {
                        Level::Degraded
                    }
                }
                Level::Rejecting => {
                    if pressure < reject_exit {
                        if pressure >= degrade_exit {
                            Level::Degraded
                        } else {
                            Level::Normal
                        }
                    } else {
                        Level::Rejecting
                    }
                }
            }
        };
        if next != self.level {
            self.stats.transitions += 1;
            if self.changes.len() < CHANGE_LOG_LIMIT {
                self.changes.push(LevelChange {
                    pressure,
                    entered: next.decision(),
                });
            }
            self.level = next;
        }
        let decision = self.level.decision();
        match decision {
            AdmissionDecision::Accept => self.stats.accepted += 1,
            AdmissionDecision::Degrade => self.stats.degraded += 1,
            AdmissionDecision::Reject => self.stats.rejected += 1,
        }
        decision
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn low_pressure_accepts() {
        let mut c = AdmissionController::new(AdmissionConfig::default());
        assert_eq!(c.decide(0.0, false), AdmissionDecision::Accept);
        assert_eq!(c.decide(0.5, false), AdmissionDecision::Accept);
        assert_eq!(c.stats().accepted, 2);
        assert_eq!(c.stats().transitions, 0);
    }

    #[test]
    fn degrade_band_has_hysteresis() {
        let mut c = AdmissionController::new(AdmissionConfig::default());
        assert_eq!(c.decide(0.86, false), AdmissionDecision::Degrade);
        // Dipping below enter but above exit stays degraded.
        assert_eq!(c.decide(0.7, false), AdmissionDecision::Degrade);
        assert_eq!(c.decide(0.64, false), AdmissionDecision::Accept);
        assert_eq!(c.stats().transitions, 2);
    }

    #[test]
    fn exhaustion_forces_reject() {
        let mut c = AdmissionController::new(AdmissionConfig::default());
        assert_eq!(c.decide(0.1, true), AdmissionDecision::Reject);
        assert!(c.is_elevated());
        // Recovery falls straight back to normal at low pressure.
        assert_eq!(c.decide(0.1, false), AdmissionDecision::Accept);
    }

    #[test]
    fn reject_recovery_passes_through_degraded() {
        let mut c = AdmissionController::new(AdmissionConfig::default());
        assert_eq!(c.decide(1.2, false), AdmissionDecision::Reject);
        assert_eq!(c.decide(0.95, false), AdmissionDecision::Reject, "above reject_exit");
        assert_eq!(c.decide(0.8, false), AdmissionDecision::Degrade, "in the degrade band");
        assert_eq!(c.decide(0.1, false), AdmissionDecision::Accept);
        assert_eq!(c.stats().transitions, 3);
    }

    #[test]
    fn change_log_records_pressure_and_level() {
        let mut c = AdmissionController::new(AdmissionConfig::default());
        let _ = c.decide(0.9, false);
        let _ = c.decide(1.5, false);
        let changes = c.take_changes();
        assert_eq!(changes.len(), 2);
        assert_eq!(changes[0].entered, AdmissionDecision::Degrade);
        assert_eq!(changes[1].entered, AdmissionDecision::Reject);
        assert!(c.changes().is_empty());
    }

    #[test]
    fn stats_merge_is_fieldwise() {
        let mut a = AdmissionStats {
            accepted: 1,
            degraded: 2,
            rejected: 3,
            transitions: 4,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.accepted, 2);
        assert_eq!(a.transitions, 8);
    }
}
