//! Property-based half of the streaming/batch equivalence battery (the
//! deterministic half lives in `stream_equivalence.rs`).
//!
//! For random long-trace seeds, random chunk sizes, and random
//! intra-tick shuffles, a lossless [`StreamingHunt`] must be a pure
//! function of the trace content: identical `export_json` bytes and
//! ledgers however the trace is split, and byte-identical to the batch
//! pipeline on the final window.
//!
//! [`StreamingHunt`]: baywatch::core::stream::StreamingHunt

use std::sync::Arc;

use baywatch::core::pipeline::{Baywatch, BaywatchConfig};
use baywatch::core::record::LogRecord;
use baywatch::core::report::export_json;
use baywatch::core::stream::{StreamConfig, StreamingHunt};
use baywatch::core::ScheduleSpec;
use baywatch::netsim::longtrace::{LongTraceConfig, LongTraceGenerator};
use baywatch::obs::ManualClock;
use baywatch::record_from_event;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

const TICK_SECONDS: u64 = 300;
const WINDOW_TICKS: u64 = 4;
const TICKS: u64 = 6;
const TOP_K: usize = 10;

fn pipeline_config() -> BaywatchConfig {
    BaywatchConfig {
        local_tau: 0.05,
        ..Default::default()
    }
}

fn stream_config() -> StreamConfig {
    let schedule = ScheduleSpec::new(TICK_SECONDS, WINDOW_TICKS).expect("valid schedule");
    let mut config = StreamConfig::lossless(schedule);
    config.pipeline = pipeline_config();
    config
}

fn trace(seed: u64) -> Vec<LogRecord> {
    LongTraceGenerator::new(LongTraceConfig {
        seed,
        tick_seconds: TICK_SECONDS,
        ..LongTraceConfig::default()
    })
    .events(0..TICKS)
    .iter()
    .map(record_from_event)
    .collect()
}

/// Streams the records in `chunk`-sized pieces and returns the final
/// export plus the ledger debug form.
fn stream_in_chunks(records: &[LogRecord], chunk: usize) -> (String, String) {
    let mut hunt = StreamingHunt::new(stream_config()).expect("valid stream config");
    for piece in records.chunks(chunk.max(1)) {
        hunt.ingest(piece);
    }
    hunt.finish();
    (hunt.final_export(TOP_K), format!("{:?}", hunt.ledger()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Any chunking of the same trace — including with arrivals shuffled
    /// inside each tick — produces byte-identical ranked exports and
    /// identical ledgers.
    #[test]
    fn chunked_and_shuffled_streams_are_identical(
        seed in 0u64..1_000,
        chunk in 1usize..97,
        shuffle_seed in 0u64..1_000,
    ) {
        let records = trace(seed);
        let (whole_export, whole_ledger) = stream_in_chunks(&records, records.len());
        let (chunked_export, chunked_ledger) = stream_in_chunks(&records, chunk);
        prop_assert_eq!(&chunked_export, &whole_export, "chunk size {} diverged", chunk);
        prop_assert_eq!(&chunked_ledger, &whole_ledger);

        // Shuffle within each tick, keep tick order.
        let mut rng = StdRng::seed_from_u64(shuffle_seed);
        let mut shuffled = Vec::new();
        for tick in 0..TICKS {
            let mut tick_records: Vec<LogRecord> = records
                .iter()
                .filter(|r| r.timestamp / TICK_SECONDS == tick)
                .cloned()
                .collect();
            tick_records.shuffle(&mut rng);
            shuffled.extend(tick_records);
        }
        let (shuffled_export, shuffled_ledger) = stream_in_chunks(&shuffled, chunk);
        prop_assert_eq!(&shuffled_export, &whole_export, "intra-tick shuffle diverged");
        prop_assert_eq!(&shuffled_ledger, &whole_ledger);
    }

    /// The streaming final export is byte-identical to the batch
    /// pipeline run over the final window of the same trace.
    #[test]
    fn streaming_always_matches_batch_on_final_window(seed in 0u64..1_000) {
        let records = trace(seed);
        let (stream_export, _) = stream_in_chunks(&records, 13);

        let schedule = ScheduleSpec::new(TICK_SECONDS, WINDOW_TICKS).expect("valid schedule");
        let window: Vec<LogRecord> = records
            .iter()
            .filter(|r| schedule.in_window(TICKS - 1, r.timestamp))
            .cloned()
            .collect();
        let mut engine = Baywatch::with_clock(pipeline_config(), Arc::new(ManualClock::new()));
        let report = engine.analyze(window);
        let batch_export = export_json(&report, &engine.metrics_snapshot(), TOP_K);
        prop_assert_eq!(stream_export, batch_export);
    }
}
