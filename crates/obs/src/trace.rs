//! A lightweight span tracer for pipeline stages.
//!
//! [`StageTracer::span`] returns an RAII guard; dropping it records a
//! [`SpanRecord`] with the dotted path of every open ancestor span
//! (`analyze.detect.gmm`), its nesting depth, and its start/duration in
//! nanoseconds read from the injected [`Clock`]. With a
//! [`ManualClock`](crate::ManualClock) the records are exactly
//! reproducible; with a [`MonotonicClock`](crate::MonotonicClock) they
//! carry real wall-clock durations and must stay out of golden output —
//! feed them into the registry's *timings* section only.

use std::sync::{Arc, Mutex, MutexGuard};

use crate::clock::Clock;

/// One completed span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Dot-joined names of the span and its ancestors, e.g.
    /// `analyze.detect.gmm`.
    pub path: String,
    /// Nesting depth; top-level spans are 0.
    pub depth: usize,
    /// Clock reading when the span opened.
    pub start_nanos: u64,
    /// Nanoseconds between open and close.
    pub duration_nanos: u64,
}

#[derive(Debug, Default)]
struct TracerState {
    /// Names of currently open spans, outermost first.
    stack: Vec<String>,
    finished: Vec<SpanRecord>,
}

/// Records nested stage spans against an injected clock.
#[derive(Debug, Clone)]
pub struct StageTracer {
    clock: Arc<dyn Clock>,
    state: Arc<Mutex<TracerState>>,
}

impl StageTracer {
    /// A tracer reading time from `clock`.
    pub fn new(clock: Arc<dyn Clock>) -> Self {
        Self {
            clock,
            state: Arc::new(Mutex::new(TracerState::default())),
        }
    }

    /// Opens a span named `name`, nested under any spans already open on
    /// this tracer. The span closes (and its record is stored) when the
    /// returned guard drops.
    pub fn span(&self, name: &str) -> SpanGuard<'_> {
        let start_nanos = self.clock.now_nanos();
        let mut state = self.lock();
        let depth = state.stack.len();
        state.stack.push(name.to_string());
        let path = state.stack.join(".");
        SpanGuard {
            tracer: self,
            path,
            depth,
            start_nanos,
        }
    }

    /// Completed spans in the order they *closed* (inner spans before the
    /// outer spans that contain them).
    pub fn finished(&self) -> Vec<SpanRecord> {
        self.lock().finished.clone()
    }

    /// Drops all completed spans, returning them.
    pub fn drain(&self) -> Vec<SpanRecord> {
        std::mem::take(&mut self.lock().finished)
    }

    fn close(&self, guard_depth: usize, record: SpanRecord) {
        let mut state = self.lock();
        // Truncate to the guard's depth rather than popping once: if an
        // inner guard leaked past its scope (e.g. a panic unwound through
        // it out of order), this resynchronises the stack.
        state.stack.truncate(guard_depth);
        state.finished.push(record);
    }

    /// Tracer state is plain vectors; recover from poisoning rather than
    /// letting diagnostics take the pipeline down.
    fn lock(&self) -> MutexGuard<'_, TracerState> {
        self.state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

/// RAII guard returned by [`StageTracer::span`]; records the span on drop.
#[derive(Debug)]
pub struct SpanGuard<'a> {
    tracer: &'a StageTracer,
    path: String,
    depth: usize,
    start_nanos: u64,
}

impl SpanGuard<'_> {
    /// The full dotted path of this span.
    pub fn path(&self) -> &str {
        &self.path
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let end = self.tracer.clock.now_nanos();
        let record = SpanRecord {
            path: std::mem::take(&mut self.path),
            depth: self.depth,
            start_nanos: self.start_nanos,
            duration_nanos: end.saturating_sub(self.start_nanos),
        };
        self.tracer.close(self.depth, record);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    fn tracer() -> (Arc<ManualClock>, StageTracer) {
        let clock = Arc::new(ManualClock::new());
        let tracer = StageTracer::new(clock.clone());
        (clock, tracer)
    }

    #[test]
    fn single_span_records_path_and_duration() {
        let (clock, tracer) = tracer();
        {
            let span = tracer.span("analyze");
            assert_eq!(span.path(), "analyze");
            clock.advance(250);
        }
        let spans = tracer.finished();
        assert_eq!(
            spans,
            vec![SpanRecord {
                path: "analyze".into(),
                depth: 0,
                start_nanos: 0,
                duration_nanos: 250,
            }]
        );
    }

    #[test]
    fn nested_spans_build_dotted_paths_and_close_inner_first() {
        let (clock, tracer) = tracer();
        {
            let _outer = tracer.span("analyze");
            clock.advance(10);
            {
                let _mid = tracer.span("detect");
                clock.advance(100);
                {
                    let inner = tracer.span("gmm");
                    assert_eq!(inner.path(), "analyze.detect.gmm");
                    clock.advance(7);
                }
            }
            clock.advance(3);
        }
        let spans = tracer.finished();
        let summary: Vec<(&str, usize, u64, u64)> = spans
            .iter()
            .map(|s| (s.path.as_str(), s.depth, s.start_nanos, s.duration_nanos))
            .collect();
        assert_eq!(
            summary,
            vec![
                ("analyze.detect.gmm", 2, 110, 7),
                ("analyze.detect", 1, 10, 107),
                ("analyze", 0, 0, 120),
            ]
        );
    }

    #[test]
    fn sequential_siblings_do_not_nest() {
        let (clock, tracer) = tracer();
        {
            let _a = tracer.span("first");
            clock.advance(1);
        }
        {
            let _b = tracer.span("second");
            clock.advance(2);
        }
        let paths: Vec<String> = tracer.finished().into_iter().map(|s| s.path).collect();
        assert_eq!(paths, vec!["first", "second"]);
    }

    #[test]
    fn drain_empties_finished_spans() {
        let (_clock, tracer) = tracer();
        drop(tracer.span("s"));
        assert_eq!(tracer.drain().len(), 1);
        assert!(tracer.finished().is_empty());
    }

    #[test]
    fn clone_shares_span_state() {
        let (clock, tracer) = tracer();
        let t2 = tracer.clone();
        {
            let _outer = tracer.span("outer");
            clock.advance(5);
            let inner = t2.span("inner");
            assert_eq!(inner.path(), "outer.inner");
        }
        assert_eq!(tracer.finished().len(), 2);
    }
}
