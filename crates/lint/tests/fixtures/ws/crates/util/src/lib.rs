//! Fixture: `util` is not a deterministic crate — L2 rules must stay
//! quiet here, while L1 and L4 still apply.

pub fn ambient_is_fine_here() -> u64 {
    let mut r = rand::rng();
    r.random_range(0..10)
}

pub fn still_l4() -> u32 {
    let v: Option<u32> = Some(3);
    v.unwrap()
}
