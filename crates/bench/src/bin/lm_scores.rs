//! §V-C worked example — language-model scores of domains.
//!
//! Paper: `S(skmnikrzhrrzcjcxwfprgt.com) = −45.166`, significantly lower
//! than `S(google.com) = −7.406` under a 3-gram model trained on the Alexa
//! top-1M. Our corpus substitution (DESIGN.md) shifts absolute values, but
//! the *gap* — DGA scores several times lower than popular domains — is the
//! property the ranking filter uses, and it must reproduce.

#![warn(clippy::unwrap_used)]

use baywatch_bench::{f, render_table, save_json};
use baywatch_langmodel::dga::{DgaGenerator, DgaStyle};
use baywatch_langmodel::{corpus, DomainScorer};

fn main() {
    println!("=== §V-C: language-model domain scores ===\n");
    let scorer = DomainScorer::train(corpus::training_corpus(), 3);

    let samples = [
        ("google.com", "paper: -7.406"),
        ("skmnikrzhrrzcjcxwfprgt.com", "paper: -45.166"),
        ("facebook.com", ""),
        ("wikipedia.org", ""),
        ("setup.poiiorew.com", "Table VI style"),
        ("cuoxxscrhhvigp.com", "Table VI style"),
        ("cdn.5f75b1c54f82d4.com", "Table V style"),
        ("api.echoenabled.com", "paper's false positive"),
        ("2015.ausopen.com", "paper's benign periodic"),
    ];
    let rows: Vec<Vec<String>> = samples
        .iter()
        .map(|(d, note)| {
            vec![
                (*d).to_owned(),
                f(scorer.score(d), 3),
                f(scorer.score_per_char(d), 3),
                (*note).to_owned(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["domain", "S = log P(D)", "per char", "note"], &rows)
    );

    let google = scorer.score("google.com");
    let dga = scorer.score("skmnikrzhrrzcjcxwfprgt.com");
    println!(
        "score gap google vs paper's DGA example: {:.1} nats",
        google - dga
    );
    assert!(
        dga < google - 15.0,
        "DGA must score far below google.com (got {dga} vs {google})"
    );

    // Distribution view over batches.
    println!("\n--- per-char score distributions (200 domains each) ---");
    let popular_scores: Vec<f64> = corpus::seed_domains()
        .iter()
        .take(200)
        .map(|d| scorer.score_per_char(d))
        .collect();
    let mut rows = vec![summary_row("popular (seed corpus)", &popular_scores)];
    for (style, label) in [
        (DgaStyle::RandomAlpha, "DGA random-alpha"),
        (DgaStyle::HexFragment, "DGA hex-fragment"),
        (DgaStyle::Pronounceable, "DGA pronounceable"),
    ] {
        let scores: Vec<f64> = DgaGenerator::new(style, 99)
            .generate_batch(200)
            .iter()
            .map(|d| scorer.score_per_char(d))
            .collect();
        rows.push(summary_row(label, &scores));
    }
    println!(
        "{}",
        render_table(&["population", "mean", "min", "max"], &rows)
    );

    save_json(
        "lm_scores",
        &samples
            .iter()
            .map(|(d, _)| ((*d).to_owned(), scorer.score(d)))
            .collect::<Vec<_>>(),
    );
}

fn summary_row(label: &str, scores: &[f64]) -> Vec<String> {
    let mean = scores.iter().sum::<f64>() / scores.len() as f64;
    let min = scores.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    vec![label.to_owned(), f(mean, 3), f(min, 3), f(max, 3)]
}
