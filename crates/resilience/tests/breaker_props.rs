//! Property-based tests on the circuit-breaker state machine and the
//! additivity of its `resilience.*` counters.
//!
//! A model checker in miniature: random event sequences (success,
//! failure, allow, clock advance) are replayed against the breaker while
//! a transparent reference model tracks what the thresholds *should*
//! have done. Three invariants are pinned:
//!
//! 1. Open is entered iff a threshold was crossed (consecutive count or
//!    failure rate over `min_samples`) or a half-open probe failed.
//! 2. The half-open probe count never exceeds the configured
//!    `half_open_requests` budget within one half-open period.
//! 3. Recording the stats of two breakers into two registries and
//!    merging them equals recording both into one registry sequentially —
//!    counter merges are exact, never approximate.

use std::sync::Arc;

use baywatch_obs::{ManualClock, MetricsRegistry};
use baywatch_resilience::{BreakerConfig, BreakerState, CircuitBreaker};
use proptest::prelude::*;

/// One step of a driving sequence.
#[derive(Debug, Clone, Copy)]
enum Event {
    Allow,
    Success,
    Failure,
    Advance(u64),
}

fn event_strategy() -> impl Strategy<Value = Event> {
    prop_oneof![
        Just(Event::Allow),
        Just(Event::Success),
        2 => Just(Event::Failure),
        (1u64..5_000).prop_map(Event::Advance),
    ]
}

fn config_strategy() -> impl Strategy<Value = BreakerConfig> {
    (1u32..6, 1u32..4, 1u32..5, 1u64..4_000, 0u32..2).prop_map(
        |(failure_threshold, success_threshold, half_open_requests, cooldown_nanos, rate_on)| {
            BreakerConfig {
                failure_threshold,
                failure_rate: if rate_on == 1 { 0.5 } else { 0.0 },
                min_samples: 4,
                success_threshold,
                half_open_requests,
                cooldown_nanos,
            }
        },
    )
}

/// A transparent re-statement of the trip conditions, tracked alongside
/// the real breaker.
#[derive(Default)]
struct Model {
    consecutive: u32,
    window_total: u64,
    window_failures: u64,
    half_open_failure: bool,
}

impl Model {
    fn should_trip(&self, config: &BreakerConfig, state: BreakerState) -> bool {
        match state {
            BreakerState::HalfOpen => self.half_open_failure,
            BreakerState::Closed => {
                let count = config.failure_threshold > 0
                    && self.consecutive >= config.failure_threshold;
                let rate = config.failure_rate > 0.0
                    && self.window_total >= u64::from(config.min_samples)
                    && (self.window_failures as f64)
                        >= config.failure_rate * (self.window_total as f64);
                count || rate
            }
            BreakerState::Open => false,
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Invariants 1 and 2: Open is entered iff a threshold crossed, and
    /// half-open probe admissions never exceed the probe budget.
    #[test]
    fn open_iff_thresholds_and_probes_bounded(
        config in config_strategy(),
        events in proptest::collection::vec(event_strategy(), 1..120),
    ) {
        let clock = Arc::new(ManualClock::new());
        let mut breaker = CircuitBreaker::new(config, clock.clone());
        let mut model = Model::default();
        let mut probes_this_period: u32 = 0;

        for event in events {
            let before = breaker.state();
            match event {
                Event::Advance(nanos) => clock.advance(nanos),
                Event::Allow => {
                    let admitted = breaker.allow();
                    match before {
                        BreakerState::Closed => prop_assert!(admitted),
                        BreakerState::Open => {
                            if admitted {
                                // Cooldown elapsed: a new half-open period
                                // began and this allow consumed probe #1.
                                prop_assert_eq!(breaker.state(), BreakerState::HalfOpen);
                                probes_this_period = 1;
                                model.half_open_failure = false;
                            }
                        }
                        BreakerState::HalfOpen => {
                            if admitted {
                                probes_this_period += 1;
                            }
                        }
                    }
                    if breaker.state() == BreakerState::HalfOpen {
                        prop_assert!(
                            probes_this_period <= config.probe_budget(),
                            "probes {} exceed budget {}",
                            probes_this_period,
                            config.probe_budget()
                        );
                    }
                }
                Event::Success => {
                    if before == BreakerState::Closed {
                        model.consecutive = 0;
                        model.window_total += 1;
                    }
                    breaker.record_success();
                    if before != BreakerState::Open {
                        prop_assert_ne!(
                            breaker.state(),
                            BreakerState::Open,
                            "a success can never trip the breaker open"
                        );
                    }
                    if before == BreakerState::HalfOpen
                        && breaker.state() == BreakerState::Closed
                    {
                        model = Model::default();
                        probes_this_period = 0;
                    }
                }
                Event::Failure => {
                    if before == BreakerState::Closed {
                        model.consecutive += 1;
                        model.window_total += 1;
                        model.window_failures += 1;
                    } else if before == BreakerState::HalfOpen {
                        model.half_open_failure = true;
                    }
                    let should_trip = model.should_trip(&config, before);
                    breaker.record_failure();
                    let tripped = before != BreakerState::Open
                        && breaker.state() == BreakerState::Open;
                    prop_assert_eq!(
                        tripped, should_trip,
                        "trip mismatch from {:?}: model {:?} vs breaker {:?}",
                        before, should_trip, breaker.state()
                    );
                    if tripped {
                        model = Model::default();
                        probes_this_period = 0;
                    }
                }
            }
        }
    }

    /// Invariant 3: merging two `resilience.*` counter registries equals
    /// recording both breakers' stats into one registry sequentially.
    #[test]
    fn registry_merge_equals_sequential_run(
        config in config_strategy(),
        first in proptest::collection::vec(event_strategy(), 1..60),
        second in proptest::collection::vec(event_strategy(), 1..60),
    ) {
        let drive = |events: &[Event]| {
            let clock = Arc::new(ManualClock::new());
            let mut breaker = CircuitBreaker::new(config, clock.clone());
            for event in events {
                match event {
                    Event::Advance(nanos) => clock.advance(*nanos),
                    Event::Allow => {
                        let _ = breaker.allow();
                    }
                    Event::Success => breaker.record_success(),
                    Event::Failure => breaker.record_failure(),
                }
            }
            breaker.stats()
        };
        let stats_a = drive(&first);
        let stats_b = drive(&second);

        // Split run: one registry per breaker, then merge via absorb.
        let registry_a = MetricsRegistry::new();
        let registry_b = MetricsRegistry::new();
        stats_a.record_metrics(&registry_a, "resilience.breaker");
        stats_b.record_metrics(&registry_b, "resilience.breaker");
        registry_a
            .absorb(&registry_b.snapshot())
            .expect("counter registries always merge");

        // Sequential run: both breakers into one registry.
        let sequential = MetricsRegistry::new();
        stats_a.record_metrics(&sequential, "resilience.breaker");
        stats_b.record_metrics(&sequential, "resilience.breaker");

        prop_assert_eq!(
            registry_a.snapshot().to_json(),
            sequential.snapshot().to_json()
        );
    }
}
