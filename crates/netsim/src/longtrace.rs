//! Unbounded-horizon trace generation for streaming soak tests.
//!
//! The batch simulator ([`crate::enterprise`]) materializes a whole trace
//! up front, which caps how long a soak can run. This module generates
//! traffic *tick by tick*: [`LongTraceGenerator::tick_events`] is a pure
//! function of `(seed, tick)`, so a two-minute soak and a two-day soak
//! walk the same infinite trace, any tick can be regenerated without
//! replaying history, and shards can be fed out of one generator without
//! coordination.
//!
//! The mix is tuned for exercising the streaming engine's state bounds:
//!
//! * **Persistent beacons** — a fixed set of periodic pairs that survive
//!   every window and must keep their detection verdicts warm.
//! * **Churning benign pairs** — short-lived pairs born every tick and
//!   silent after a configurable lifetime, which drives cold-pair
//!   eviction (and occasional readmission when a name is reborn).
//! * **Background noise** — one-off events across a host pool and a
//!   small domain catalog.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::rngutil::{gaussian, poisson};
use crate::types::{HostId, ProxyEvent};

/// Parameters of the infinite trace.
#[derive(Debug, Clone)]
pub struct LongTraceConfig {
    /// Master seed; together with the tick index it fully determines
    /// every event.
    pub seed: u64,
    /// Tick length in seconds. Should match the streaming engine's
    /// schedule for soak tests, though nothing requires it.
    pub tick_seconds: u64,
    /// Number of persistent beaconing pairs.
    pub beacons: usize,
    /// Beacon callback period in seconds.
    pub beacon_period: u64,
    /// Gaussian jitter applied to each callback, as a fraction of the
    /// period (the paper's Fig. 2 perturbation).
    pub beacon_jitter: f64,
    /// Short-lived pairs born each tick.
    pub churn_pairs_per_tick: usize,
    /// Ticks a churned pair stays active after birth.
    pub churn_lifetime_ticks: u64,
    /// One-off background events per tick.
    pub noise_events_per_tick: usize,
    /// Size of the benign host pool (noise and churn sources).
    pub hosts: u32,
}

impl Default for LongTraceConfig {
    fn default() -> Self {
        Self {
            seed: 7,
            tick_seconds: 300,
            beacons: 4,
            beacon_period: 30,
            beacon_jitter: 0.02,
            churn_pairs_per_tick: 6,
            churn_lifetime_ticks: 3,
            noise_events_per_tick: 40,
            hosts: 64,
        }
    }
}

/// Tick-addressable trace generator. See the module docs.
#[derive(Debug, Clone)]
pub struct LongTraceGenerator {
    config: LongTraceConfig,
    beacon_domains: Vec<String>,
}

/// Odd multiplier decorrelating per-tick RNG streams (splitmix64's
/// golden-ratio increment).
const TICK_STREAM: u64 = 0x9E37_79B9_7F4A_7C15;

impl LongTraceGenerator {
    /// Builds the generator; beacon destinations (DGA-style random
    /// labels) are fixed by the seed alone.
    pub fn new(config: LongTraceConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let beacon_domains = (0..config.beacons)
            .map(|_| {
                let label: String = (0..12)
                    .map(|_| char::from(b'a' + rng.random_range(0..26u8)))
                    .collect();
                format!("{label}.biz")
            })
            .collect();
        Self {
            config,
            beacon_domains,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &LongTraceConfig {
        &self.config
    }

    /// The persistent beacon destinations (ground truth for soaks).
    pub fn beacon_domains(&self) -> &[String] {
        &self.beacon_domains
    }

    /// All events of one tick, sorted by `(timestamp, host, domain)` —
    /// a pure function of `(seed, tick)`.
    pub fn tick_events(&self, tick: u64) -> Vec<ProxyEvent> {
        let c = &self.config;
        let mut rng = StdRng::seed_from_u64(c.seed ^ tick.wrapping_mul(TICK_STREAM));
        let start = tick * c.tick_seconds;
        let end = start + c.tick_seconds;
        let mut events = Vec::new();

        // Persistent beacons: one callback per period gridpoint, jittered
        // but clamped into the tick so tick-addressability holds.
        for (b, domain) in self.beacon_domains.iter().enumerate() {
            let host = HostId(1_000_000 + b as u32);
            let mut grid = start.next_multiple_of(c.beacon_period.max(1));
            while grid < end {
                let jitter = gaussian(&mut rng, 0.0, c.beacon_jitter * c.beacon_period as f64);
                let ts = (grid as f64 + jitter) as u64;
                events.push(ProxyEvent {
                    timestamp: ts.clamp(start, end - 1),
                    host,
                    source_ip: 0x0A00_0000 | host.0,
                    domain: domain.clone(),
                    url_path: "cb".into(),
                });
                grid += c.beacon_period.max(1);
            }
        }

        // Churning pairs: every cohort born within the lifetime window is
        // still active this tick; each emits a Poisson burst.
        let first_born = tick.saturating_sub(c.churn_lifetime_ticks.saturating_sub(1));
        for born in first_born..=tick {
            for j in 0..c.churn_pairs_per_tick {
                let host = HostId((born.wrapping_mul(31) as u32 + j as u32) % c.hosts);
                let domain = format!("srv-{born}-{j}.cdn.test");
                for _ in 0..poisson(&mut rng, 3.0).max(1) {
                    events.push(ProxyEvent {
                        timestamp: rng.random_range(start..end),
                        host,
                        source_ip: 0x0A00_0000 | host.0,
                        domain: domain.clone(),
                        url_path: "asset".into(),
                    });
                }
            }
        }

        // Background noise over a small popular catalog.
        for _ in 0..c.noise_events_per_tick {
            let host = HostId(rng.random_range(0..c.hosts));
            let domain = format!("news-{}.test", rng.random_range(0..24u32));
            events.push(ProxyEvent {
                timestamp: rng.random_range(start..end),
                host,
                source_ip: 0x0A00_0000 | host.0,
                domain,
                url_path: "index".into(),
            });
        }

        events.sort_by(|a, b| {
            (a.timestamp, a.host, &a.domain).cmp(&(b.timestamp, b.host, &b.domain))
        });
        events
    }

    /// Concatenates the events of `ticks` in order — the batch view of
    /// the same trace.
    pub fn events(&self, ticks: std::ops::Range<u64>) -> Vec<ProxyEvent> {
        ticks.flat_map(|t| self.tick_events(t)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_events_are_pure_in_seed_and_tick() {
        let g1 = LongTraceGenerator::new(LongTraceConfig::default());
        let g2 = LongTraceGenerator::new(LongTraceConfig::default());
        // Same tick twice, and out of order: identical events.
        assert_eq!(g1.tick_events(5), g2.tick_events(5));
        let late_first = g2.tick_events(9);
        let _ = g2.tick_events(0);
        assert_eq!(g2.tick_events(9), late_first);
        let other = LongTraceGenerator::new(LongTraceConfig {
            seed: 8,
            ..LongTraceConfig::default()
        });
        assert_ne!(g1.tick_events(5), other.tick_events(5));
    }

    #[test]
    fn events_stay_inside_their_tick() {
        let g = LongTraceGenerator::new(LongTraceConfig::default());
        let tick_seconds = g.config().tick_seconds;
        for tick in [0u64, 3, 17] {
            let events = g.tick_events(tick);
            assert!(!events.is_empty());
            for e in &events {
                assert!(e.timestamp >= tick * tick_seconds);
                assert!(e.timestamp < (tick + 1) * tick_seconds);
            }
            assert!(events.windows(2).all(|w| w[0].timestamp <= w[1].timestamp));
        }
    }

    #[test]
    fn beacons_fire_every_tick_and_churn_expires() {
        let g = LongTraceGenerator::new(LongTraceConfig::default());
        let beacon = g.beacon_domains()[0].clone();
        for tick in 0..6u64 {
            let events = g.tick_events(tick);
            assert!(
                events.iter().any(|e| e.domain == beacon),
                "beacon silent in tick {tick}"
            );
        }
        // A cohort born at tick 0 lives churn_lifetime_ticks ticks and
        // then goes permanently quiet — that silence is what drives the
        // streaming engine's cold-pair eviction.
        let lifetime = g.config().churn_lifetime_ticks;
        let born0 = |events: &[ProxyEvent]| events.iter().any(|e| e.domain.starts_with("srv-0-"));
        assert!(born0(&g.tick_events(lifetime - 1)));
        assert!(!born0(&g.tick_events(lifetime)));
        assert!(!born0(&g.tick_events(lifetime + 4)));
    }

    #[test]
    fn batch_view_concatenates_ticks() {
        let g = LongTraceGenerator::new(LongTraceConfig::default());
        let batch = g.events(0..3);
        let concat: Vec<ProxyEvent> = (0..3).flat_map(|t| g.tick_events(t)).collect();
        assert_eq!(batch, concat);
    }
}
