//! Table VI — top-5 cases reported in the 10-day trace.
//!
//! Paper (Oct 2013, 10 days): 828 suspicious communication pairs breaking
//! down into 412 unique destinations / 696 unique clients; the five
//! top-ranked destinations were all confirmed (Zeus.Zbot at 180 s twice,
//! ZeroAccess at 63 s twice and 1242 s once).
//!
//! This binary builds a 10-day trace whose campaigns copy those periods,
//! runs the pipeline daily, and prints the 5 top-ranked destinations with
//! their smallest period and client count.

#![warn(clippy::unwrap_used)]

use std::collections::{HashMap, HashSet};

use baywatch_bench::{render_table, save_json};
use baywatch_core::pipeline::{Baywatch, BaywatchConfig};
use baywatch_core::record::LogRecord;
use baywatch_netsim::enterprise::{Campaign, EnterpriseConfig, EnterpriseSimulator};
use baywatch_netsim::malware::MalwareProfile;
use baywatch_netsim::types::HostId;

fn main() {
    println!("=== Table VI: top 5 cases reported in the 10-day trace ===\n");

    // Base enterprise without infections; we inject the paper's exact
    // campaign periods manually.
    let sim = EnterpriseSimulator::new(EnterpriseConfig {
        hosts: 120,
        days: 10,
        infection_rate: 0.0,
        seed: 0x0C7_2013,
        ..Default::default()
    });
    let zeus_profiles = [
        (MalwareProfile::Zeus { period: 180.0 }, 1usize),
        (MalwareProfile::Zeus { period: 180.0 }, 1),
        (MalwareProfile::ZeroAccess { period: 63.0 }, 3),
        (MalwareProfile::ZeroAccess { period: 63.0 }, 1),
        (MalwareProfile::ZeroAccess { period: 1242.0 }, 1),
    ];

    // Hand-crafted campaigns appended to the simulator state via its public
    // trace assembly: we regenerate events per day and merge in the beacons.
    let campaigns: Vec<Campaign> = zeus_profiles
        .iter()
        .enumerate()
        .map(|(i, (profile, n_hosts))| Campaign {
            profile: *profile,
            domain: profile.domain(7_000 + i as u64),
            hosts: (0..*n_hosts).map(|h| HostId((i * 7 + h) as u32)).collect(),
            start_day: 0,
        })
        .collect();
    for c in &campaigns {
        println!(
            "injected: {:?} -> {} ({} clients)",
            c.profile,
            c.domain,
            c.hosts.len()
        );
    }
    println!();

    let mut engine = Baywatch::new(BaywatchConfig {
        local_tau: 0.05,
        ..Default::default()
    });

    let mut best_scores: HashMap<String, f64> = HashMap::new();
    let mut periods: HashMap<String, f64> = HashMap::new();
    let mut clients: HashMap<String, HashSet<String>> = HashMap::new();
    let mut pair_count = 0usize;

    for day in 0..sim.config().days {
        let mut records: Vec<LogRecord> = sim
            .generate_day(day)
            .iter()
            .map(|e| {
                LogRecord::new(
                    e.timestamp,
                    e.host.to_string(),
                    e.domain.clone(),
                    e.url_path.clone(),
                )
            })
            .collect();
        // Merge injected beacons.
        let day_start = sim.config().start_epoch + day as u64 * 86_400;
        for (ci, c) in campaigns.iter().enumerate() {
            for (hi, host) in c.hosts.iter().enumerate() {
                let seed = (ci * 31 + hi) as u64 ^ 0xBEEF;
                for t in c.profile.schedule(day_start, 86_400, seed) {
                    records.push(LogRecord::new(
                        t,
                        host.to_string(),
                        c.domain.clone(),
                        format!("{:05x}", t % 0xFFFFF),
                    ));
                }
            }
        }

        let report = engine.analyze(records);
        pair_count += report.stats.periodic;
        for rc in &report.ranked {
            let d = rc.case.pair.destination.clone();
            let e = best_scores.entry(d.clone()).or_insert(f64::NEG_INFINITY);
            *e = e.max(rc.score);
            if let Some(p) = rc.case.smallest_period() {
                let pe = periods.entry(d.clone()).or_insert(f64::INFINITY);
                *pe = pe.min(p);
            }
            clients
                .entry(d)
                .or_default()
                .insert(rc.case.pair.source.clone());
        }
    }

    let mut ranked: Vec<(String, f64)> = best_scores.into_iter().collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1));

    println!("suspicious periodic pairs over 10 days: {pair_count}");
    println!("distinct flagged destinations: {}\n", ranked.len());

    let truth_domains: HashSet<&String> = campaigns.iter().map(|c| &c.domain).collect();
    let rows: Vec<Vec<String>> = ranked
        .iter()
        .take(5)
        .enumerate()
        .map(|(i, (d, score))| {
            let shown = if d.len() > 30 {
                format!("{}[..]{}", &d[..11], &d[d.len() - 7..])
            } else {
                d.clone()
            };
            vec![
                (i + 1).to_string(),
                shown,
                periods
                    .get(d)
                    .map(|p| format!("{p:.0} seconds"))
                    .unwrap_or_else(|| "-".into()),
                clients.get(d).map(|c| c.len()).unwrap_or(0).to_string(),
                format!("{score:.2}"),
                if truth_domains.contains(d) {
                    "CONFIRMED"
                } else {
                    "FP"
                }
                .into(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "Rank",
                "Domain name",
                "Smallest period",
                "Clients",
                "score",
                "verdict"
            ],
            &rows
        )
    );
    println!("paper: all 5 top-ranked confirmed (Zeus.Zbot 180 s ×2, ZeroAccess 63 s ×2 + 1242 s)");

    let confirmed_in_top5 = ranked
        .iter()
        .take(5)
        .filter(|(d, _)| truth_domains.contains(d))
        .count();
    assert!(
        confirmed_in_top5 >= 4,
        "only {confirmed_in_top5}/5 of the top-ranked cases are injected campaigns"
    );

    save_json(
        "table06_top5",
        &ranked
            .iter()
            .take(5)
            .map(|(d, s)| (d.clone(), *s, periods.get(d).copied()))
            .collect::<Vec<_>>(),
    );
}
