//! Fixture: a deterministic crate carrying one planted violation per rule
//! plus the matching negative (suppressed) form.

use std::collections::HashMap;

pub fn ambient(n: u64) -> u64 {
    let mut r = rand::rng();
    n + r.random_range(0..2)
}

pub fn clocky() -> u64 {
    let _t = std::time::SystemTime::now();
    0
}

pub fn float_sort(xs: &mut Vec<f64>) {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
}

pub fn float_sort_total(xs: &mut Vec<f64>) {
    xs.sort_by(f64::total_cmp);
}

pub fn hash_leak(m: &HashMap<String, u32>) -> Vec<u32> {
    let mut out = Vec::new();
    for v in m.values() {
        out.push(*v);
    }
    out
}

pub fn hash_sorted(m: &HashMap<String, u32>) -> Vec<u32> {
    let mut out: Vec<u32> = m.values().copied().collect();
    out.sort_unstable();
    out
}

pub fn hash_counted(m: &HashMap<String, u32>) -> usize {
    m.keys().count()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwraps_in_test_code_are_fine() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}

pub fn fs_peek(path: &str) -> bool {
    std::fs::read_to_string(path).is_ok()
}

pub fn fs_lookalike(fs: usize) -> usize {
    fs + 1
}
