//! BAYWATCH — robust beaconing detection for large-scale enterprise
//! networks (reproduction of Hu et al., DSN 2016).
//!
//! This umbrella crate re-exports the workspace so applications can depend
//! on a single crate:
//!
//! * [`core`] — the 8-step filtering pipeline ([`core::pipeline::Baywatch`]),
//! * [`timeseries`] — the periodicity-detection algorithm,
//! * [`langmodel`] — the DGA-scoring character language model,
//! * [`classifier`] — random-forest bootstrap investigation,
//! * [`mapreduce`] — the in-process MapReduce engine,
//! * [`netsim`] — the enterprise traffic simulator and noise models,
//! * [`obs`] — the metrics registry and stage tracer,
//! * [`resilience`] — circuit breakers, retry backoff and admission control,
//! * [`stats`] — the statistical substrate.
//!
//! See `examples/quickstart.rs` for the five-minute tour and DESIGN.md for
//! the system inventory.

pub use baywatch_classifier as classifier;
pub use baywatch_core as core;
pub use baywatch_langmodel as langmodel;
pub use baywatch_mapreduce as mapreduce;
pub use baywatch_netsim as netsim;
pub use baywatch_obs as obs;
pub use baywatch_resilience as resilience;
pub use baywatch_stats as stats;
pub use baywatch_timeseries as timeseries;

/// Converts a simulator event into a pipeline log record (the adapter the
/// examples and benches use).
pub fn record_from_event(event: &netsim::ProxyEvent) -> core::LogRecord {
    core::LogRecord::new(
        event.timestamp,
        event.host.to_string(),
        event.domain.clone(),
        event.url_path.clone(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::types::HostId;

    #[test]
    fn event_adapter_maps_fields() {
        let e = netsim::ProxyEvent {
            timestamp: 42,
            host: HostId(7),
            source_ip: 0x0A00_0001,
            domain: "d.com".into(),
            url_path: "tok".into(),
        };
        let r = record_from_event(&e);
        assert_eq!(r.timestamp, 42);
        assert_eq!(r.domain, "d.com");
        assert_eq!(r.url_token, "tok");
        assert_eq!(r.source, HostId(7).to_string());
    }
}
