//! Determinism regression tests: the full pipeline must produce identical
//! ranked output run-to-run and regardless of how the work is spread over
//! MapReduce worker threads.
//!
//! This pins two behaviors at once: the fixed-seed permutation threshold
//! (`timeseries::permutation` derives every shuffle from one seeded
//! `StdRng`, so the power threshold is a pure function of the series), and
//! the thread-local spectral workspace (cached FFT plans must be
//! numerically transparent — a pair's report cannot depend on which worker
//! thread, with whatever warm plan cache, happened to process it).

use baywatch::core::pipeline::{Baywatch, BaywatchConfig};
use baywatch::core::record::LogRecord;
use baywatch::mapreduce::JobConfig;
use baywatch::timeseries::detector::{DetectorConfig, PeriodicityDetector};
use baywatch::timeseries::workspace::SpectralWorkspace;

/// A mixed window: three beacons (one jitter-free, one with coarse
/// timestamp quantization, one slow) plus deterministic human-like noise.
fn window_records() -> Vec<LogRecord> {
    let mut records = Vec::new();
    for i in 0..120u64 {
        records.push(LogRecord::new(
            10_000 + i * 60,
            "victim-a",
            "qzkxwvbn.com",
            "beacon",
        ));
    }
    for i in 0..90u64 {
        records.push(LogRecord::new(
            20_000 + i * 83,
            "victim-b",
            "xkvqzw.net",
            "cb",
        ));
    }
    for i in 0..70u64 {
        records.push(LogRecord::new(
            5_000 + i * 420,
            "victim-c",
            "wvbnqz.org",
            "ping",
        ));
    }
    for h in 0..10u64 {
        let mut t = 10_000u64;
        for i in 0..50u64 {
            t += 1 + (h * 7919 + i * i * 104_729) % 700;
            records.push(LogRecord::new(
                t,
                format!("host{h}"),
                format!("site{h}.example.org"),
                "index",
            ));
        }
    }
    records
}

fn config_with(threads: usize, partitions: usize) -> BaywatchConfig {
    BaywatchConfig {
        // Tiny test population: disable the paper's τ_P = 1% local
        // whitelist, which would otherwise swallow every destination.
        local_tau: 0.9,
        mapreduce: JobConfig {
            threads,
            partitions,
        },
        ..Default::default()
    }
}

fn ranked_fingerprint(cfg: BaywatchConfig) -> Vec<(String, f64, Vec<f64>)> {
    ranked_fingerprint_of(cfg, window_records())
}

fn ranked_fingerprint_of(
    cfg: BaywatchConfig,
    records: Vec<LogRecord>,
) -> Vec<(String, f64, Vec<f64>)> {
    let mut engine = Baywatch::new(cfg);
    let report = engine.analyze(records);
    assert!(
        !report.ranked.is_empty(),
        "window must produce at least one ranked case"
    );
    report
        .ranked
        .iter()
        .map(|r| {
            (
                format!("{}→{}", r.case.pair.source, r.case.pair.destination),
                r.score,
                r.case.candidates.iter().map(|c| c.period).collect(),
            )
        })
        .collect()
}

#[test]
fn analyze_is_deterministic_run_to_run() {
    let a = ranked_fingerprint(config_with(4, 8));
    let b = ranked_fingerprint(config_with(4, 8));
    assert_eq!(a, b);
}

/// Log collectors deliver records in whatever order the sensors flushed
/// them; the ranked report must not care. Reversal and a seeded
/// Fisher–Yates shuffle (hand-rolled xorshift, so the test itself is
/// deterministic) must both produce the identical fingerprint.
#[test]
fn analyze_is_independent_of_input_record_order() {
    let base = ranked_fingerprint(config_with(4, 8));

    let mut reversed = window_records();
    reversed.reverse();
    assert_eq!(
        base,
        ranked_fingerprint_of(config_with(4, 8), reversed),
        "ranked output changed when the window was reversed"
    );

    let mut shuffled = window_records();
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    for i in (1..shuffled.len()).rev() {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        shuffled.swap(i, (state % (i as u64 + 1)) as usize);
    }
    assert_eq!(
        base,
        ranked_fingerprint_of(config_with(4, 8), shuffled),
        "ranked output changed when the window was shuffled"
    );
}

#[test]
fn analyze_is_deterministic_across_thread_counts() {
    let base = ranked_fingerprint(config_with(1, 8));
    for threads in [2usize, 4, 8] {
        let other = ranked_fingerprint(config_with(threads, 8));
        assert_eq!(base, other, "ranked output changed with {threads} threads");
    }
}

#[test]
fn analyze_is_deterministic_across_partition_counts() {
    let base = ranked_fingerprint(config_with(4, 1));
    for partitions in [4usize, 32] {
        let other = ranked_fingerprint(config_with(4, partitions));
        assert_eq!(
            base, other,
            "ranked output changed with {partitions} partitions"
        );
    }
}

/// A detection report must not depend on which thread (with whatever
/// already-warm plan cache) runs it: cold workspace, warm workspace and
/// foreign-thread workspace all agree bit-for-bit.
#[test]
fn detection_report_is_workspace_independent() {
    let timestamps: Vec<u64> = (0..150u64).map(|i| 1_000_000 + i * 83).collect();
    let detector = PeriodicityDetector::new(DetectorConfig::default());

    let cold = detector
        .detect_in(&SpectralWorkspace::new(), &timestamps)
        .unwrap();

    let warm_ws = SpectralWorkspace::new();
    // Warm the cache on unrelated lengths first.
    let other: Vec<u64> = (0..80u64).map(|i| i * 61).collect();
    detector.detect_in(&warm_ws, &other).unwrap();
    let warm = detector.detect_in(&warm_ws, &timestamps).unwrap();

    let foreign = std::thread::spawn({
        let timestamps = timestamps.clone();
        move || {
            PeriodicityDetector::new(DetectorConfig::default())
                .detect(&timestamps)
                .unwrap()
        }
    })
    .join()
    .unwrap();

    assert_eq!(cold, warm);
    assert_eq!(cold, foreign);
}
