//! Periodogram (DFT power spectrum) analysis — Step 1 of the BAYWATCH
//! detection algorithm.
//!
//! The mean-centered count series is transformed with an FFT; the power at
//! frequency bin `k` is `|X(k)|² / N`. Only bins `1..=⌊N/2⌋` carry
//! independent information for a real signal; bin `k` maps to frequency
//! `k / (N·dt)` Hz and period `N·dt / k` seconds, where `dt` is the
//! series' bin width.
//!
//! # One-sided scaling convention
//!
//! Every line carries `power = |X(k)|² / N` — the *unfolded* per-bin
//! power, identical for interior bins and (even `N`) the Nyquist bin
//! `k = N/2`. Interior bins have a conjugate mirror at `N − k` that is
//! *not* folded into the line, so the one-sided sum
//! [`total_energy`](Periodogram::total_energy) is roughly *half* the
//! series' energy; the Nyquist bin and the (excluded, ≈0 after mean
//! centering) DC bin are self-conjugate and appear exactly once in the
//! full spectrum. The exact Parseval identity is therefore
//!
//! ```text
//! Σ_t x_t² = |X(0)|²/N + 2·Σ_{k=1}^{⌈N/2⌉−1} |X(k)|²/N + [N even]·|X(N/2)|²/N
//!          = |X(0)|²/N + two_sided_energy()
//! ```
//!
//! with `X(0) = Σ_t x_t = 0` up to the rounding residue of mean
//! centering. [`two_sided_energy`](Periodogram::two_sided_energy) folds
//! the mirrors back (doubling interior bins, counting Nyquist once);
//! `parseval_energy_matches_variance` pins the identity exactly. The
//! per-line scaling is deliberately uniform — the permutation threshold
//! compares like against like (shuffled maxima use the same convention),
//! so folding a ×2 into interior lines would only rescale both sides.

use crate::series::TimeSeries;
use crate::workspace::{with_thread_workspace, SpectralWorkspace};

/// A single spectral line of the periodogram.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpectralLine {
    /// DFT bin index (1-based within the half spectrum).
    pub bin: usize,
    /// Frequency in hertz.
    pub frequency: f64,
    /// Corresponding period in seconds (`1 / frequency`).
    pub period: f64,
    /// Power `|X(k)|² / N`.
    pub power: f64,
}

/// The one-sided power spectrum of a [`TimeSeries`].
///
/// # Example
///
/// ```
/// use baywatch_timeseries::series::TimeSeries;
/// use baywatch_timeseries::periodogram::Periodogram;
///
/// // 1 event every 8 s, observed for 512 s at 1 s bins.
/// let timestamps: Vec<u64> = (0..64).map(|i| i * 8).collect();
/// let ts = TimeSeries::from_timestamps(&timestamps, 1).unwrap();
/// let pg = Periodogram::compute(&ts);
/// let peak = pg.max_line().unwrap();
/// assert!((peak.period - 8.0).abs() < 0.5, "period = {}", peak.period);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Periodogram {
    lines: Vec<SpectralLine>,
    n: usize,
    dt: f64,
}

impl Periodogram {
    /// Computes the one-sided periodogram of the series (mean-centered
    /// before the FFT so the DC component is excluded), using the calling
    /// thread's shared [`SpectralWorkspace`].
    pub fn compute(series: &TimeSeries) -> Self {
        with_thread_workspace(|ws| Self::compute_in(ws, series))
    }

    /// Like [`Periodogram::compute`] with an explicit workspace, so callers
    /// that already hold one (the detector hot path) skip the thread-local
    /// lookup.
    pub fn compute_in(ws: &SpectralWorkspace, series: &TimeSeries) -> Self {
        Self::from_samples_in(ws, &series.centered(), series.scale() as f64)
    }

    /// Computes the periodogram of arbitrary mean-centered samples with bin
    /// width `dt` seconds. Exposed for the permutation filter, which
    /// transforms shuffled copies of the same samples.
    pub fn from_samples(samples: &[f64], dt: f64) -> Self {
        with_thread_workspace(|ws| Self::from_samples_in(ws, samples, dt))
    }

    /// Like [`Periodogram::from_samples`] with an explicit workspace: the
    /// FFT plan comes from the workspace's cache and the transform runs in
    /// its recycled buffer. In the workspace's default
    /// [`RealHalf`](crate::workspace::SpectralMode::RealHalf) mode an
    /// even-length series runs through the packed real-to-complex plan —
    /// half the transform work; odd lengths and
    /// [`ComplexFull`](crate::workspace::SpectralMode::ComplexFull)
    /// workspaces run the legacy full complex transform, bit-for-bit.
    pub fn from_samples_in(ws: &SpectralWorkspace, samples: &[f64], dt: f64) -> Self {
        let n = samples.len();
        if n < 4 {
            return Self {
                lines: Vec::new(),
                n,
                dt,
            };
        }
        let half = n / 2;
        let lines = ws.with_half_spectrum(samples, |spectrum| {
            let mut lines = Vec::with_capacity(half);
            for (k, value) in spectrum.iter().enumerate().skip(1) {
                let power = value.norm_sqr() / n as f64;
                let frequency = k as f64 / (n as f64 * dt);
                lines.push(SpectralLine {
                    bin: k,
                    frequency,
                    period: 1.0 / frequency,
                    power,
                });
            }
            lines
        });
        Self { lines, n, dt }
    }

    /// All spectral lines, ordered by increasing frequency.
    pub fn lines(&self) -> &[SpectralLine] {
        &self.lines
    }

    /// Number of samples the spectrum was computed from.
    pub fn sample_count(&self) -> usize {
        self.n
    }

    /// Sample spacing in seconds.
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// The maximum power across all lines, or `0.0` for a degenerate
    /// spectrum. This is the `p_max` statistic of the permutation filter.
    pub fn max_power(&self) -> f64 {
        self.lines.iter().map(|l| l.power).fold(0.0, f64::max)
    }

    /// The spectral line with maximum power, if the spectrum is non-empty.
    pub fn max_line(&self) -> Option<SpectralLine> {
        self.lines
            .iter()
            .copied()
            .max_by(|a, b| a.power.total_cmp(&b.power))
    }

    /// Lines whose power strictly exceeds `threshold`, sorted by descending
    /// power — the candidate set handed to the pruning step.
    pub fn lines_above(&self, threshold: f64) -> Vec<SpectralLine> {
        let mut out: Vec<SpectralLine> = self
            .lines
            .iter()
            .copied()
            .filter(|l| l.power > threshold)
            .collect();
        out.sort_by(|a, b| b.power.total_cmp(&a.power));
        out
    }

    /// Total spectral energy (sum of line powers, each counted once); by
    /// Parseval's relation this tracks *roughly half* the variance of the
    /// centered series — see the module docs for the exact convention and
    /// [`Periodogram::two_sided_energy`] for the exact identity.
    pub fn total_energy(&self) -> f64 {
        self.lines.iter().map(|l| l.power).sum()
    }

    /// The power of the Nyquist line `k = n/2`: `Some` only for even `n`
    /// (odd-length spectra have no self-conjugate top bin), `None` for odd
    /// `n` or a degenerate (`n < 4`) spectrum.
    pub fn nyquist_power(&self) -> Option<f64> {
        if self.n % 2 == 0 {
            self.lines.last().map(|l| l.power)
        } else {
            None
        }
    }

    /// The energy of the *full* (two-sided) spectrum, excluding the DC
    /// bin: interior lines are folded back with their conjugate mirrors
    /// (×2) while the self-conjugate Nyquist line (even `n` only) counts
    /// once. By Parseval this equals `Σ_t x_t²` of the mean-centered
    /// samples exactly (up to FFT rounding and the centering residue in
    /// the excluded DC bin).
    pub fn two_sided_energy(&self) -> f64 {
        let total: f64 = self.lines.iter().map(|l| l.power).sum();
        match self.nyquist_power() {
            Some(nyquist) => 2.0 * total - nyquist,
            None => 2.0 * total,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::TimeSeries;

    fn sine_series(n: usize, period_bins: f64, dt: u64) -> TimeSeries {
        let values: Vec<f64> = (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * i as f64 / period_bins).sin() + 1.0)
            .collect();
        TimeSeries::from_values(0, dt, values).unwrap()
    }

    #[test]
    fn pure_sine_peak_at_true_period() {
        let ts = sine_series(1024, 16.0, 1);
        let pg = Periodogram::compute(&ts);
        let peak = pg.max_line().unwrap();
        assert!((peak.period - 16.0).abs() < 0.3, "period = {}", peak.period);
    }

    #[test]
    fn period_respects_time_scale() {
        // Same shape, 60 s bins: period should be 16 * 60 = 960 s.
        let ts = sine_series(1024, 16.0, 60);
        let pg = Periodogram::compute(&ts);
        let peak = pg.max_line().unwrap();
        assert!(
            (peak.period - 960.0).abs() < 15.0,
            "period = {}",
            peak.period
        );
    }

    #[test]
    fn impulse_train_peak() {
        // Events every 10 s observed at 1 s bins for ~1000 s.
        let timestamps: Vec<u64> = (0..100).map(|i| i * 10).collect();
        let ts = TimeSeries::from_timestamps(&timestamps, 1).unwrap();
        let pg = Periodogram::compute(&ts);
        let peak = pg.max_line().unwrap();
        // Impulse trains put energy at the fundamental and harmonics; the
        // fundamental (10 s) or a harmonic (5, 3.33, 2.5, 2) may carry the
        // max. All are divisors of 10.
        let ratio = 10.0 / peak.period;
        assert!(
            (ratio - ratio.round()).abs() < 0.05,
            "peak period {} is not a divisor of 10",
            peak.period
        );
    }

    #[test]
    fn short_series_yields_empty_spectrum() {
        let ts = TimeSeries::from_values(0, 1, vec![1.0, 0.0, 1.0]).unwrap();
        let pg = Periodogram::compute(&ts);
        assert!(pg.lines().is_empty());
        assert_eq!(pg.max_power(), 0.0);
        assert!(pg.max_line().is_none());
    }

    #[test]
    fn constant_series_has_no_power() {
        let ts = TimeSeries::from_values(0, 1, vec![3.0; 256]).unwrap();
        let pg = Periodogram::compute(&ts);
        assert!(pg.max_power() < 1e-18);
    }

    #[test]
    fn lines_above_sorted_descending() {
        let ts = sine_series(512, 8.0, 1);
        let pg = Periodogram::compute(&ts);
        let lines = pg.lines_above(0.0);
        for w in lines.windows(2) {
            assert!(w[0].power >= w[1].power);
        }
        assert_eq!(lines.len(), pg.lines().len());
    }

    #[test]
    fn lines_above_high_threshold_empty() {
        let ts = sine_series(512, 8.0, 1);
        let pg = Periodogram::compute(&ts);
        assert!(pg.lines_above(pg.max_power()).is_empty());
    }

    #[test]
    fn parseval_energy_matches_variance() {
        // Exact accounting across even and odd lengths: folding the
        // conjugate mirrors back (×2 interior, Nyquist once, DC ≈ 0 after
        // centering) recovers the centered sum of squares to FFT rounding.
        // The old tolerance-based window (0.3·var .. var) hid the even-n
        // Nyquist/DC bookkeeping entirely.
        for n in [1024usize, 1023, 100, 61] {
            let ts = sine_series(n, 32.0, 1);
            let pg = Periodogram::compute(&ts);
            let ss: f64 = ts.centered().iter().map(|v| v * v).sum();
            let got = pg.two_sided_energy();
            assert!(
                (got - ss).abs() <= 1e-9 * ss.max(1.0),
                "n={n}: two-sided {got} vs Σx² {ss}"
            );
            // The one-sided sum holds at least half the energy (interior
            // mirrors are the only discount) and never exceeds the total.
            let e = pg.total_energy();
            assert!(
                e >= 0.5 * ss - 1e-9 && e <= ss + 1e-9,
                "n={n}: e={e} ss={ss}"
            );
        }
    }

    #[test]
    fn nyquist_bin_exact_for_even_length() {
        // An alternating series concentrates all its energy in the
        // self-conjugate Nyquist bin; counting it twice (the pre-fix
        // mirror-folding mistake) would double the Parseval sum.
        let values: Vec<f64> = (0..64)
            .map(|i| if i % 2 == 0 { 2.0 } else { 0.0 })
            .collect();
        let ts = TimeSeries::from_values(0, 1, values).unwrap();
        let pg = Periodogram::compute(&ts);
        let nyquist = pg.nyquist_power().expect("even n has a Nyquist line");
        assert_eq!(pg.lines().last().unwrap().bin, 32);
        // Centered series is ±1: Σx² = 64, all of it at Nyquist.
        assert!((nyquist - 64.0).abs() <= 1e-9 * 64.0, "nyquist = {nyquist}");
        assert!((pg.two_sided_energy() - 64.0).abs() <= 1e-9 * 64.0);
        assert_eq!(pg.max_line().unwrap().bin, 32);
    }

    #[test]
    fn odd_length_has_no_nyquist_line() {
        let ts = sine_series(63, 8.0, 1);
        let pg = Periodogram::compute(&ts);
        assert_eq!(pg.nyquist_power(), None);
        assert_eq!(pg.lines().last().unwrap().bin, 31);
        // Degenerate spectra have no Nyquist line either.
        let tiny = TimeSeries::from_values(0, 1, vec![1.0, 0.0]).unwrap();
        assert_eq!(Periodogram::compute(&tiny).nyquist_power(), None);
    }

    #[test]
    fn frequency_period_inverse() {
        let ts = sine_series(256, 8.0, 1);
        let pg = Periodogram::compute(&ts);
        for l in pg.lines() {
            assert!((l.frequency * l.period - 1.0).abs() < 1e-12);
        }
    }
}
