//! The end-to-end periodicity detector: Step 1 (periodogram + permutation
//! threshold) → Step 2 (pruning) → Step 3 (ACF verification), plus optional
//! GMM multi-period analysis.
//!
//! This is the "time series analysis" phase of the BAYWATCH architecture
//! (Fig. 3 of the paper), applied to one communication pair at a time.

use std::sync::Arc;

use baywatch_obs::{Buckets, Clock, Counter, Histogram, MetricsRegistry};

use crate::acf::{Autocorrelation, HillParams};
use crate::budget::{BudgetSpec, ExecBudget};
use crate::gmm::{select_gmm_budgeted, Gmm, GmmConfig};
use crate::periodogram::Periodogram;
use crate::permutation::{permutation_threshold_budgeted, PermutationConfig};
use crate::prune::{prune_candidates, PruneConfig, PruneDecision};
use crate::series::{intervals_of, TimeSeries};
use crate::workspace::{with_thread_workspace, SpectralWorkspace};
use crate::TimeSeriesError;

/// Configuration of the full detection pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectorConfig {
    /// Bin width (seconds) used when constructing the count series
    /// (1 s at the finest granularity, per §VII-A).
    pub time_scale: u64,
    /// Minimum number of events required to attempt detection.
    pub min_events: usize,
    /// Upper bound on series length in bins (cost guard for very long
    /// spans; series are truncated, not rejected).
    pub max_bins: usize,
    /// Permutation-filter settings (Step 1).
    pub permutation: PermutationConfig,
    /// Pruning settings (Step 2).
    pub prune: PruneConfig,
    /// ACF hill-verification settings (Step 3).
    pub hill: HillParams,
    /// Cap on the number of candidates carried from Step 1 into pruning
    /// (strongest-power first).
    pub max_candidates: usize,
    /// Whether to fit a GMM to the interval list for multi-period analysis.
    pub fit_gmm: bool,
    /// GMM settings (used when `fit_gmm` is set).
    pub gmm: GmmConfig,
    /// Per-pair execution budget (wall clock and/or work units). The
    /// default is unlimited; when armed, a pair that exceeds it aborts
    /// with [`TimeSeriesError::BudgetExhausted`] at the next kernel
    /// checkpoint instead of stalling a worker.
    pub budget: BudgetSpec,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        Self {
            time_scale: 1,
            min_events: 8,
            max_bins: 1 << 20,
            permutation: PermutationConfig::default(),
            prune: PruneConfig::default(),
            hill: HillParams::default(),
            max_candidates: 16,
            fit_gmm: true,
            gmm: GmmConfig::default(),
            budget: BudgetSpec::UNLIMITED,
        }
    }
}

/// A verified candidate period — the `CandidatePeriod` record of the
/// paper's beaconing-detection MapReduce job (§VII-D).
#[derive(Debug, Clone, PartialEq)]
pub struct CandidatePeriod {
    /// Frequency in hertz.
    pub frequency: f64,
    /// Period in seconds (ACF-refined).
    pub period: f64,
    /// Periodogram power of the originating spectral line.
    pub power: f64,
    /// ACF score at the verified hill (periodicity strength, `[−1, 1]`).
    pub acf_score: f64,
    /// The t-test p-value from pruning, when the test ran.
    pub p_value: Option<f64>,
}

/// The outcome of running the detector on one communication pair.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectionReport {
    /// Verified candidate periods, strongest ACF score first.
    pub candidates: Vec<CandidatePeriod>,
    /// The permutation power threshold `p_T` used in Step 1.
    pub power_threshold: f64,
    /// Number of spectral lines that exceeded `p_T` before pruning.
    pub raw_candidates: usize,
    /// Pruning decisions for each raw candidate (diagnostics / Fig. 6).
    pub prune_decisions: Vec<PruneDecision>,
    /// GMM over the interval list, when requested and fittable.
    pub interval_gmm: Option<Gmm>,
    /// BIC per component count from GMM model selection.
    pub gmm_bics: Vec<f64>,
    /// EM iterations used by the selected GMM fit (0 when no GMM ran).
    pub gmm_iterations: usize,
    /// Whether the selected GMM's EM reached its tolerance before
    /// `max_iterations` — `Some(false)` flags a fit that was cut off
    /// mid-climb, `None` means no GMM was fitted.
    pub gmm_converged: Option<bool>,
    /// Inter-arrival intervals of the pair (seconds).
    pub intervals: Vec<f64>,
}

impl DetectionReport {
    /// Whether at least one verified periodic component was found.
    pub fn is_periodic(&self) -> bool {
        !self.candidates.is_empty()
    }

    /// The strongest verified candidate (highest ACF score), if any.
    pub fn best(&self) -> Option<&CandidatePeriod> {
        self.candidates.first()
    }

    /// The dominant periods (seconds) — verified candidates, deduplicated
    /// within `tolerance` relative difference.
    pub fn dominant_periods(&self, tolerance: f64) -> Vec<f64> {
        let mut out: Vec<f64> = Vec::new();
        for c in &self.candidates {
            if !out
                .iter()
                .any(|&p| (p - c.period).abs() <= tolerance * p.max(c.period))
            {
                out.push(c.period);
            }
        }
        out
    }
}

/// The BAYWATCH periodicity detector.
///
/// # Example
///
/// ```
/// use baywatch_timeseries::detector::{DetectorConfig, PeriodicityDetector};
///
/// let detector = PeriodicityDetector::new(DetectorConfig::default());
///
/// // 90 beacons, one every 300 s (5 min), with no jitter.
/// let ts: Vec<u64> = (0..90).map(|i| 1_000 + i * 300).collect();
/// let report = detector.detect(&ts).unwrap();
/// assert!(report.is_periodic());
///
/// // Irregular human-like traffic is not flagged.
/// let human: Vec<u64> = vec![0, 13, 15, 470, 471, 509, 3_600, 3_754, 9_000, 9_100, 15_000];
/// let report = detector.detect(&human).unwrap();
/// assert!(!report.is_periodic());
/// ```
#[derive(Debug, Clone)]
pub struct PeriodicityDetector {
    config: DetectorConfig,
    obs: Option<DetectorObs>,
}

impl PeriodicityDetector {
    /// Creates a detector with the given configuration.
    pub fn new(config: DetectorConfig) -> Self {
        Self { config, obs: None }
    }

    /// Attaches observability handles; every detection run then records
    /// per-pair counters and stage timings. See [`DetectorObs`].
    #[must_use]
    pub fn with_obs(mut self, obs: DetectorObs) -> Self {
        self.obs = Some(obs);
        self
    }

    /// The active configuration.
    pub fn config(&self) -> &DetectorConfig {
        &self.config
    }

    /// Runs the full Step 1 → Step 2 → Step 3 pipeline on sorted event
    /// timestamps (seconds).
    ///
    /// # Errors
    ///
    /// * [`TimeSeriesError::TooFewEvents`] if fewer than
    ///   [`DetectorConfig::min_events`] timestamps are supplied,
    /// * [`TimeSeriesError::UnsortedTimestamps`] for unsorted input,
    /// * [`TimeSeriesError::ZeroSpan`] when all events share one timestamp,
    /// * configuration errors from the sub-steps.
    pub fn detect(&self, timestamps: &[u64]) -> Result<DetectionReport, TimeSeriesError> {
        with_thread_workspace(|ws| self.detect_in(ws, timestamps))
    }

    /// Like [`PeriodicityDetector::detect`] with an explicit
    /// [`SpectralWorkspace`], so batch callers (the beaconing-detection
    /// MapReduce job) reuse one plan cache across every pair a worker
    /// thread processes.
    ///
    /// # Errors
    ///
    /// Same as [`PeriodicityDetector::detect`].
    pub fn detect_in(
        &self,
        ws: &SpectralWorkspace,
        timestamps: &[u64],
    ) -> Result<DetectionReport, TimeSeriesError> {
        self.detect_budgeted_in(ws, timestamps, &self.config.budget.start())
    }

    /// Like [`PeriodicityDetector::detect`] under an explicit, already
    /// armed [`ExecBudget`] (shared with a supervisor, e.g. the pipeline's
    /// window scheduler). [`DetectorConfig::budget`] is ignored in favour
    /// of the handle.
    ///
    /// # Errors
    ///
    /// Same as [`PeriodicityDetector::detect`], plus
    /// [`TimeSeriesError::BudgetExhausted`] when the budget runs out.
    pub fn detect_budgeted(
        &self,
        timestamps: &[u64],
        budget: &ExecBudget,
    ) -> Result<DetectionReport, TimeSeriesError> {
        with_thread_workspace(|ws| self.detect_budgeted_in(ws, timestamps, budget))
    }

    /// Like [`PeriodicityDetector::detect_budgeted`] with an explicit
    /// [`SpectralWorkspace`].
    ///
    /// # Errors
    ///
    /// Same as [`PeriodicityDetector::detect_budgeted`].
    pub fn detect_budgeted_in(
        &self,
        ws: &SpectralWorkspace,
        timestamps: &[u64],
        budget: &ExecBudget,
    ) -> Result<DetectionReport, TimeSeriesError> {
        if timestamps.len() < self.config.min_events {
            return Err(TimeSeriesError::TooFewEvents {
                required: self.config.min_events,
                actual: timestamps.len(),
            });
        }
        let intervals = intervals_of(timestamps)?;
        if timestamps.last() == timestamps.first() {
            return Err(TimeSeriesError::ZeroSpan);
        }

        let series = TimeSeries::from_timestamps(timestamps, self.config.time_scale)?
            .truncated(self.config.max_bins);
        self.detect_series_budgeted_in(ws, &series, intervals, budget)
    }

    /// Runs the pipeline on a pre-binned series (used after rescaling,
    /// §VII-B) with an explicit interval list.
    ///
    /// # Errors
    ///
    /// Same as [`PeriodicityDetector::detect`], minus timestamp validation.
    pub fn detect_series(
        &self,
        series: &TimeSeries,
        intervals: Vec<f64>,
    ) -> Result<DetectionReport, TimeSeriesError> {
        with_thread_workspace(|ws| self.detect_series_in(ws, series, intervals))
    }

    /// Like [`PeriodicityDetector::detect_series`] with an explicit
    /// [`SpectralWorkspace`]. All three FFT consumers — the periodogram,
    /// the m permutation rounds and the ACF — share the workspace's plan
    /// cache and scratch buffers.
    ///
    /// # Errors
    ///
    /// Same as [`PeriodicityDetector::detect_series`].
    pub fn detect_series_in(
        &self,
        ws: &SpectralWorkspace,
        series: &TimeSeries,
        intervals: Vec<f64>,
    ) -> Result<DetectionReport, TimeSeriesError> {
        self.detect_series_budgeted_in(ws, series, intervals, &self.config.budget.start())
    }

    /// Like [`PeriodicityDetector::detect_series_in`] under an explicit
    /// [`ExecBudget`]. Work-unit charges approximate the FFT/EM cost: one
    /// unit per series bin for the periodogram and the ACF, `n` per
    /// permutation round, one per ACF lag scanned, `n·k` per EM iteration.
    /// With an unlimited budget no checkpoint ever fires and the output —
    /// including every RNG stream — is byte-identical to the unbudgeted
    /// path.
    ///
    /// # Errors
    ///
    /// Same as [`PeriodicityDetector::detect_series`], plus
    /// [`TimeSeriesError::BudgetExhausted`].
    pub fn detect_series_budgeted_in(
        &self,
        ws: &SpectralWorkspace,
        series: &TimeSeries,
        intervals: Vec<f64>,
        budget: &ExecBudget,
    ) -> Result<DetectionReport, TimeSeriesError> {
        let result = self.detect_series_core(ws, series, intervals, budget);
        if let Some(obs) = &self.obs {
            obs.pairs_analyzed.inc();
            obs.series_bins.observe(series.len() as u64);
            match &result {
                Ok(report) => {
                    obs.raw_candidates.add(report.raw_candidates as u64);
                    obs.prune_survivors.add(
                        report
                            .prune_decisions
                            .iter()
                            .filter(|d| d.survived())
                            .count() as u64,
                    );
                    obs.acf_verified.add(report.candidates.len() as u64);
                    if report.interval_gmm.is_some() {
                        obs.gmm_fitted.inc();
                    }
                    if report.is_periodic() {
                        obs.pairs_periodic.inc();
                    }
                }
                Err(TimeSeriesError::BudgetExhausted) => obs.budget_exhausted.inc(),
                Err(_) => {}
            }
        }
        result
    }

    /// The Step 1 → 2 → 3 core; [`PeriodicityDetector::detect_series_budgeted_in`]
    /// wraps it to account outcomes so `?`-propagated budget exhaustion is
    /// still counted.
    fn detect_series_core(
        &self,
        ws: &SpectralWorkspace,
        series: &TimeSeries,
        intervals: Vec<f64>,
        budget: &ExecBudget,
    ) -> Result<DetectionReport, TimeSeriesError> {
        // Degenerate-input guard: drop non-finite intervals (NaN/∞ from
        // upstream arithmetic on corrupted timestamps) so every comparator
        // and statistic below operates on finite values. A pair reduced to
        // garbage yields "non-periodic", never a panic.
        let intervals: Vec<f64> = intervals.into_iter().filter(|i| i.is_finite()).collect();

        // ---- Step 1: periodogram + permutation threshold. ----
        budget.checkpoint(series.len() as u64)?;
        let t0 = self.obs.as_ref().map(|o| o.clock.now_nanos());
        let periodogram = Periodogram::compute_in(ws, series);
        if let (Some(obs), Some(t0)) = (&self.obs, t0) {
            obs.periodogram_nanos
                .observe(obs.clock.now_nanos().saturating_sub(t0));
        }
        let t0 = self.obs.as_ref().map(|o| o.clock.now_nanos());
        let threshold =
            permutation_threshold_budgeted(ws, series, &self.config.permutation, budget)?;
        if let (Some(obs), Some(t0)) = (&self.obs, t0) {
            obs.permutation_nanos
                .observe(obs.clock.now_nanos().saturating_sub(t0));
        }
        let mut raw = periodogram.lines_above(threshold.threshold);
        let overflow = if raw.len() > self.config.max_candidates {
            raw.split_off(self.config.max_candidates)
        } else {
            Vec::new()
        };

        // ---- Step 1a: harmonic-crowding guard. ----
        // A clean impulse train whose observation span is not an integer
        // multiple of its period (the generic case: N = P·(c−1)+1 bins)
        // leaks comparable power into dozens of harmonic side-bins, and the
        // strongest-k cut can then consist *entirely* of higher-harmonic
        // lines. Each of those is later — correctly — pruned as below the
        // minimum observed interval, leaving the pair undetected even
        // though its fundamental cleared the permutation threshold. When
        // the cut dropped lines and kept no physically plausible period
        // (≥ the minimum positive interval, within the pruning tolerance),
        // retain the strongest dropped line that is plausible; Step 2
        // pruning and Step 3 ACF verification still gate it.
        if !overflow.is_empty() {
            let min_interval = intervals
                .iter()
                .copied()
                .filter(|&i| i > 0.0)
                .fold(f64::INFINITY, f64::min);
            if min_interval.is_finite() {
                let floor = min_interval * (1.0 - self.config.prune.mean_tolerance);
                if !raw.iter().any(|l| l.period >= floor) {
                    if let Some(&fundamental) = overflow.iter().find(|l| l.period >= floor) {
                        raw.push(fundamental);
                    }
                }
            }
        }

        let span = series.span_seconds() as f64;
        budget.checkpoint(series.len() as u64)?;
        let t0 = self.obs.as_ref().map(|o| o.clock.now_nanos());
        let acf = Autocorrelation::compute_in(ws, series);
        if let (Some(obs), Some(t0)) = (&self.obs, t0) {
            obs.acf_nanos
                .observe(obs.clock.now_nanos().saturating_sub(t0));
        }

        // ---- Step 1b: ACF-first candidate (Vlachos complementarity). ----
        // A near-perfect impulse train spreads periodogram energy over all
        // harmonics, so the fundamental can miss the top-k cut; its ACF
        // peaks unambiguously at the fundamental. Only consulted when the
        // permutation filter already confirmed non-random structure, so
        // false-positive control is unchanged.
        if !raw.is_empty() {
            let scale = series.scale() as f64;
            let min_interval = intervals
                .iter()
                .copied()
                .filter(|&i| i > 0.0)
                .fold(f64::INFINITY, f64::min);
            let min_lag = if min_interval.is_finite() {
                ((min_interval / scale).floor() as usize).max(2)
            } else {
                2
            };
            let max_lag = (series.len() as f64 / self.config.prune.min_cycles) as usize;
            if let Some(hill) =
                acf.strongest_hill_budgeted(min_lag, max_lag, &self.config.hill, budget)?
            {
                let already = raw
                    .iter()
                    .any(|l| (l.period - hill.period).abs() <= scale.max(0.02 * hill.period));
                if !already {
                    let frequency = 1.0 / hill.period;
                    // Attribute the periodogram power of the nearest bin.
                    let power = periodogram
                        .lines()
                        .iter()
                        .min_by(|a, b| {
                            (a.frequency - frequency)
                                .abs()
                                .total_cmp(&(b.frequency - frequency).abs())
                        })
                        .map(|l| l.power)
                        .unwrap_or(0.0);
                    raw.push(crate::periodogram::SpectralLine {
                        bin: 0,
                        frequency,
                        period: hill.period,
                        power,
                    });
                }
            }
        }

        // ---- Step 1c: regularity fallback candidate. ----
        // Renewal traffic whose intervals cluster tightly but multimodally
        // (e.g. a beacon observed through a DNS cache: intervals alternate
        // between 5·P and 6·P) spreads its spectral and ACF mass across
        // nearby modes. When spectral structure exists and the interval
        // list is tight (CV < 0.35, i.e. genuinely quasi-periodic), the
        // interval median is a sound period hypothesis;
        // pruning and (spread-widened) ACF verification still gate it.
        if !raw.is_empty() && intervals.len() >= 4 {
            let mut sorted = intervals.clone();
            sorted.sort_by(f64::total_cmp);
            let median = sorted[sorted.len() / 2];
            let mean = intervals.iter().sum::<f64>() / intervals.len() as f64;
            let cv = if mean > 0.0 {
                (intervals
                    .iter()
                    .map(|i| (i - mean) * (i - mean))
                    .sum::<f64>()
                    / intervals.len() as f64)
                    .sqrt()
                    / mean
            } else {
                f64::INFINITY
            };
            if median > 0.0 && cv < 0.35 {
                let scale = series.scale() as f64;
                let already = raw
                    .iter()
                    .any(|l| (l.period - median).abs() <= scale.max(0.05 * median));
                if !already {
                    raw.push(crate::periodogram::SpectralLine {
                        bin: 0,
                        frequency: 1.0 / median,
                        period: median,
                        power: periodogram.max_power(),
                    });
                }
            }
        }

        // ---- Step 2: pruning. ----
        let prune_decisions = if raw.is_empty() {
            Vec::new()
        } else {
            prune_candidates(&raw, &intervals, span, &self.config.prune)?
        };

        // ---- Step 3: ACF verification. ----
        let mut candidates: Vec<CandidatePeriod> = Vec::new();
        for d in prune_decisions.iter().filter(|d| d.survived()) {
            // Estimate the jitter spread from the intervals matching this
            // candidate so the ACF hill window covers the smeared mass.
            let matched: Vec<f64> = intervals
                .iter()
                .copied()
                .filter(|&i| {
                    (i - d.line.period).abs() <= self.config.prune.match_band * d.line.period
                })
                .collect();
            let spread = if matched.len() >= 2 {
                let mean = matched.iter().sum::<f64>() / matched.len() as f64;
                (matched.iter().map(|i| (i - mean) * (i - mean)).sum::<f64>()
                    / (matched.len() - 1) as f64)
                    .sqrt()
            } else {
                0.0
            };
            if let Some(peak) =
                acf.verify_candidate_spread(d.line.period, spread, &self.config.hill)
            {
                // Deduplicate hills: two spectral lines may climb to the
                // same ACF peak.
                if candidates
                    .iter()
                    .any(|c| (c.period - peak.period).abs() < series.scale() as f64 * 0.5)
                {
                    continue;
                }
                candidates.push(CandidatePeriod {
                    frequency: 1.0 / peak.period,
                    period: peak.period,
                    power: d.line.power,
                    acf_score: peak.score,
                    p_value: d.p_value,
                });
            }
        }
        candidates.sort_by(|a, b| b.acf_score.total_cmp(&a.acf_score));

        // ---- Multi-period analysis (GMM over intervals). ----
        let t0 = self.obs.as_ref().map(|o| o.clock.now_nanos());
        let (interval_gmm, gmm_bics) = if self.config.fit_gmm && intervals.len() >= 8 {
            match select_gmm_budgeted(&intervals, &self.config.gmm, budget) {
                Ok((g, bics)) => (Some(g), bics),
                // A timed-out pair must surface as `Timeout`, not be
                // silently reported with its GMM missing.
                Err(TimeSeriesError::BudgetExhausted) => {
                    return Err(TimeSeriesError::BudgetExhausted)
                }
                Err(_) => (None, Vec::new()),
            }
        } else {
            (None, Vec::new())
        };
        if let (Some(obs), Some(t0)) = (&self.obs, t0) {
            if interval_gmm.is_some() {
                obs.gmm_nanos
                    .observe(obs.clock.now_nanos().saturating_sub(t0));
            }
        }
        let (gmm_iterations, gmm_converged) = match &interval_gmm {
            Some(g) => (g.iterations(), Some(g.converged())),
            None => (0, None),
        };

        Ok(DetectionReport {
            candidates,
            power_threshold: threshold.threshold,
            raw_candidates: raw.len(),
            prune_decisions,
            interval_gmm,
            gmm_bics,
            gmm_iterations,
            gmm_converged,
            intervals,
        })
    }
}

impl Default for PeriodicityDetector {
    fn default() -> Self {
        Self::new(DetectorConfig::default())
    }
}

/// Observability handles for the detector, registered once against a
/// [`MetricsRegistry`] and shared (cheap atomic clones) by every worker
/// thread running the detector.
///
/// Two tiers, mirroring the registry's split:
///
/// * **Deterministic** counters and value histograms (`detector.*` names)
///   are pure functions of the analyzed data — order-independent sums that
///   stay byte-identical across runs and thread schedules.
/// * **Timing** histograms (`detector.*.nanos`) read the injected
///   [`Clock`] and live in the registry's quarantined timings section,
///   never in golden output.
#[derive(Debug, Clone)]
pub struct DetectorObs {
    clock: Arc<dyn Clock>,
    pairs_analyzed: Counter,
    pairs_periodic: Counter,
    budget_exhausted: Counter,
    raw_candidates: Counter,
    prune_survivors: Counter,
    acf_verified: Counter,
    gmm_fitted: Counter,
    series_bins: Histogram,
    periodogram_nanos: Histogram,
    permutation_nanos: Histogram,
    acf_nanos: Histogram,
    gmm_nanos: Histogram,
}

impl DetectorObs {
    /// Registers the detector's metric families in `registry` and returns
    /// the handle bundle. Stage timings are read from `clock`.
    pub fn new(registry: &MetricsRegistry, clock: Arc<dyn Clock>) -> Self {
        let bins = Buckets::exponential(64, 4, 10).expect("static bucket layout is valid");
        let nanos = Buckets::exponential(1_000, 4, 12).expect("static bucket layout is valid");
        Self {
            clock,
            pairs_analyzed: registry.counter("detector.pairs_analyzed"),
            pairs_periodic: registry.counter("detector.pairs_periodic"),
            budget_exhausted: registry.counter("detector.budget_exhausted"),
            raw_candidates: registry.counter("detector.periodogram.raw_candidates"),
            prune_survivors: registry.counter("detector.prune.survivors"),
            acf_verified: registry.counter("detector.acf.verified"),
            gmm_fitted: registry.counter("detector.gmm.fitted"),
            series_bins: registry.histogram("detector.series_bins", &bins),
            periodogram_nanos: registry.timing("detector.periodogram.nanos", &nanos),
            permutation_nanos: registry.timing("detector.permutation.nanos", &nanos),
            acf_nanos: registry.timing("detector.acf.nanos", &nanos),
            gmm_nanos: registry.timing("detector.gmm.nanos", &nanos),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn detector() -> PeriodicityDetector {
        PeriodicityDetector::default()
    }

    fn jittered_beacon(n: u64, period: f64, sigma: f64, seed: u64) -> Vec<u64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = Vec::with_capacity(n as usize);
        let mut t = 10_000.0f64;
        for _ in 0..n {
            out.push(t.round() as u64);
            let jitter: f64 = if sigma > 0.0 {
                // Box-Muller standard normal scaled by sigma.
                let u1: f64 = rng.random_range(f64::EPSILON..1.0);
                let u2: f64 = rng.random_range(0.0..1.0);
                sigma * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
            } else {
                0.0
            };
            t += (period + jitter).max(1.0);
        }
        out
    }

    #[test]
    fn clean_beacon_detected() {
        let ts = jittered_beacon(120, 60.0, 0.0, 1);
        let r = detector().detect(&ts).unwrap();
        assert!(r.is_periodic());
        let best = r.best().unwrap();
        assert!((best.period - 60.0).abs() < 2.0, "period = {}", best.period);
        assert!(best.acf_score > 0.5);
    }

    #[test]
    fn jittered_beacon_detected() {
        // σ = 3 s on a 60 s period — well inside the paper's robustness zone.
        let ts = jittered_beacon(150, 60.0, 3.0, 2);
        let r = detector().detect(&ts).unwrap();
        assert!(r.is_periodic());
        assert!((r.best().unwrap().period - 60.0).abs() < 5.0);
    }

    #[test]
    fn beacon_with_missing_events_detected() {
        // Drop 25% of beacons.
        let mut rng = StdRng::seed_from_u64(3);
        let ts: Vec<u64> = jittered_beacon(200, 45.0, 1.0, 3)
            .into_iter()
            .filter(|_| rng.random_range(0.0..1.0) > 0.25)
            .collect();
        let r = detector().detect(&ts).unwrap();
        assert!(r.is_periodic());
        // The fundamental (45 s) should still be recoverable.
        let found = r.candidates.iter().any(|c| (c.period - 45.0).abs() < 5.0);
        assert!(found, "candidates: {:?}", r.candidates);
    }

    #[test]
    fn random_traffic_not_periodic() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut t = 0u64;
        let mut ts = Vec::new();
        for _ in 0..250 {
            t += rng.random_range(1..240);
            ts.push(t);
        }
        let r = detector().detect(&ts).unwrap();
        assert!(
            !r.is_periodic() || r.best().unwrap().acf_score < 0.25,
            "random traffic verified with {:?}",
            r.best()
        );
    }

    #[test]
    fn too_few_events_rejected() {
        let err = detector().detect(&[1, 2, 3]).unwrap_err();
        assert!(matches!(err, TimeSeriesError::TooFewEvents { .. }));
    }

    #[test]
    fn zero_span_rejected() {
        let err = detector().detect(&[5; 20]).unwrap_err();
        assert!(matches!(err, TimeSeriesError::ZeroSpan));
    }

    #[test]
    fn unsorted_rejected() {
        let err = detector()
            .detect(&[1, 5, 3, 9, 11, 20, 22, 30])
            .unwrap_err();
        assert!(matches!(err, TimeSeriesError::UnsortedTimestamps { .. }));
    }

    #[test]
    fn multi_period_gmm_detects_burst_structure() {
        // Conficker-like: 12 beacons 8 s apart, then a 600 s gap, repeated.
        let mut ts = Vec::new();
        let mut t = 0u64;
        for _ in 0..20 {
            for _ in 0..12 {
                ts.push(t);
                t += 8;
            }
            t += 600;
        }
        let r = detector().detect(&ts).unwrap();
        let gmm = r.interval_gmm.as_ref().expect("GMM should fit");
        let means = gmm.dominant_means(0.02);
        assert!(
            means.iter().any(|&m| (m - 8.0).abs() < 2.0),
            "means = {means:?}"
        );
        assert!(
            means.iter().any(|&m| m > 400.0),
            "gap component missing: {means:?}"
        );
    }

    #[test]
    fn dominant_periods_deduplicate() {
        let report = DetectionReport {
            candidates: vec![
                CandidatePeriod {
                    frequency: 1.0 / 60.0,
                    period: 60.0,
                    power: 5.0,
                    acf_score: 0.9,
                    p_value: None,
                },
                CandidatePeriod {
                    frequency: 1.0 / 60.5,
                    period: 60.5,
                    power: 4.0,
                    acf_score: 0.8,
                    p_value: None,
                },
                CandidatePeriod {
                    frequency: 1.0 / 300.0,
                    period: 300.0,
                    power: 3.0,
                    acf_score: 0.7,
                    p_value: None,
                },
            ],
            power_threshold: 0.0,
            raw_candidates: 3,
            prune_decisions: vec![],
            interval_gmm: None,
            gmm_bics: vec![],
            gmm_iterations: 0,
            gmm_converged: None,
            intervals: vec![],
        };
        let periods = report.dominant_periods(0.05);
        assert_eq!(periods, vec![60.0, 300.0]);
    }

    #[test]
    fn coarse_time_scale_detects_slow_beacons() {
        // A 1-hour beacon over 10 days, analyzed at 60 s bins: the series is
        // 14,400 bins instead of 864,000.
        let ts: Vec<u64> = (0..240).map(|i| i * 3600).collect();
        let cfg = DetectorConfig {
            time_scale: 60,
            ..Default::default()
        };
        let r = PeriodicityDetector::new(cfg).detect(&ts).unwrap();
        assert!(r.is_periodic());
        assert!(
            (r.best().unwrap().period - 3600.0).abs() < 120.0,
            "period = {}",
            r.best().unwrap().period
        );
    }

    #[test]
    fn candidates_sorted_by_acf_score() {
        let ts = jittered_beacon(200, 30.0, 0.5, 7);
        let r = detector().detect(&ts).unwrap();
        for w in r.candidates.windows(2) {
            assert!(w[0].acf_score >= w[1].acf_score);
        }
    }

    #[test]
    fn detect_series_after_rescale() {
        let ts: Vec<u64> = (0..200).map(|i| i * 120).collect();
        let fine = TimeSeries::from_timestamps(&ts, 1).unwrap();
        let coarse = fine.rescale(30).unwrap();
        let intervals = intervals_of(&ts).unwrap();
        let r = detector().detect_series(&coarse, intervals).unwrap();
        assert!(r.is_periodic());
        assert!((r.best().unwrap().period - 120.0).abs() < 30.0);
    }

    #[test]
    fn config_accessor() {
        let d = detector();
        assert_eq!(d.config().time_scale, 1);
    }

    #[test]
    fn explicit_workspace_matches_thread_local() {
        let ts = jittered_beacon(150, 83.0, 0.0, 6);
        let ws = crate::workspace::SpectralWorkspace::new();
        let a = detector().detect_in(&ws, &ts).unwrap();
        let b = detector().detect(&ts).unwrap();
        assert_eq!(a, b);
        // Plan cache warm after one pair: a second pair of the same length
        // builds no new plans.
        let built = ws.plans_built();
        detector().detect_in(&ws, &ts).unwrap();
        assert_eq!(ws.plans_built(), built);
    }

    #[test]
    fn fundamental_survives_harmonic_crowding() {
        // A clean train spreads power over ~P/2 comparable harmonics; with a
        // tiny top-k cut the kept lines can all be harmonics below the
        // minimum interval (each correctly pruned), which silently dropped
        // the fundamental before the harmonic-crowding guard existed.
        let cfg = DetectorConfig {
            max_candidates: 2,
            ..Default::default()
        };
        for period in [83u64, 60, 47] {
            let ts: Vec<u64> = (0..120).map(|i| 1_000_000 + i * period).collect();
            let r = PeriodicityDetector::new(cfg.clone()).detect(&ts).unwrap();
            let p = period as f64;
            assert!(
                r.candidates.iter().any(|c| (c.period - p).abs() <= 0.1 * p),
                "period {period} lost with max_candidates=2: {:?}",
                r.candidates
            );
        }
    }

    #[test]
    fn acf_first_candidate_rescues_perfect_impulse_train() {
        // A jitter-free impulse train with many harmonics: the fundamental
        // can miss the top-k periodogram cut, but the ACF-first candidate
        // must recover it even with heavy injected noise.
        let mut rng = StdRng::seed_from_u64(42);
        let mut ts: Vec<u64> = (0..240u64).map(|i| 1_000_000 + i * 300).collect();
        let end = *ts.last().unwrap();
        for _ in 0..180 {
            ts.push(rng.random_range(1_000_000..end));
        }
        ts.sort_unstable();
        let r = detector().detect(&ts).unwrap();
        assert!(
            r.candidates.iter().any(|c| (c.period - 300.0).abs() < 15.0),
            "fundamental lost: {:?}",
            r.candidates
        );
    }

    #[test]
    fn regularity_fallback_handles_bimodal_renewal() {
        // Cache-style renewal: intervals alternate 300 and 360 s. No single
        // spectral line or ACF lag dominates, but the traffic is plainly
        // regular; the median-interval fallback must flag it.
        let mut ts = Vec::with_capacity(200);
        let mut t = 0u64;
        for i in 0..200 {
            ts.push(t);
            t += if i % 7 < 4 { 300 } else { 360 };
        }
        let r = detector().detect(&ts).unwrap();
        assert!(r.is_periodic(), "bimodal renewal not flagged");
        let best = r.best().unwrap();
        assert!(
            best.period >= 290.0 && best.period <= 370.0,
            "period = {}",
            best.period
        );
    }

    #[test]
    fn empty_input_rejected_with_typed_error() {
        let err = detector().detect(&[]).unwrap_err();
        assert!(matches!(err, TimeSeriesError::TooFewEvents { .. }));
    }

    #[test]
    fn single_event_rejected_with_typed_error() {
        let err = detector().detect(&[42]).unwrap_err();
        assert!(matches!(err, TimeSeriesError::TooFewEvents { .. }));
    }

    #[test]
    fn duplicate_timestamps_do_not_panic() {
        // Sorted input with runs of duplicates (zero intervals) must flow
        // through the whole pipeline without panicking.
        let mut ts = Vec::new();
        for i in 0..40u64 {
            ts.push(1_000 + i * 60);
            ts.push(1_000 + i * 60); // duplicate of every event
        }
        let r = detector().detect(&ts).unwrap();
        for c in &r.candidates {
            assert!(c.period.is_finite() && c.acf_score.is_finite());
        }
    }

    #[test]
    fn constant_bin_series_is_non_periodic_not_a_panic() {
        // One event in every single bin: a constant count series has an
        // empty (DC-removed) spectrum — nothing to detect, nothing to fear.
        let ts: Vec<u64> = (0..64).collect();
        let r = detector().detect(&ts).unwrap();
        assert!(r.power_threshold.is_finite() || r.candidates.is_empty());
        for c in &r.candidates {
            assert!(c.period.is_finite());
        }
    }

    #[test]
    fn non_finite_intervals_sanitized() {
        // A caller (e.g. rescaled-summary path) may hand over an interval
        // list polluted with NaN/∞; the detector must neither panic nor
        // emit non-finite output.
        let ts: Vec<u64> = (0..120).map(|i| 1_000 + i * 60).collect();
        let series = TimeSeries::from_timestamps(&ts, 1).unwrap();
        let mut intervals = intervals_of(&ts).unwrap();
        intervals.push(f64::NAN);
        intervals.push(f64::INFINITY);
        intervals.push(f64::NEG_INFINITY);
        let r = detector().detect_series(&series, intervals).unwrap();
        assert!(r.is_periodic());
        for c in &r.candidates {
            assert!(c.period.is_finite());
            assert!(c.acf_score.is_finite());
            assert!(c.frequency.is_finite());
            assert!(c.power.is_finite());
        }
        assert!(r.intervals.iter().all(|i| i.is_finite()));
    }

    #[test]
    fn outputs_are_nan_free_on_normal_traffic() {
        for seed in 0..4 {
            let ts = jittered_beacon(100, 45.0, 2.0, seed);
            let r = detector().detect(&ts).unwrap();
            assert!(r.power_threshold.is_finite());
            for c in &r.candidates {
                assert!(c.period.is_finite());
                assert!(c.frequency.is_finite());
                assert!(c.power.is_finite());
                assert!(c.acf_score.is_finite());
                if let Some(p) = c.p_value {
                    assert!(p.is_finite());
                }
            }
        }
    }

    #[test]
    fn unlimited_budget_is_byte_identical_to_plain_path() {
        let ts = jittered_beacon(150, 60.0, 3.0, 9);
        let d = detector();
        let plain = d.detect(&ts).unwrap();
        let budgeted = d.detect_budgeted(&ts, &ExecBudget::unlimited()).unwrap();
        assert_eq!(plain, budgeted);
    }

    #[test]
    fn armed_ops_budget_times_out_pathological_series() {
        // A few hundred events spread over a huge span: the binned series
        // is enormous and each permutation round charges its full length,
        // so a small ops ceiling trips deterministically in Step 1.
        let ts: Vec<u64> = (0..300).map(|i| i * 2_333).collect();
        let cfg = DetectorConfig {
            budget: BudgetSpec {
                max_ops: Some(1_000_000),
                max_millis: None,
            },
            ..Default::default()
        };
        let err = PeriodicityDetector::new(cfg).detect(&ts).unwrap_err();
        assert_eq!(err, TimeSeriesError::BudgetExhausted);

        // A normal beacon sails under the same ceiling.
        let ok_ts = jittered_beacon(120, 60.0, 0.0, 13);
        let cfg = DetectorConfig {
            budget: BudgetSpec {
                max_ops: Some(1_000_000),
                max_millis: None,
            },
            ..Default::default()
        };
        let r = PeriodicityDetector::new(cfg).detect(&ok_ts).unwrap();
        assert!(r.is_periodic());
    }

    #[test]
    fn cancelled_budget_aborts_detection() {
        let ts = jittered_beacon(120, 60.0, 0.0, 17);
        let budget = ExecBudget::unlimited();
        budget.cancel();
        let err = detector().detect_budgeted(&ts, &budget).unwrap_err();
        assert_eq!(err, TimeSeriesError::BudgetExhausted);
    }

    #[test]
    fn gmm_convergence_recorded_in_report() {
        let ts = jittered_beacon(150, 60.0, 3.0, 21);
        let r = detector().detect(&ts).unwrap();
        assert!(r.interval_gmm.is_some());
        assert!(r.gmm_converged.is_some());
        assert!(r.gmm_iterations >= 1);

        // Starve EM: the winning fit cannot converge in one iteration and
        // the report must say so rather than pretend otherwise.
        let cfg = DetectorConfig {
            gmm: GmmConfig {
                max_iterations: 1,
                ..Default::default()
            },
            ..Default::default()
        };
        let r = PeriodicityDetector::new(cfg).detect(&ts).unwrap();
        assert_eq!(r.gmm_converged, Some(false));
        assert_eq!(r.gmm_iterations, 1);

        // No GMM requested: diagnostics are explicitly absent.
        let cfg = DetectorConfig {
            fit_gmm: false,
            ..Default::default()
        };
        let r = PeriodicityDetector::new(cfg).detect(&ts).unwrap();
        assert_eq!(r.gmm_converged, None);
        assert_eq!(r.gmm_iterations, 0);
    }

    #[test]
    fn fallback_does_not_fire_on_wide_renewals() {
        // Uniform intervals in [1, 900]: CV ≈ 0.58 — not quasi-periodic,
        // must not be flagged via the fallback.
        let mut rng = StdRng::seed_from_u64(7);
        let mut ts = Vec::new();
        let mut t = 0u64;
        for _ in 0..200 {
            ts.push(t);
            t += rng.random_range(1..900);
        }
        let r = detector().detect(&ts).unwrap();
        assert!(
            !r.is_periodic() || r.best().unwrap().acf_score < 0.3,
            "wide renewal flagged strongly: {:?}",
            r.best()
        );
    }

    #[test]
    fn obs_records_pair_counters_and_quarantines_timings() {
        use baywatch_obs::ManualClock;

        let registry = MetricsRegistry::new();
        let clock = Arc::new(ManualClock::new());
        let det = detector().with_obs(DetectorObs::new(&registry, clock));

        let beacon = jittered_beacon(120, 60.0, 0.0, 1);
        assert!(det.detect(&beacon).unwrap().is_periodic());
        let human: Vec<u64> = vec![0, 13, 15, 470, 471, 509, 3_600, 3_754, 9_000, 9_100, 15_000];
        assert!(!det.detect(&human).unwrap().is_periodic());

        let snap = registry.snapshot();
        assert_eq!(snap.counters["detector.pairs_analyzed"], 2);
        assert_eq!(snap.counters["detector.pairs_periodic"], 1);
        assert_eq!(snap.counters["detector.budget_exhausted"], 0);
        assert!(snap.counters["detector.periodogram.raw_candidates"] >= 1);
        assert_eq!(snap.histograms["detector.series_bins"].total, 2);
        // Stage timings exist but stay out of the deterministic export.
        assert_eq!(snap.timings["detector.periodogram.nanos"].total, 2);
        assert!(!snap.to_json().contains("nanos"));
    }

    #[test]
    fn obs_counts_budget_exhaustion() {
        let registry = MetricsRegistry::new();
        let clock = Arc::new(baywatch_obs::ManualClock::new());
        let det = detector().with_obs(DetectorObs::new(&registry, clock));

        let ts = jittered_beacon(200, 60.0, 3.0, 3);
        let starved = ExecBudget::new(None, Some(1));
        assert!(matches!(
            det.detect_budgeted(&ts, &starved),
            Err(TimeSeriesError::BudgetExhausted)
        ));
        let snap = registry.snapshot();
        assert_eq!(snap.counters["detector.budget_exhausted"], 1);
        assert_eq!(snap.counters["detector.pairs_periodic"], 0);
    }
}
