//! Resilience-scenario generators: flapping log sources and overload
//! bursts.
//!
//! PR 8's fault model needs two traffic shapes the corruption module alone
//! does not produce:
//!
//! * a **flapping source** — an ELFF feed that alternates between clean
//!   windows and windows with a high malformed-line rate, the exact
//!   pattern that should drive a per-source ingest breaker through its
//!   full `Closed → Open → HalfOpen → Closed` recovery cycle, and
//! * **overload bursts** — event-count spikes that push wave admission
//!   past its degrade/reject watermarks while the surrounding baseline
//!   windows let it recover.
//!
//! Both are pure functions of their config plus a `u64` seed, so a soak
//! run that trips a breaker replays byte-for-byte.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::corrupt::{corrupt_elff_lines, to_elff};
use crate::types::{HostId, ProxyEvent};

/// Knobs for [`flapping_source`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlappingConfig {
    /// Number of alternating windows to emit.
    pub windows: usize,
    /// Events rendered per window.
    pub events_per_window: usize,
    /// Malformed-line rate during bad windows (high enough to trip a
    /// breaker's failure-rate threshold).
    pub bad_corruption_rate: f64,
    /// Malformed-line rate during clean windows (usually 0).
    pub clean_corruption_rate: f64,
    /// Wall-clock span of one window in seconds.
    pub window_seconds: u64,
    /// Whether the first window is a bad one.
    pub start_bad: bool,
}

impl Default for FlappingConfig {
    fn default() -> Self {
        Self {
            windows: 6,
            events_per_window: 200,
            bad_corruption_rate: 0.8,
            clean_corruption_rate: 0.0,
            window_seconds: 600,
            start_bad: false,
        }
    }
}

/// One rendered window of a flapping source.
#[derive(Debug, Clone, PartialEq)]
pub struct FlappingWindow {
    /// Window index in emission order.
    pub index: usize,
    /// Whether this window used the bad corruption rate.
    pub bad: bool,
    /// The rendered (possibly damaged) ELFF bytes.
    pub bytes: Vec<u8>,
    /// Exact number of unparseable data lines in `bytes`.
    pub malformed_lines: usize,
    /// Number of data lines rendered before corruption.
    pub data_lines: usize,
}

/// Emits a deterministic flapping ELFF source: windows alternate between
/// clean and high-corruption, starting from `config.start_bad`.
///
/// Each window gets its own RNG stream derived from `seed` and the window
/// index, so inserting or dropping a window never shifts the damage
/// pattern of its neighbours.
pub fn flapping_source(config: &FlappingConfig, seed: u64) -> Vec<FlappingWindow> {
    let mut out = Vec::with_capacity(config.windows);
    for index in 0..config.windows {
        let bad = if config.start_bad {
            index % 2 == 0
        } else {
            index % 2 == 1
        };
        let rate = if bad {
            config.bad_corruption_rate
        } else {
            config.clean_corruption_rate
        };
        let mut rng = StdRng::seed_from_u64(seed ^ (0x5EED_F1A9 + index as u64));
        let events = window_events(config, index, &mut rng);
        let elff = to_elff(&events);
        let (bytes, malformed_lines) = corrupt_elff_lines(&elff, rate, &mut rng);
        out.push(FlappingWindow {
            index,
            bad,
            bytes,
            malformed_lines,
            data_lines: events.len(),
        });
    }
    out
}

fn window_events(config: &FlappingConfig, index: usize, rng: &mut StdRng) -> Vec<ProxyEvent> {
    let base = index as u64 * config.window_seconds;
    let span = config.window_seconds.max(1);
    (0..config.events_per_window)
        .map(|_| ProxyEvent {
            timestamp: base + rng.random_range(0..span),
            host: HostId(rng.random_range(0..16u32)),
            source_ip: 0x0a00_0000 | rng.random_range(0..256u32),
            domain: format!("svc{}.example.net", rng.random_range(0..8u32)),
            url_path: "poll".into(),
        })
        .collect()
}

/// Knobs for [`overload_bursts`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurstConfig {
    /// Number of windows to emit.
    pub windows: usize,
    /// Events per baseline (non-burst) window.
    pub baseline_events: usize,
    /// Events per burst window.
    pub burst_events: usize,
    /// Every `burst_every`-th window (1-based) is a burst; 0 disables
    /// bursts entirely.
    pub burst_every: usize,
    /// Wall-clock span of one window in seconds.
    pub window_seconds: u64,
    /// Number of distinct destination domains the burst fans out over
    /// (more domains → more candidate pairs → more admission pressure).
    pub burst_domains: u32,
}

impl Default for BurstConfig {
    fn default() -> Self {
        Self {
            windows: 8,
            baseline_events: 100,
            burst_events: 2_000,
            burst_every: 4,
            window_seconds: 600,
            burst_domains: 64,
        }
    }
}

/// One window of overload traffic.
#[derive(Debug, Clone, PartialEq)]
pub struct BurstWindow {
    /// Window index in emission order.
    pub index: usize,
    /// Whether this window is a burst.
    pub burst: bool,
    /// The events of this window, timestamp-sorted.
    pub events: Vec<ProxyEvent>,
}

/// Emits deterministic overload traffic: mostly-baseline windows with
/// periodic event-count spikes fanning out over many destinations.
pub fn overload_bursts(config: &BurstConfig, seed: u64) -> Vec<BurstWindow> {
    let mut out = Vec::with_capacity(config.windows);
    for index in 0..config.windows {
        let burst = config.burst_every > 0 && (index + 1) % config.burst_every == 0;
        let (count, domains) = if burst {
            (config.burst_events, config.burst_domains.max(1))
        } else {
            (config.baseline_events, 8)
        };
        let mut rng = StdRng::seed_from_u64(seed ^ (0xB0A5_7E11 + index as u64));
        let base = index as u64 * config.window_seconds;
        let span = config.window_seconds.max(1);
        let mut events: Vec<ProxyEvent> = (0..count)
            .map(|_| ProxyEvent {
                timestamp: base + rng.random_range(0..span),
                host: HostId(rng.random_range(0..64u32)),
                source_ip: 0x0a00_0000 | rng.random_range(0..1024u32),
                domain: format!("cdn{}.example.org", rng.random_range(0..domains)),
                url_path: "asset".into(),
            })
            .collect();
        events.sort_by_key(|e| e.timestamp);
        out.push(BurstWindow {
            index,
            burst,
            events,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flapping_alternates_and_damages_only_bad_windows() {
        let config = FlappingConfig {
            windows: 6,
            events_per_window: 300,
            bad_corruption_rate: 0.9,
            clean_corruption_rate: 0.0,
            start_bad: false,
            ..Default::default()
        };
        let windows = flapping_source(&config, 42);
        assert_eq!(windows.len(), 6);
        for w in &windows {
            assert_eq!(w.bad, w.index % 2 == 1, "window {} parity", w.index);
            assert_eq!(w.data_lines, 300);
            if w.bad {
                assert!(
                    w.malformed_lines > 200,
                    "bad window {} damaged only {} lines",
                    w.index,
                    w.malformed_lines
                );
            } else {
                assert_eq!(w.malformed_lines, 0, "clean window {} damaged", w.index);
            }
        }
    }

    #[test]
    fn flapping_start_bad_flips_parity() {
        let config = FlappingConfig {
            windows: 4,
            start_bad: true,
            ..Default::default()
        };
        let windows = flapping_source(&config, 7);
        assert!(windows[0].bad && !windows[1].bad && windows[2].bad);
    }

    #[test]
    fn flapping_is_deterministic_per_seed() {
        let config = FlappingConfig::default();
        let a = flapping_source(&config, 99);
        let b = flapping_source(&config, 99);
        assert_eq!(a, b);
        let c = flapping_source(&config, 100);
        assert_ne!(a, c, "different seed must produce different bytes");
    }

    #[test]
    fn flapping_windows_have_independent_streams() {
        // Dropping the window count must not change earlier windows.
        let long = FlappingConfig {
            windows: 6,
            ..Default::default()
        };
        let short = FlappingConfig { windows: 3, ..long };
        let a = flapping_source(&long, 5);
        let b = flapping_source(&short, 5);
        assert_eq!(&a[..3], &b[..]);
    }

    #[test]
    fn bursts_fire_on_schedule_with_spiked_counts() {
        let config = BurstConfig {
            windows: 8,
            baseline_events: 50,
            burst_events: 500,
            burst_every: 4,
            burst_domains: 32,
            ..Default::default()
        };
        let windows = overload_bursts(&config, 11);
        assert_eq!(windows.len(), 8);
        for w in &windows {
            assert_eq!(w.burst, (w.index + 1) % 4 == 0, "window {}", w.index);
            let expected = if w.burst { 500 } else { 50 };
            assert_eq!(w.events.len(), expected);
            assert!(w.events.windows(2).all(|p| p[0].timestamp <= p[1].timestamp));
        }
        let burst = windows.iter().find(|w| w.burst).unwrap();
        let domains: std::collections::HashSet<&str> =
            burst.events.iter().map(|e| e.domain.as_str()).collect();
        assert!(domains.len() > 16, "burst fans out over many destinations");
    }

    #[test]
    fn burst_every_zero_disables_bursts() {
        let config = BurstConfig {
            burst_every: 0,
            ..Default::default()
        };
        assert!(overload_bursts(&config, 1).iter().all(|w| !w.burst));
    }

    #[test]
    fn bursts_are_deterministic_per_seed() {
        let config = BurstConfig::default();
        assert_eq!(overload_bursts(&config, 3), overload_bursts(&config, 3));
        assert_ne!(overload_bursts(&config, 3), overload_bursts(&config, 4));
    }
}
