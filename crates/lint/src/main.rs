//! CLI driver for `baywatch-lint`.
//!
//! ```text
//! cargo run -p baywatch-lint [--] [OPTIONS]
//!
//!   --root <DIR>        workspace root (default: .)
//!   --config <FILE>     allowlist (default: <root>/lint.toml)
//!   --baseline <FILE>   ratchet baseline (default: <root>/lint-baseline.json)
//!   --json              machine-readable output instead of the table
//!   --verbose           include baselined and allowlisted findings
//!   --update-baseline   rewrite the baseline to the current findings
//! ```
//!
//! Exit codes: 0 clean (no new findings), 1 new findings, 2 usage or
//! configuration error.

#![warn(clippy::unwrap_used)]

use std::path::PathBuf;
use std::process::ExitCode;

use baywatch_lint::{baseline, report, run, LintOptions};

struct Args {
    opts: LintOptions,
    json: bool,
    verbose: bool,
    update_baseline: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        opts: LintOptions::default(),
        json: false,
        verbose: false,
        update_baseline: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut path_arg = |name: &str| {
            it.next()
                .map(PathBuf::from)
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--root" => args.opts.root = path_arg("--root")?,
            "--config" => args.opts.config_path = Some(path_arg("--config")?),
            "--baseline" => args.opts.baseline_path = Some(path_arg("--baseline")?),
            "--json" => args.json = true,
            "--verbose" => args.verbose = true,
            "--update-baseline" => args.update_baseline = true,
            "--help" | "-h" => {
                println!(
                    "baywatch-lint: workspace invariant linter (L1 float ordering, \
                     L2 determinism, L3 budget checkpoints, L4 panic hygiene)\n\n\
                     Options:\n  --root <DIR>  --config <FILE>  --baseline <FILE>\n  \
                     --json  --verbose  --update-baseline"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("baywatch-lint: {msg}");
            return ExitCode::from(2);
        }
    };
    let outcome = match run(&args.opts) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("baywatch-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if args.update_baseline {
        // The baseline covers findings that are neither fixed nor
        // allowlisted: exactly the new + already-baselined sets.
        let mut all = outcome.new.clone();
        all.extend(outcome.baselined.iter().cloned());
        let path = args
            .opts
            .baseline_path
            .clone()
            .unwrap_or_else(|| args.opts.root.join("lint-baseline.json"));
        if let Err(e) = std::fs::write(&path, baseline::to_json(&all)) {
            eprintln!("baywatch-lint: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!(
            "baseline updated: {} entr{}",
            all.len(),
            if all.len() == 1 { "y" } else { "ies" }
        );
        return ExitCode::SUCCESS;
    }

    if args.json {
        print!("{}", report::render_json(&outcome));
    } else {
        print!("{}", report::render_table(&outcome, args.verbose));
    }
    if outcome.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
