//! L5 fixture: qualified atomic orderings under a declared `[[atomic]]`
//! policy (`allow = ["Relaxed"]`, `fix = "Relaxed"` in ws `lint.toml`).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

pub struct Counter {
    hits: AtomicU64,
    control: AtomicBool,
}

impl Counter {
    /// Positive: SeqCst where the policy allows only Relaxed. Carries a
    /// mechanical fix (qualified site + declared `fix`).
    pub fn bump(&self) -> u64 {
        self.hits.fetch_add(1, Ordering::SeqCst)
    }

    /// Suppressed twin: same violation, allowlisted by the
    /// `control.store` pattern with a written reason.
    pub fn trip(&self) {
        self.control.store(true, Ordering::SeqCst);
    }

    /// Negative: in policy.
    pub fn peek(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }
}

/// Negative: `std::cmp::Ordering` variants are disjoint from the atomic
/// set and must not be mistaken for orderings.
pub fn compare(a: u64, b: u64) -> std::cmp::Ordering {
    if a < b {
        std::cmp::Ordering::Less
    } else {
        std::cmp::Ordering::Greater
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_code_may_use_any_ordering() {
        let c = Counter {
            hits: AtomicU64::new(0),
            control: AtomicBool::new(false),
        };
        c.hits.store(7, Ordering::SeqCst);
        assert_eq!(c.peek(), 7);
    }
}
