//! The raw log record consumed by the pipeline.
//!
//! BAYWATCH is data-source agnostic (§X of the paper applies the same core
//! to DNS and Netflow); the pipeline only needs a timestamp, a stable
//! source identifier, a destination, and (for web logs) a URL path token.

/// One input log line after field extraction.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LogRecord {
    /// Epoch timestamp in seconds.
    pub timestamp: u64,
    /// Stable source identifier (the paper correlates IP → MAC via DHCP
    /// logs; the caller is expected to have done the same).
    pub source: String,
    /// Destination domain (or IP string for Netflow-style input).
    pub domain: String,
    /// First URL path token (empty for sources without one).
    pub url_token: String,
}

impl LogRecord {
    /// Convenience constructor.
    pub fn new(
        timestamp: u64,
        source: impl Into<String>,
        domain: impl Into<String>,
        url_token: impl Into<String>,
    ) -> Self {
        Self {
            timestamp,
            source: source.into(),
            domain: domain.into(),
            url_token: url_token.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructor_accepts_mixed_string_types() {
        let r = LogRecord::new(5, "s", String::from("d.com"), "tok");
        assert_eq!(r.timestamp, 5);
        assert_eq!(r.source, "s");
        assert_eq!(r.domain, "d.com");
        assert_eq!(r.url_token, "tok");
    }
}
