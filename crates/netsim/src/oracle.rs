//! A VirusTotal-style threat-intelligence oracle.
//!
//! The paper builds its "ground truth" by querying VirusTotal: a destination
//! is labeled malicious if any AV engine flags it. Real AV coverage is
//! imperfect, so the oracle models a configurable miss rate: a fraction of
//! truly malicious domains return a clean verdict (deterministically per
//! domain, like a real engine's blind spots). Benign domains never flag —
//! the classifier evaluation of Table IV measures against exactly this kind
//! of reference.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use crate::types::GroundTruth;

/// The oracle's verdict for a domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// At least one (simulated) engine flags the destination.
    Malicious,
    /// No engine flags the destination.
    Clean,
}

/// A deterministic threat-intel oracle built from simulator ground truth.
#[derive(Debug, Clone)]
pub struct ThreatIntelOracle {
    truth: GroundTruth,
    miss_rate: f64,
}

impl ThreatIntelOracle {
    /// Wraps ground truth with a per-domain miss probability.
    ///
    /// # Panics
    ///
    /// Panics if `miss_rate` is outside `[0, 1)`.
    pub fn new(truth: GroundTruth, miss_rate: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&miss_rate),
            "miss_rate must be in [0, 1)"
        );
        Self { truth, miss_rate }
    }

    /// A perfect oracle (zero miss rate).
    pub fn perfect(truth: GroundTruth) -> Self {
        Self::new(truth, 0.0)
    }

    /// Queries the oracle for a domain — deterministic: the same domain
    /// always returns the same verdict.
    pub fn query(&self, domain: &str) -> Verdict {
        if !self.truth.is_malicious(domain) {
            return Verdict::Clean;
        }
        if self.miss_rate == 0.0 {
            return Verdict::Malicious;
        }
        let mut h = DefaultHasher::new();
        domain.hash(&mut h);
        let u = (h.finish() % 1_000_000) as f64 / 1_000_000.0;
        if u < self.miss_rate {
            Verdict::Clean
        } else {
            Verdict::Malicious
        }
    }

    /// The wrapped ground truth.
    pub fn ground_truth(&self) -> &GroundTruth {
        &self.truth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn truth_with(mal: &[&str]) -> GroundTruth {
        let mut gt = GroundTruth::default();
        for d in mal {
            gt.malicious_domains.insert((*d).to_owned());
        }
        gt
    }

    #[test]
    fn perfect_oracle_exact() {
        let oracle = ThreatIntelOracle::perfect(truth_with(&["evil.com"]));
        assert_eq!(oracle.query("evil.com"), Verdict::Malicious);
        assert_eq!(oracle.query("google.com"), Verdict::Clean);
    }

    #[test]
    fn benign_never_flags_even_with_miss_rate() {
        let oracle = ThreatIntelOracle::new(truth_with(&["evil.com"]), 0.5);
        for d in ["a.com", "b.net", "c.org"] {
            assert_eq!(oracle.query(d), Verdict::Clean);
        }
    }

    #[test]
    fn miss_rate_hides_some_malicious() {
        let domains: Vec<String> = (0..1000).map(|i| format!("mal{i}.com")).collect();
        let refs: Vec<&str> = domains.iter().map(String::as_str).collect();
        let oracle = ThreatIntelOracle::new(truth_with(&refs), 0.3);
        let missed = domains
            .iter()
            .filter(|d| oracle.query(d) == Verdict::Clean)
            .count();
        assert!(missed > 200 && missed < 400, "missed = {missed}");
    }

    #[test]
    fn verdicts_are_deterministic() {
        let oracle = ThreatIntelOracle::new(truth_with(&["x1.com", "x2.com", "x3.com"]), 0.5);
        for d in ["x1.com", "x2.com", "x3.com"] {
            assert_eq!(oracle.query(d), oracle.query(d));
        }
    }

    #[test]
    #[should_panic]
    fn miss_rate_one_rejected() {
        ThreatIntelOracle::new(GroundTruth::default(), 1.0);
    }
}
