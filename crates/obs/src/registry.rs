//! The metrics registry: named counters, gauges, and histograms with
//! get-or-register semantics and deterministic snapshots.
//!
//! Metric families live in two tiers. **Deterministic** metrics
//! (counters, gauges, value histograms) are pure functions of the data
//! the pipeline analyzed and appear in [`MetricsSnapshot::to_json`],
//! which the golden-run suite byte-compares. **Timing** histograms carry
//! wall-clock-derived durations; they are kept in a separate section and
//! only appear in [`MetricsSnapshot::to_json_full`], never in golden
//! output.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use crate::hist::{Buckets, Histogram, HistogramSnapshot};
use crate::json::JsonWriter;

/// A monotonic counter handle. Cloning shares the underlying cell.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A settable signed gauge handle. Cloning shares the underlying cell.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Sets the gauge to `v`.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug, Default)]
struct Families {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
    timings: BTreeMap<String, Histogram>,
}

/// A process-wide (or pipeline-wide) collection of named metrics.
///
/// Handles returned by the accessors are cheap clones backed by atomics,
/// so hot paths register once and update lock-free. Registration uses
/// get-or-register semantics: the first registration of a histogram name
/// fixes its bucket layout and later calls return the existing handle
/// regardless of the buckets they pass (first registration wins).
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    families: Mutex<Families>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the counter named `name`, creating it at zero on first use.
    pub fn counter(&self, name: &str) -> Counter {
        let mut fam = self.lock();
        fam.counters.entry(name.to_string()).or_default().clone()
    }

    /// Returns the gauge named `name`, creating it at zero on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut fam = self.lock();
        fam.gauges.entry(name.to_string()).or_default().clone()
    }

    /// Returns the *deterministic* value histogram named `name`.
    ///
    /// These record data-derived values (series lengths, candidate
    /// counts) and appear in golden output.
    pub fn histogram(&self, name: &str, buckets: &Buckets) -> Histogram {
        let mut fam = self.lock();
        fam.histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(buckets.clone()))
            .clone()
    }

    /// Returns the *timing* histogram named `name`.
    ///
    /// These record wall-clock-derived durations and are quarantined out
    /// of the deterministic export.
    pub fn timing(&self, name: &str, buckets: &Buckets) -> Histogram {
        let mut fam = self.lock();
        fam.timings
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(buckets.clone()))
            .clone()
    }

    /// A point-in-time copy of every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let fam = self.lock();
        MetricsSnapshot {
            counters: fam
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: fam
                .gauges
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: fam
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
            timings: fam
                .timings
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }

    /// Locks the family table, recovering from poisoning: the data is
    /// plain maps of handles, always structurally valid, and metrics must
    /// never take the pipeline down.
    fn lock(&self) -> MutexGuard<'_, Families> {
        self.families
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

/// An owned snapshot of a registry, suitable for export and comparison.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// Counter values, sorted by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values, sorted by name.
    pub gauges: BTreeMap<String, i64>,
    /// Deterministic value histograms, sorted by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Wall-clock timing histograms, sorted by name. Excluded from
    /// [`MetricsSnapshot::to_json`].
    pub timings: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Deterministic JSON export: counters, gauges, and value histograms
    /// in stable key order. Timings are deliberately absent so this
    /// string is byte-identical across runs on identical input.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.raw("{");
        self.write_deterministic_sections(&mut w);
        w.raw("}");
        w.finish()
    }

    /// Full JSON export including the non-deterministic `timings`
    /// section. Never byte-compare this.
    pub fn to_json_full(&self) -> String {
        let mut w = JsonWriter::new();
        w.raw("{");
        self.write_deterministic_sections(&mut w);
        w.key("timings");
        write_histogram_map(&mut w, &self.timings);
        w.raw("}");
        w.finish()
    }

    fn write_deterministic_sections(&self, w: &mut JsonWriter) {
        w.key("counters");
        w.raw("{");
        for (name, value) in &self.counters {
            w.key(name);
            w.uint(*value);
        }
        w.raw("}");
        w.end_value();
        w.key("gauges");
        w.raw("{");
        for (name, value) in &self.gauges {
            w.key(name);
            w.int(*value);
        }
        w.raw("}");
        w.end_value();
        w.key("histograms");
        write_histogram_map(w, &self.histograms);
        w.end_value();
    }
}

fn write_histogram_map(w: &mut JsonWriter, map: &BTreeMap<String, HistogramSnapshot>) {
    w.raw("{");
    for (name, snap) in map {
        w.key(name);
        w.raw("{");
        w.key("bounds");
        w.raw("[");
        for b in &snap.bounds {
            w.uint(*b);
        }
        w.raw("]");
        w.end_value();
        w.key("counts");
        w.raw("[");
        for c in &snap.counts {
            w.uint(*c);
        }
        w.raw("]");
        w.end_value();
        w.key("total");
        w.uint(snap.total);
        w.key("sum");
        w.uint(snap.sum);
        w.raw("}");
        w.end_value();
    }
    w.raw("}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_handles_share_state() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("hits");
        let b = reg.counter("hits");
        a.inc();
        b.add(2);
        assert_eq!(reg.snapshot().counters["hits"], 3);
    }

    #[test]
    fn gauge_set_and_add() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("depth");
        g.set(10);
        g.add(-3);
        assert_eq!(reg.snapshot().gauges["depth"], 7);
    }

    #[test]
    fn histogram_first_registration_wins() {
        let reg = MetricsRegistry::new();
        let first = Buckets::new(&[10, 100]).unwrap();
        let second = Buckets::new(&[5]).unwrap();
        let h1 = reg.histogram("len", &first);
        let h2 = reg.histogram("len", &second);
        h1.observe(1);
        h2.observe(2);
        let snap = reg.snapshot();
        assert_eq!(snap.histograms["len"].bounds, vec![10, 100]);
        assert_eq!(snap.histograms["len"].total, 2);
    }

    #[test]
    fn to_json_excludes_timings_and_full_includes_them() {
        let reg = MetricsRegistry::new();
        reg.counter("events").add(5);
        let buckets = Buckets::new(&[1_000]).unwrap();
        reg.timing("detect.nanos", &buckets).observe(42);
        let snap = reg.snapshot();
        let golden = snap.to_json();
        assert!(golden.contains("\"events\":5"));
        assert!(
            !golden.contains("timings") && !golden.contains("detect.nanos"),
            "deterministic export leaked timing data: {golden}"
        );
        let full = snap.to_json_full();
        assert!(full.contains("\"timings\""));
        assert!(full.contains("detect.nanos"));
    }

    #[test]
    fn json_is_stable_key_ordered() {
        let reg = MetricsRegistry::new();
        reg.counter("zeta").inc();
        reg.counter("alpha").inc();
        let json = reg.snapshot().to_json();
        let alpha = json.find("alpha").unwrap();
        let zeta = json.find("zeta").unwrap();
        assert!(alpha < zeta, "keys must serialise sorted: {json}");
    }

    #[test]
    fn empty_registry_exports_empty_sections() {
        let json = MetricsRegistry::new().snapshot().to_json();
        assert_eq!(json, r#"{"counters":{},"gauges":{},"histograms":{}}"#);
    }
}
