//! Criterion macro-bench: end-to-end pipeline throughput on a simulated
//! enterprise day (weekday vs weekend — the §VIII-B2 operating points).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use baywatch_core::jobs;
use baywatch_core::pipeline::{Baywatch, BaywatchConfig};
use baywatch_core::record::LogRecord;
use baywatch_mapreduce::{JobConfig, MapReduce};
use baywatch_netsim::enterprise::{EnterpriseConfig, EnterpriseSimulator};
use baywatch_timeseries::detector::{DetectorConfig, PeriodicityDetector};

fn records_for(hosts: usize, day: usize) -> Vec<LogRecord> {
    let sim = EnterpriseSimulator::new(EnterpriseConfig {
        hosts,
        days: 7,
        seed: 0xBEBC,
        ..Default::default()
    });
    sim.generate_day(day)
        .iter()
        .map(|e| {
            LogRecord::new(
                e.timestamp,
                e.host.to_string(),
                e.domain.clone(),
                e.url_path.clone(),
            )
        })
        .collect()
}

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline_day");
    group.sample_size(10);
    for (label, hosts, day) in [("weekday_100h", 100usize, 1usize), ("weekend_100h", 100, 5)] {
        let records = records_for(hosts, day);
        group.throughput(Throughput::Elements(records.len() as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(label),
            &records,
            |b, records| {
                b.iter_batched(
                    || records.clone(),
                    |records| {
                        let mut engine = Baywatch::new(BaywatchConfig {
                            local_tau: 0.05,
                            ..Default::default()
                        });
                        engine.analyze(records)
                    },
                    criterion::BatchSize::LargeInput,
                )
            },
        );
    }
    group.finish();

    // Rescaling ablation (DESIGN.md §5): analyzing at a coarser time scale
    // trades resolution for speed — the knob behind the paper's
    // daily/weekly/monthly operation.
    let mut group = c.benchmark_group("pipeline_time_scale_ablation");
    group.sample_size(10);
    let records = records_for(100, 1);
    for scale in [1u64, 60] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{scale}s_bins")),
            &records,
            |b, records| {
                b.iter_batched(
                    || records.clone(),
                    |records| {
                        let mut cfg = BaywatchConfig {
                            local_tau: 0.05,
                            time_scale: scale,
                            ..Default::default()
                        };
                        cfg.detector.time_scale = scale;
                        let mut engine = Baywatch::new(cfg);
                        engine.analyze(records)
                    },
                    criterion::BatchSize::LargeInput,
                )
            },
        );
    }
    group.finish();
}

/// The per-pair hot path in isolation: the beaconing-detection MapReduce
/// job over many *short* pairs — the regime where FFT planning used to
/// dominate and where the thread-local spectral workspace pays off, since
/// every worker thread reuses its plans across all pairs of the batch.
fn bench_detection_job(c: &mut Criterion) {
    let mut group = c.benchmark_group("detect_beaconing_job");
    group.sample_size(10);
    for pairs in [50usize, 200] {
        let mut records = Vec::new();
        for p in 0..pairs {
            // Varied short periods → varied (but repeating) FFT lengths.
            let period = 20 + (p as u64 % 8) * 5;
            for i in 0..60u64 {
                records.push(LogRecord::new(
                    10_000 + i * period,
                    format!("host{p}"),
                    format!("dest{p}.example.com"),
                    "t",
                ));
            }
        }
        let engine = MapReduce::new(JobConfig {
            partitions: 8,
            threads: 4,
        });
        let summaries = jobs::extract_summaries(&engine, records, 1);
        let detector = PeriodicityDetector::new(DetectorConfig::default());
        group.throughput(Throughput::Elements(pairs as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(pairs),
            &summaries,
            |b, summaries| {
                b.iter_batched(
                    || summaries.clone(),
                    |summaries| jobs::detect_beaconing(&engine, summaries, &detector),
                    criterion::BatchSize::LargeInput,
                )
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline, bench_detection_job);
criterion_main!(benches);
