//! Golden-run regression suite: a seeded `netsim::enterprise` trace runs
//! end-to-end and the complete deterministic export — funnel counts,
//! quarantine/shed tallies, metrics snapshot, ranked top-K — is compared
//! byte-for-byte against `tests/golden/funnel.json`.
//!
//! # Bless workflow
//!
//! ```text
//! BAYWATCH_BLESS=1 cargo test --test golden_funnel
//! ```
//!
//! rewrites the snapshot. The suite also **self-blesses when the file is
//! absent** (a fresh checkout or a toolchain/dependency change that was
//! deliberately accompanied by deleting the snapshot): the exported bytes
//! are a function of the exact `rand` build the detector's permutation
//! filter links against, so the snapshot is machine-blessed where the
//! tests run, never hand-edited. Within one environment the export must be
//! byte-stable — across consecutive runs AND across shuffled input order —
//! and that invariant is asserted in-process by
//! [`export_is_deterministic_and_order_independent`] independently of the
//! on-disk snapshot.

use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

use baywatch::core::pipeline::{Baywatch, BaywatchConfig};
use baywatch::core::record::LogRecord;
use baywatch::core::report::export_json;
use baywatch::netsim::enterprise::{EnterpriseConfig, EnterpriseSimulator};
use baywatch::obs::ManualClock;
use baywatch::record_from_event;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

const TOP_K: usize = 10;

/// The seeded enterprise trace the suite pins: small enough to run in the
/// default test profile, busy enough that every pipeline stage sees
/// non-trivial volume (benign periodic services + malware campaigns).
fn trace() -> Vec<LogRecord> {
    let sim = EnterpriseSimulator::new(EnterpriseConfig {
        hosts: 60,
        days: 2,
        infection_rate: 0.10,
        ..Default::default()
    });
    let mut records = Vec::new();
    for day in 0..sim.config().days {
        records.extend(sim.generate_day(day).iter().map(record_from_event));
    }
    records
}

/// Runs one analysis window under a manual clock (so no wall-clock value
/// can reach the export) and returns the deterministic JSON export.
fn run_window(records: Vec<LogRecord>) -> String {
    let mut engine = Baywatch::with_clock(
        BaywatchConfig {
            // 60-host population: τ_P = 5% separates org-wide services
            // from victim pools, as in the end-to-end suite.
            local_tau: 0.05,
            ..Default::default()
        },
        Arc::new(ManualClock::new()),
    );
    let report = engine.analyze(records);
    export_json(&report, &engine.metrics_snapshot(), TOP_K)
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("funnel.json")
}

/// Extracts the integer value of `"name":<digits>` from the export.
fn counter(json: &str, name: &str) -> u64 {
    let needle = format!("\"{name}\":");
    let at = json
        .find(&needle)
        .unwrap_or_else(|| panic!("{name} missing from export"));
    json[at + needle.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .unwrap_or_else(|_| panic!("{name} is not an unsigned integer"))
}

#[test]
fn golden_snapshot_matches() {
    let exported = run_window(trace());
    let path = golden_path();
    let bless = std::env::var("BAYWATCH_BLESS").is_ok_and(|v| v == "1");
    if bless || !path.exists() {
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent).expect("create tests/golden");
        }
        fs::write(&path, &exported).expect("write golden snapshot");
        return;
    }
    let golden = fs::read_to_string(&path).expect("read golden snapshot");
    assert_eq!(
        exported,
        golden,
        "export deviates from {}; if the change is intentional, re-bless \
         with BAYWATCH_BLESS=1 cargo test --test golden_funnel",
        path.display()
    );
}

#[test]
fn export_is_deterministic_and_order_independent() {
    let records = trace();
    let first = run_window(records.clone());
    let second = run_window(records.clone());
    assert_eq!(first, second, "two consecutive runs must be byte-identical");

    let mut shuffled = records;
    shuffled.shuffle(&mut StdRng::seed_from_u64(0xBEAC0));
    let reordered = run_window(shuffled);
    assert_eq!(
        first, reordered,
        "input order must not leak into the export"
    );
}

#[test]
fn every_stage_appears_with_real_counts() {
    let exported = run_window(trace());

    // Funnel stages (whitelists → periodicity → rank) carry real volume.
    assert!(counter(&exported, "events") > 1_000);
    assert!(counter(&exported, "pairs") > 10);
    assert!(counter(&exported, "stage.02_global_whitelist.admitted") > 0);
    assert!(counter(&exported, "stage.03_local_whitelist.admitted") > 0);
    assert!(
        counter(&exported, "stage.04_periodicity.admitted") > 0,
        "the seeded trace contains beaconing campaigns; detection must fire"
    );
    assert!(counter(&exported, "stage.07_lm_rank.admitted") > 0);

    // Detector internals: periodogram → pruning → ACF → GMM all ran.
    assert!(counter(&exported, "detector.pairs_analyzed") > 0);
    assert!(counter(&exported, "detector.periodogram.raw_candidates") > 0);
    assert!(counter(&exported, "detector.prune.survivors") > 0);
    assert!(counter(&exported, "detector.acf.verified") > 0);
    assert!(counter(&exported, "detector.gmm.fitted") > 0);

    // MapReduce ran at least extract + detect jobs.
    assert!(counter(&exported, "mapreduce.jobs") >= 2);

    // Wall-clock-derived data must never reach the golden export.
    assert!(
        !exported.contains("timings") && !exported.contains("nanos") && !exported.contains("span."),
        "timing data leaked into the deterministic export"
    );
}
