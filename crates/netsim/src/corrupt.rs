//! Deterministic log-corruption generators for the fault-injection
//! harness.
//!
//! The paper's ingest runs over months of real proxy logs where truncated
//! writes, garbled fields, encoding damage, clock skew and duplicated
//! events are routine (Challenge 2, §III). This module manufactures
//! exactly those defects — seeded, so a failing run replays byte-for-byte:
//!
//! * [`to_elff`] renders a trace as a BlueCoat-style ELFF file,
//! * [`corrupt_elff_lines`] damages a configurable fraction of data lines
//!   (truncation, field garbling, invalid UTF-8) such that every damaged
//!   line is guaranteed unparseable — making malformed-line counts exact,
//! * [`skew_and_duplicate`] perturbs events before rendering (timestamp
//!   skew, duplicated events), the damage lenient ingest must absorb
//!   *semantically* rather than reject.

use rand::Rng;

use crate::types::ProxyEvent;

/// Event-level corruption knobs for [`skew_and_duplicate`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorruptionConfig {
    /// Probability that a data line is damaged by [`corrupt_elff_lines`].
    pub line_corruption_rate: f64,
    /// Probability that an event is emitted twice.
    pub duplicate_rate: f64,
    /// Maximum clock skew applied to an event timestamp (seconds, ±).
    pub max_skew_seconds: u64,
}

impl Default for CorruptionConfig {
    fn default() -> Self {
        Self {
            line_corruption_rate: 0.05,
            duplicate_rate: 0.02,
            max_skew_seconds: 2,
        }
    }
}

/// The `#Fields:` schema emitted by [`to_elff`].
pub const ELFF_FIELDS: &str = "x-timestamp c-mac cs-host cs-uri-path";

/// Renders one event as an ELFF data line under [`ELFF_FIELDS`].
pub fn to_elff_line(event: &ProxyEvent) -> String {
    // An empty path would change the column count, so normalize to "/".
    let path = if event.url_path.is_empty() {
        "/".to_owned()
    } else {
        format!("/{}", event.url_path)
    };
    format!(
        "{} {} {} {}",
        event.timestamp, event.host, event.domain, path
    )
}

/// Renders a full ELFF file (directives + one line per event).
pub fn to_elff(events: &[ProxyEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 48 + 64);
    out.push_str("#Software: netsim proxy emitter\n");
    out.push_str("#Fields: ");
    out.push_str(ELFF_FIELDS);
    out.push('\n');
    for e in events {
        out.push_str(&to_elff_line(e));
        out.push('\n');
    }
    out
}

/// Damages roughly `rate` of the data lines in an ELFF file and returns
/// the corrupted bytes plus the exact number of damaged lines.
///
/// Directive (`#`) and empty lines are never touched. Every damaged line
/// is guaranteed to fail ELFF parsing — truncation drops required columns,
/// garbling destroys the timestamp, and the UTF-8 fault injects bytes that
/// survive only as replacement characters — so callers can assert
/// `malformed_lines` exactly. Output is bytes, not a `String`, because the
/// UTF-8 fault is real encoding damage.
pub fn corrupt_elff_lines<R: Rng + ?Sized>(elff: &str, rate: f64, rng: &mut R) -> (Vec<u8>, usize) {
    let mut out = Vec::with_capacity(elff.len());
    let mut damaged = 0usize;
    for line in elff.lines() {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || rng.random_range(0.0..1.0) >= rate {
            out.extend_from_slice(line.as_bytes());
            out.push(b'\n');
            continue;
        }
        damaged += 1;
        match rng.random_range(0..3u32) {
            // Truncated write: only a fragment of the line made it to disk.
            0 => {
                let fields: Vec<&str> = line.split_whitespace().collect();
                let keep = fields.first().copied().unwrap_or("0");
                out.extend_from_slice(keep.as_bytes());
                out.extend_from_slice(b" 02:00");
            }
            // Garbled field: the timestamp column turned to junk.
            1 => {
                let mut fields: Vec<String> = line.split_whitespace().map(str::to_owned).collect();
                if let Some(first) = fields.first_mut() {
                    *first = format!("x@{}q", rng.random_range(0..1_000_000u64));
                }
                out.extend_from_slice(fields.join(" ").as_bytes());
            }
            // Encoding damage: invalid UTF-8 where the timestamp was.
            _ => {
                out.extend_from_slice(&[0xff, 0xfe, 0x80]);
                out.extend_from_slice(line.as_bytes());
            }
        }
        out.push(b'\n');
    }
    (out, damaged)
}

/// Applies event-level damage: each event's timestamp is skewed by up to
/// `±max_skew_seconds`, and a `duplicate_rate` fraction of events is
/// emitted twice (log replay). The result is *not* re-sorted — out-of-order
/// delivery is part of the fault model the pipeline must absorb.
pub fn skew_and_duplicate<R: Rng + ?Sized>(
    events: &[ProxyEvent],
    config: &CorruptionConfig,
    rng: &mut R,
) -> Vec<ProxyEvent> {
    let mut out = Vec::with_capacity(events.len() + events.len() / 16);
    for e in events {
        let mut e = e.clone();
        if config.max_skew_seconds > 0 {
            let skew = rng.random_range(0..=config.max_skew_seconds);
            if rng.random_range(0..2u32) == 0 {
                e.timestamp = e.timestamp.saturating_sub(skew);
            } else {
                e.timestamp += skew;
            }
        }
        let duplicate = rng.random_range(0.0..1.0) < config.duplicate_rate;
        out.push(e.clone());
        if duplicate {
            out.push(e);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::HostId;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn events(n: u64) -> Vec<ProxyEvent> {
        (0..n)
            .map(|i| ProxyEvent {
                timestamp: 1_000 + i * 60,
                host: HostId(7),
                source_ip: 0x0a00_0001,
                domain: "c2.example.biz".into(),
                url_path: "ping".into(),
            })
            .collect()
    }

    #[test]
    fn elff_rendering_has_header_and_lines() {
        let text = to_elff(&events(3));
        assert!(text.starts_with("#Software"));
        assert!(text.contains("#Fields: x-timestamp c-mac cs-host cs-uri-path"));
        assert_eq!(text.lines().count(), 5);
        assert!(text.contains("1000 02:00:00:00:00:07 c2.example.biz /ping"));
    }

    #[test]
    fn empty_path_keeps_column_count() {
        let mut evs = events(1);
        evs[0].url_path.clear();
        let line = to_elff_line(&evs[0]);
        assert_eq!(line.split_whitespace().count(), 4);
    }

    #[test]
    fn corruption_is_deterministic_per_seed() {
        let text = to_elff(&events(200));
        let (a, na) = corrupt_elff_lines(&text, 0.05, &mut StdRng::seed_from_u64(9));
        let (b, nb) = corrupt_elff_lines(&text, 0.05, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
        assert_eq!(na, nb);
        let (c, _) = corrupt_elff_lines(&text, 0.05, &mut StdRng::seed_from_u64(10));
        assert_ne!(a, c, "different seed must damage different lines");
    }

    #[test]
    fn corruption_rate_roughly_respected_and_directives_spared() {
        let text = to_elff(&events(500));
        let (bytes, damaged) = corrupt_elff_lines(&text, 0.1, &mut StdRng::seed_from_u64(1));
        assert!(damaged > 10 && damaged < 150, "damaged = {damaged}");
        let out = String::from_utf8_lossy(&bytes);
        assert!(out.contains("#Fields: x-timestamp"), "directives intact");
    }

    #[test]
    fn zero_rate_is_identity() {
        let text = to_elff(&events(50));
        let (bytes, damaged) = corrupt_elff_lines(&text, 0.0, &mut StdRng::seed_from_u64(2));
        assert_eq!(damaged, 0);
        assert_eq!(bytes, text.as_bytes());
    }

    #[test]
    fn skew_stays_within_bounds() {
        let evs = events(300);
        let cfg = CorruptionConfig {
            duplicate_rate: 0.0,
            max_skew_seconds: 3,
            ..Default::default()
        };
        let out = skew_and_duplicate(&evs, &cfg, &mut StdRng::seed_from_u64(3));
        assert_eq!(out.len(), evs.len());
        for (orig, new) in evs.iter().zip(&out) {
            let delta = orig.timestamp.abs_diff(new.timestamp);
            assert!(delta <= 3, "skew {delta} out of bounds");
        }
        assert!(
            evs.iter()
                .zip(&out)
                .any(|(a, b)| a.timestamp != b.timestamp),
            "some skew must actually occur"
        );
    }

    #[test]
    fn duplicates_are_exact_copies() {
        let evs = events(100);
        let cfg = CorruptionConfig {
            duplicate_rate: 1.0,
            max_skew_seconds: 0,
            ..Default::default()
        };
        let out = skew_and_duplicate(&evs, &cfg, &mut StdRng::seed_from_u64(4));
        assert_eq!(out.len(), 200);
        for pair in out.chunks(2) {
            assert_eq!(pair[0], pair[1]);
        }
    }
}
