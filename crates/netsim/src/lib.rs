//! Enterprise web-proxy traffic simulation for evaluating BAYWATCH.
//!
//! The paper's evaluation (§VIII) runs on 35.6 TB of BlueCoat proxy logs —
//! 34.6 billion events from 130 K devices over five months — which are not
//! available outside the authors' organization. This crate substitutes a
//! *statistical* reproduction: an enterprise simulator that generates proxy
//! events with the structures the paper describes, at laptop scale and with
//! full ground truth (see DESIGN.md for the substitution argument).
//!
//! What is modeled:
//!
//! * **Benign browsing** ([`benign`]): bursty human sessions against a
//!   Zipf-weighted popular-domain catalog — the bulk of traffic that the
//!   whitelists remove.
//! * **Legitimate periodic services** ([`benign`]): software-update checks,
//!   AV signature polls, news/stream refreshes — the Challenge-4 lookalikes
//!   that make beaconing detection hard.
//! * **Malware beaconing** ([`malware`]): TDSS-, Zeus-, ZeroAccess- and
//!   Conficker-style callback schedules with the real-world perturbations
//!   of Fig. 2 (jitter, gaps, multi-scale on/off patterns) and DGA
//!   destinations.
//! * **Synthetic noise models** ([`synth`]): the Gaussian / missing-event /
//!   adding-event noise injections of the robustness evaluation (Fig. 10).
//! * **Ground truth** ([`oracle`]): a VirusTotal-style oracle labeling
//!   destinations, with a configurable miss rate.
//! * **Adversarial workloads** ([`adversarial`]): deterministic
//!   pathological pairs (extreme-span series, EM-hostile interval lists)
//!   for exercising the deadline / load-shedding machinery.
//!
//! ```
//! use baywatch_netsim::enterprise::{EnterpriseConfig, EnterpriseSimulator};
//!
//! let mut sim = EnterpriseSimulator::new(EnterpriseConfig {
//!     hosts: 50,
//!     days: 2,
//!     ..Default::default()
//! });
//! let trace = sim.generate();
//! assert!(trace.events.len() > 1_000);
//! assert!(!trace.ground_truth.malicious_domains.is_empty());
//! ```

pub mod adversarial;
pub mod benign;
pub mod corrupt;
pub mod dns;
pub mod enterprise;
pub mod longtrace;
pub mod malware;
pub mod netflow;
pub mod oracle;
pub mod resilience;
pub mod rngutil;
pub mod synth;
pub mod tracestats;
pub mod types;

pub use enterprise::{EnterpriseConfig, EnterpriseSimulator, Trace};
pub use longtrace::{LongTraceConfig, LongTraceGenerator};
pub use oracle::ThreatIntelOracle;
pub use types::{GroundTruth, HostId, ProxyEvent};
