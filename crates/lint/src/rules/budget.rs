//! L3 — unbounded loops in the hot detection kernels must checkpoint an
//! `ExecBudget`.
//!
//! The periodogram, permutation test, ACF hill scan, GMM EM sweep, and the
//! detector driver are the places a pathological series can pin a worker
//! for a whole window. PR 3 threaded `ExecBudget` checkpoints through
//! them; this rule keeps that property: every `loop { … }` and
//! `while … { … }` in those modules (bounded `for` loops are exempt by
//! construction) must call `checkpoint`/`charge`/`is_exhausted` somewhere
//! in its condition or body — or carry an allowlist entry explaining why
//! it terminates in bounded time.

use super::{snippet_at, Finding};
use crate::syntax::File;
use crate::walk::SourceFile;

/// Identifiers that prove the loop consults a budget.
const CHECKPOINTS: &[&str] = &["checkpoint", "charge", "is_exhausted"];

pub fn check(sf: &SourceFile, file: &File, lines: &[&str], findings: &mut Vec<Finding>) {
    let tokens = &file.tokens;
    for (i, t) in tokens.iter().enumerate() {
        if !(t.is_ident("loop") || t.is_ident("while")) || file.in_test_code(i) {
            continue;
        }
        // Find the body: first `{` after the keyword (skipping grouped
        // sub-expressions in a `while` condition).
        let mut j = i + 1;
        let mut body = None;
        while j < tokens.len() {
            let u = &tokens[j];
            if u.is_punct(';') {
                break;
            }
            if u.is_punct('{') {
                body = file.matching(j);
                break;
            }
            if u.is_punct('(') || u.is_punct('[') {
                match file.matching(j) {
                    Some(c) => j = c + 1,
                    None => break,
                }
                continue;
            }
            j += 1;
        }
        let Some(close) = body else { continue };
        // Condition tokens (between keyword and `{`) count too: a
        // `while !budget.is_exhausted()` loop is checkpointed by its guard.
        let checkpointed = tokens[i + 1..close]
            .iter()
            .any(|t| CHECKPOINTS.iter().any(|c| t.is_ident(c)));
        if !checkpointed {
            findings.push(Finding {
                rule: "L3-budget",
                path: sf.rel_path.clone(),
                line: t.line,
                snippet: snippet_at(lines, t.line),
                message: "unbounded loop in a budgeted hot module never consults an \
                          ExecBudget; add a checkpoint() call or allowlist with a \
                          termination argument"
                    .to_string(),
                fix: None,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::check_file;
    use crate::walk::{Section, SourceFile};
    use std::path::PathBuf;

    fn hot_file() -> SourceFile {
        SourceFile {
            abs_path: PathBuf::from("crates/timeseries/src/gmm.rs"),
            rel_path: "crates/timeseries/src/gmm.rs".to_string(),
            crate_name: Some("timeseries".to_string()),
            section: Section::Lib,
        }
    }

    #[test]
    fn unchecked_loops_in_hot_modules_are_flagged() {
        let src = "fn em() { loop { step(); } }\n\
                   fn scan() { let mut i = 0; while i < n { i += walk(); } }";
        let f = check_file(&hot_file(), src);
        let budget: Vec<_> = f.iter().filter(|f| f.rule == "L3-budget").collect();
        assert_eq!(budget.len(), 2);
        assert_eq!(budget[0].line, 1);
        assert_eq!(budget[1].line, 2);
    }

    #[test]
    fn checkpointed_and_bounded_loops_pass() {
        let src = "fn em(budget: &ExecBudget) -> Result<(), E> {\n\
                   loop { budget.checkpoint(n)?; step(); }\n\
                   }\n\
                   fn guard(budget: &ExecBudget) { while !budget.is_exhausted() { step(); } }\n\
                   fn bounded() { for _ in 0..20 { step(); } }";
        let f = check_file(&hot_file(), src);
        assert!(f.iter().all(|f| f.rule != "L3-budget"), "{f:?}");
    }

    #[test]
    fn non_hot_modules_are_exempt() {
        let src = "fn em() { loop { step(); } }";
        let sf = SourceFile {
            abs_path: PathBuf::from("crates/timeseries/src/series.rs"),
            rel_path: "crates/timeseries/src/series.rs".to_string(),
            crate_name: Some("timeseries".to_string()),
            section: Section::Lib,
        };
        assert!(check_file(&sf, src).iter().all(|f| f.rule != "L3-budget"));
    }

    #[test]
    fn test_modules_in_hot_files_are_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n fn t() { loop { if done() { break; } } }\n}";
        assert!(check_file(&hot_file(), src).is_empty());
    }
}
