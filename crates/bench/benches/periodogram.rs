//! Criterion micro-bench: periodogram + permutation-threshold cost vs
//! series length (the inner loop of the paper's O(n log n) claim).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use baywatch_netsim::synth::SyntheticBeacon;
use baywatch_timeseries::periodogram::Periodogram;
use baywatch_timeseries::permutation::{permutation_threshold, PermutationConfig};
use baywatch_timeseries::series::TimeSeries;

fn series_of(bins: usize) -> TimeSeries {
    let period = 60u64;
    let count = bins as u64 / period;
    let ts = SyntheticBeacon {
        period: period as f64,
        gaussian_sigma: 2.0,
        count: count as usize,
        ..Default::default()
    }
    .generate(1);
    TimeSeries::from_timestamps(&ts, 1).unwrap()
}

fn bench_periodogram(c: &mut Criterion) {
    let mut group = c.benchmark_group("periodogram");
    for bins in [1 << 12, 1 << 14, 1 << 16] {
        let series = series_of(bins);
        group.throughput(Throughput::Elements(series.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(bins), &series, |b, s| {
            b.iter(|| Periodogram::compute(black_box(s)));
        });
    }
    group.finish();
}

fn bench_permutation(c: &mut Criterion) {
    let mut group = c.benchmark_group("permutation_threshold");
    group.sample_size(10);
    let series = series_of(1 << 14);
    for m in [5usize, 20, 40] {
        let cfg = PermutationConfig {
            permutations: m,
            ..Default::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(m), &cfg, |b, cfg| {
            b.iter(|| permutation_threshold(black_box(&series), cfg).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_periodogram, bench_permutation);
criterion_main!(benches);
