//! Destination popularity statistics (§VII-C).
//!
//! For the local whitelist, BAYWATCH measures each destination's popularity
//! as the number of distinct sources contacting it divided by the total
//! number of sources in the window — computed here as a MapReduce job
//! (`d → {s}` then `d → |{s}| / |S|`).

use std::collections::{HashMap, HashSet};

use baywatch_mapreduce::MapReduce;

use crate::record::LogRecord;

/// Popularity (fraction of the monitored population) per destination.
#[derive(Debug, Clone, Default)]
pub struct PopularityStats {
    per_domain: HashMap<String, f64>,
    total_sources: usize,
}

impl PopularityStats {
    /// Computes popularity from a window of records using the given
    /// MapReduce engine.
    pub fn compute(engine: &MapReduce, records: &[LogRecord]) -> Self {
        let total_sources = records
            .iter()
            .map(|r| r.source.as_str())
            .collect::<HashSet<_>>()
            .len();
        if total_sources == 0 {
            return Self::default();
        }
        // MAP: record -> (domain, source); REDUCE: count distinct sources.
        let inputs: Vec<(&str, &str)> = records
            .iter()
            .map(|r| (r.domain.as_str(), r.source.as_str()))
            .collect();
        let pairs = engine.run(
            inputs,
            |(d, s), emit| emit(d.to_owned(), s.to_owned()),
            |d, sources| {
                let distinct: HashSet<&String> = sources.iter().collect();
                vec![(d.clone(), distinct.len())]
            },
        );
        let per_domain = pairs
            .into_iter()
            .map(|(d, n)| (d, n as f64 / total_sources as f64))
            .collect();
        Self {
            per_domain,
            total_sources,
        }
    }

    /// Popularity of a destination (0 when never seen).
    pub fn popularity(&self, domain: &str) -> f64 {
        self.per_domain.get(domain).copied().unwrap_or(0.0)
    }

    /// Number of distinct sources in the window.
    pub fn total_sources(&self) -> usize {
        self.total_sources
    }

    /// Number of distinct destinations.
    pub fn distinct_destinations(&self) -> usize {
        self.per_domain.len()
    }

    /// Number of distinct sources contacting `domain`.
    pub fn source_count(&self, domain: &str) -> usize {
        (self.popularity(domain) * self.total_sources as f64).round() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use baywatch_mapreduce::JobConfig;

    fn engine() -> MapReduce {
        MapReduce::new(JobConfig {
            partitions: 4,
            threads: 2,
        })
    }

    fn record(s: &str, d: &str) -> LogRecord {
        LogRecord::new(0, s, d, "")
    }

    #[test]
    fn popularity_fractions() {
        let records = vec![
            record("a", "popular.com"),
            record("b", "popular.com"),
            record("c", "popular.com"),
            record("a", "niche.com"),
            // duplicate requests don't double-count sources
            record("a", "popular.com"),
        ];
        let stats = PopularityStats::compute(&engine(), &records);
        assert_eq!(stats.total_sources(), 3);
        assert!((stats.popularity("popular.com") - 1.0).abs() < 1e-12);
        assert!((stats.popularity("niche.com") - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(stats.popularity("unknown.com"), 0.0);
        assert_eq!(stats.distinct_destinations(), 2);
        assert_eq!(stats.source_count("popular.com"), 3);
        assert_eq!(stats.source_count("niche.com"), 1);
    }

    #[test]
    fn empty_window() {
        let stats = PopularityStats::compute(&engine(), &[]);
        assert_eq!(stats.total_sources(), 0);
        assert_eq!(stats.popularity("x.com"), 0.0);
    }

    #[test]
    fn large_window_consistency() {
        // 100 sources; domain "shared.com" contacted by every 4th source.
        let mut records = Vec::new();
        for i in 0..100 {
            let s = format!("host{i}");
            records.push(record(&s, "base.com"));
            if i % 4 == 0 {
                records.push(record(&s, "shared.com"));
            }
        }
        let stats = PopularityStats::compute(&engine(), &records);
        assert_eq!(stats.total_sources(), 100);
        assert!((stats.popularity("shared.com") - 0.25).abs() < 1e-12);
        assert!((stats.popularity("base.com") - 1.0).abs() < 1e-12);
    }
}
