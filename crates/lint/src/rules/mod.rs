//! The invariant catalogue: one module per rule family.
//!
//! | id               | guards                                                    |
//! |------------------|-----------------------------------------------------------|
//! | `L1-float-ord`   | float comparators must be total (`total_cmp`)             |
//! | `L2-ambient-rng` | no ambient randomness in deterministic crates             |
//! | `L2-wall-clock`  | no wall-clock reads in deterministic crates               |
//! | `L2-ambient-fs`  | no unaudited filesystem access there either               |
//! | `L2-hash-iter`   | no order-observing hash-container iteration there either  |
//! | `L3-budget`      | unbounded loops in hot modules must checkpoint a budget   |
//! | `L4-panic`       | no `unwrap`/`expect` in non-test library code             |
//!
//! Every rule matches token sequences from [`crate::lexer`] inside scopes
//! recovered by [`crate::syntax`] — never raw text — so comments, doc
//! examples, and string literals cannot produce findings.

pub mod budget;
pub mod determinism;
pub mod float_ord;
pub mod panics;

use crate::lexer::lex;
use crate::syntax::File;
use crate::walk::{Section, SourceFile};

/// Every rule id the linter knows, in report order. Allowlist entries are
/// validated against this list so a typo cannot silently suppress nothing.
pub const RULE_IDS: &[&str] = &[
    "L1-float-ord",
    "L2-ambient-rng",
    "L2-wall-clock",
    "L2-ambient-fs",
    "L2-hash-iter",
    "L3-budget",
    "L4-panic",
];

/// One violation of the invariant catalogue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule id (one of [`RULE_IDS`]).
    pub rule: &'static str,
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// 1-indexed line of the offending token.
    pub line: u32,
    /// The trimmed source line — the human anchor, and (with `rule` and
    /// `path`) the line-number-independent identity used by the baseline.
    pub snippet: String,
    /// What is wrong and how to fix it.
    pub message: String,
}

/// Runs every applicable rule over one source file.
pub fn check_file(sf: &SourceFile, source: &str) -> Vec<Finding> {
    let file = File::parse(lex(source));
    let lines: Vec<&str> = source.lines().collect();
    let mut findings = Vec::new();

    // L1 applies everywhere a comparator could leak into an ordering —
    // including tests and benches, whose assertions encode expected ranked
    // output.
    float_ord::check(sf, &file, &lines, &mut findings);

    // L2 guards the crates whose output must be byte-reproducible.
    if sf.in_deterministic_crate() && sf.section == Section::Lib {
        determinism::check(sf, &file, &lines, &mut findings);
    }

    // L3 guards the hot detection kernels.
    if sf.is_budgeted_module() {
        budget::check(sf, &file, &lines, &mut findings);
    }

    // L4 guards non-test library code, workspace-wide.
    if sf.section == Section::Lib {
        panics::check(sf, &file, &lines, &mut findings);
    }

    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    // Nested `fn` items are visited once per enclosing scope; identical
    // findings collapse here.
    findings.dedup();
    findings
}

/// The trimmed source line a token sits on (1-indexed), for snippets.
pub(crate) fn snippet_at(lines: &[&str], line: u32) -> String {
    lines
        .get(line.saturating_sub(1) as usize)
        .map(|l| l.trim().to_string())
        .unwrap_or_default()
}
