//! L6 fixture: metric-name sites cross-checked against the workspace
//! `METRICS.md` (declares `fixture.events` counter/always,
//! `fixture.gated` counter/gated, `fixture.stage.*.hits` counter/always).

pub struct Meter {
    registry: Registry,
}

impl Meter {
    /// Negative: declared name, matching kind.
    pub fn record_event(&self) {
        self.registry.counter("fixture.events").add(1);
    }

    /// Positive: typo'd name — undeclared, with a nearest-name hint.
    pub fn record_typo(&self) {
        self.registry.counter("fixture.evnets").add(1);
    }

    /// Positive: declared gated but written unconditionally.
    pub fn record_gated_unconditionally(&self, n: u64) {
        self.registry.counter("fixture.gated").add(n);
    }

    /// Negative: the same gated write behind a guard.
    pub fn record_gated(&self, n: u64) {
        if n > 0 {
            self.registry.counter("fixture.gated").add(n);
        }
    }

    /// Positive: kind drift — declared a counter, written as a gauge.
    pub fn record_drift(&self) {
        self.registry.gauge("fixture.events").set(1);
    }

    /// Positive: a name the linter cannot read statically.
    pub fn record_opaque(&self, name: &str) {
        self.registry.counter(name).add(1);
    }

    /// Suppressed twin: non-literal, allowlisted by the `dynamic_name`
    /// pattern with the producible names written down.
    pub fn record_dynamic(&self, dynamic_name: &str) {
        self.registry.counter(dynamic_name).add(1);
    }

    /// Negative: format!-built name declared by the same wildcard row.
    pub fn record_stage(&self, stage: &str) {
        self.registry
            .counter(&format!("fixture.stage.{stage}.hits"))
            .add(1);
    }
}
