//! Event and ground-truth types shared by the simulator and the pipeline
//! evaluation.

use std::collections::{HashMap, HashSet};

/// A stable host identity. The paper correlates proxy-log source IPs with
/// MAC addresses from DHCP logs because IPs churn; the simulator models the
/// same distinction: `HostId` is the MAC-like stable identity, while the IP
/// changes across days.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HostId(pub u32);

impl std::fmt::Display for HostId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Render as a MAC-ish string for log realism.
        let b = self.0.to_be_bytes();
        write!(
            f,
            "02:00:{:02x}:{:02x}:{:02x}:{:02x}",
            b[0], b[1], b[2], b[3]
        )
    }
}

/// One web-proxy log event — the subset of BlueCoat fields the pipeline
/// consumes (§VII-A: source, destination, timestamp, plus the URL path that
/// feeds the token filter).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProxyEvent {
    /// Epoch timestamp in seconds (finest granularity in the paper).
    pub timestamp: u64,
    /// Stable device identity (MAC-correlated).
    pub host: HostId,
    /// Source IP at the time of the request (v4, packed). Changes with
    /// DHCP churn; kept to demonstrate why keying on it would be wrong.
    pub source_ip: u32,
    /// Destination domain name.
    pub domain: String,
    /// First path segment of the requested URL (token-filter input).
    pub url_path: String,
}

/// Ground truth attached to a simulated trace.
#[derive(Debug, Clone, Default)]
pub struct GroundTruth {
    /// Destinations operated by malware (C&C, DGA rendezvous).
    pub malicious_domains: HashSet<String>,
    /// Destinations that beacon legitimately (update checks, pollers) —
    /// the false-positive bait of Challenge 4.
    pub benign_periodic_domains: HashSet<String>,
    /// Which hosts are infected, and with which malicious domains they
    /// communicate.
    pub infections: HashMap<HostId, Vec<String>>,
}

impl GroundTruth {
    /// Whether a destination is truly malicious.
    pub fn is_malicious(&self, domain: &str) -> bool {
        self.malicious_domains.contains(domain)
    }

    /// Number of infected hosts.
    pub fn infected_host_count(&self) -> usize {
        self.infections.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_id_displays_as_mac() {
        let s = HostId(258).to_string();
        assert!(s.starts_with("02:00:"));
        assert_eq!(s.split(':').count(), 6);
    }

    #[test]
    fn ground_truth_queries() {
        let mut gt = GroundTruth::default();
        gt.malicious_domains.insert("evil.com".into());
        gt.infections.insert(HostId(1), vec!["evil.com".into()]);
        assert!(gt.is_malicious("evil.com"));
        assert!(!gt.is_malicious("google.com"));
        assert_eq!(gt.infected_host_count(), 1);
    }
}
