//! Cooperative execution budgets for the detection kernels.
//!
//! The paper's deployment runs under a hard operational window (§VIII-B2:
//! 26M pairs must clear in ~1.5 h on weekdays), so a single pathological
//! communication pair must not be allowed to stall a worker. [`ExecBudget`]
//! is a cheap, shareable handle that the detector's hot loops — permutation
//! rounds, the GMM EM/BIC sweep, the ACF hill scan — poll at safe
//! checkpoints. When the budget is exhausted the kernel unwinds with
//! [`TimeSeriesError::BudgetExhausted`] instead of spinning, in the spirit
//! of Vlachos et al.'s O(n log n)-per-series cost bound and MapReduce's
//! straggler handling.
//!
//! Two limits compose, either of which may be absent:
//!
//! - a **wall-clock deadline**, for production runs where only elapsed
//!   time matters;
//! - a **work-unit (ops) ceiling**, a deterministic proxy for elapsed time
//!   (units are charged proportionally to the FFT/EM work actually
//!   performed), so tests can exercise timeout paths reproducibly on any
//!   machine.
//!
//! A handle with neither limit is *unlimited*: every check is a pair of
//! relaxed atomic reads and the guarded code path is byte-identical to one
//! with no budget plumbing at all — the checkpoints only ever early-return,
//! never perturb RNG streams or numerical state.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::TimeSeriesError;

struct BudgetInner {
    /// Absolute wall-clock deadline, if armed.
    deadline: Option<Instant>,
    /// The wall-clock allowance the deadline was armed with, kept so
    /// utilization can be expressed as a fraction of it.
    allowance: Option<Duration>,
    /// Maximum abstract work units, if armed.
    max_ops: Option<u64>,
    /// Work units charged so far.
    ops: AtomicU64,
    /// Explicit cooperative cancellation (e.g. the window scheduler decided
    /// to shed this pair mid-flight).
    cancelled: AtomicBool,
}

/// Shared deadline + cancellation token threaded through detection kernels.
///
/// Cloning is cheap (an `Arc` bump); all clones observe the same ops
/// counter and cancellation flag, so a budget can be shared between a
/// worker and a supervisor.
#[derive(Clone)]
pub struct ExecBudget {
    inner: Arc<BudgetInner>,
}

impl std::fmt::Debug for ExecBudget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecBudget")
            .field("deadline", &self.inner.deadline)
            .field("max_ops", &self.inner.max_ops)
            .field("ops", &self.ops_used())
            .field("cancelled", &self.inner.cancelled.load(Ordering::Relaxed))
            .finish()
    }
}

impl ExecBudget {
    /// A budget with neither a deadline nor an ops ceiling. Checkpoints
    /// against it never trip (unless [`cancel`](Self::cancel) is called).
    pub fn unlimited() -> Self {
        Self::new(None, None)
    }

    /// A budget with an optional wall-clock allowance (from now) and an
    /// optional work-unit ceiling.
    pub fn new(wall: Option<Duration>, max_ops: Option<u64>) -> Self {
        ExecBudget {
            inner: Arc::new(BudgetInner {
                deadline: wall.map(|d| Instant::now() + d),
                allowance: wall,
                max_ops,
                ops: AtomicU64::new(0),
                cancelled: AtomicBool::new(false),
            }),
        }
    }

    /// True when no limit is armed: checks reduce to a cancellation load.
    pub fn is_unlimited(&self) -> bool {
        self.inner.deadline.is_none() && self.inner.max_ops.is_none()
    }

    /// Requests cooperative cancellation: every subsequent check fails.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Relaxed);
    }

    /// Work units charged so far across all clones of this handle.
    pub fn ops_used(&self) -> u64 {
        self.inner.ops.load(Ordering::Relaxed)
    }

    /// Charges `units` of work and reports whether the budget is now
    /// exhausted. Charging happens even when already exhausted, so
    /// [`ops_used`](Self::ops_used) reflects attempted work.
    #[must_use]
    pub fn charge(&self, units: u64) -> bool {
        let total = self.inner.ops.fetch_add(units, Ordering::Relaxed) + units;
        if let Some(max) = self.inner.max_ops {
            if total > max {
                return true;
            }
        }
        self.is_exhausted()
    }

    /// True when cancelled, past the wall-clock deadline, or over the ops
    /// ceiling.
    pub fn is_exhausted(&self) -> bool {
        if self.inner.cancelled.load(Ordering::Relaxed) {
            return true;
        }
        if let Some(max) = self.inner.max_ops {
            if self.inner.ops.load(Ordering::Relaxed) > max {
                return true;
            }
        }
        if let Some(deadline) = self.inner.deadline {
            if Instant::now() >= deadline {
                return true;
            }
        }
        false
    }

    /// The fraction of the tightest armed limit consumed so far: `0.0`
    /// idle, `≥ 1.0` exhausted, always `0.0` for an unlimited budget
    /// (and `1.0` once cancelled).
    ///
    /// The ops fraction is a pure function of the charged work, so for
    /// ops-ceiling budgets — the deterministic kind the tests arm — the
    /// pressure stream feeding the admission controller is byte-
    /// reproducible. The wall-clock fraction reads the same audited
    /// `Instant` source the deadline itself uses.
    pub fn utilization(&self) -> f64 {
        if self.inner.cancelled.load(Ordering::Relaxed) {
            return 1.0;
        }
        let ops_frac = match self.inner.max_ops {
            Some(max) if max > 0 => self.ops_used() as f64 / max as f64,
            Some(_) => 1.0,
            None => 0.0,
        };
        let wall_frac = match (self.inner.deadline, self.inner.allowance) {
            (Some(deadline), Some(allowance)) if !allowance.is_zero() => {
                let remaining = deadline.saturating_duration_since(Instant::now());
                1.0 - (remaining.as_secs_f64() / allowance.as_secs_f64()).min(1.0)
            }
            (Some(_), _) => 1.0,
            _ => 0.0,
        };
        ops_frac.max(wall_frac)
    }

    /// Charges `units` and unwinds with
    /// [`TimeSeriesError::BudgetExhausted`] when the budget is spent — the
    /// one-line checkpoint the kernels use.
    ///
    /// # Errors
    ///
    /// Returns [`TimeSeriesError::BudgetExhausted`] when exhausted.
    pub fn checkpoint(&self, units: u64) -> Result<(), TimeSeriesError> {
        if self.charge(units) {
            Err(TimeSeriesError::BudgetExhausted)
        } else {
            Ok(())
        }
    }
}

/// Declarative budget limits carried inside configuration structs (a spec,
/// not a live handle: [`start`](Self::start) arms a fresh [`ExecBudget`]
/// whose wall clock begins at the call).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BudgetSpec {
    /// Wall-clock allowance in milliseconds; `None` = no deadline.
    pub max_millis: Option<u64>,
    /// Work-unit ceiling; `None` = no ceiling. Units approximate FFT/EM
    /// inner-loop cost: one permutation round over an `n`-bin series
    /// charges `n`, one EM iteration over `n` intervals with `k` components
    /// charges `n·k`, and so on.
    pub max_ops: Option<u64>,
}

impl BudgetSpec {
    /// A spec with no limits (the default): [`start`](Self::start) yields
    /// an unlimited budget.
    pub const UNLIMITED: BudgetSpec = BudgetSpec {
        max_millis: None,
        max_ops: None,
    };

    /// True when either limit is armed.
    pub fn is_armed(&self) -> bool {
        self.max_millis.is_some() || self.max_ops.is_some()
    }

    /// Arms a live budget; the wall clock (if any) starts now.
    pub fn start(&self) -> ExecBudget {
        ExecBudget::new(self.max_millis.map(Duration::from_millis), self.max_ops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_trips() {
        let b = ExecBudget::unlimited();
        assert!(b.is_unlimited());
        assert!(!b.charge(u64::MAX / 2));
        assert!(!b.is_exhausted());
        assert!(b.checkpoint(1).is_ok());
    }

    #[test]
    fn ops_ceiling_is_deterministic() {
        let b = ExecBudget::new(None, Some(100));
        assert!(!b.charge(60));
        assert!(!b.is_exhausted());
        assert!(b.charge(60), "121 > 100 must exhaust");
        assert!(b.is_exhausted());
        assert_eq!(b.ops_used(), 120);
        assert_eq!(b.checkpoint(1), Err(TimeSeriesError::BudgetExhausted));
    }

    #[test]
    fn exact_ceiling_is_not_exhausted() {
        // The ceiling is inclusive: exactly max_ops of work is allowed.
        let b = ExecBudget::new(None, Some(100));
        assert!(!b.charge(100));
        assert!(!b.is_exhausted());
    }

    #[test]
    fn utilization_tracks_the_ops_fraction() {
        let b = ExecBudget::new(None, Some(200));
        assert_eq!(b.utilization(), 0.0);
        let _ = b.charge(50);
        assert_eq!(b.utilization(), 0.25);
        let _ = b.charge(150);
        assert_eq!(b.utilization(), 1.0);
        let _ = b.charge(100);
        assert_eq!(b.utilization(), 1.5, "over-charge reads past 1.0");
    }

    #[test]
    fn utilization_is_zero_for_unlimited_and_one_when_cancelled() {
        let b = ExecBudget::unlimited();
        assert_eq!(b.utilization(), 0.0);
        let _ = b.charge(1_000_000);
        assert_eq!(b.utilization(), 0.0);
        b.cancel();
        assert_eq!(b.utilization(), 1.0);
    }

    #[test]
    fn utilization_reads_the_wall_fraction() {
        let b = ExecBudget::new(Some(Duration::from_millis(0)), None);
        assert!(b.utilization() >= 1.0, "expired deadline reads ≥ 1");
        let generous = ExecBudget::new(Some(Duration::from_secs(600)), None);
        assert!(generous.utilization() < 0.01, "fresh 10-minute allowance");
    }

    #[test]
    fn wall_deadline_trips() {
        let b = ExecBudget::new(Some(Duration::from_millis(0)), None);
        std::thread::sleep(Duration::from_millis(2));
        assert!(b.is_exhausted());
        assert!(b.charge(0));
    }

    #[test]
    fn cancellation_is_shared_across_clones() {
        let a = ExecBudget::unlimited();
        let b = a.clone();
        assert!(!b.is_exhausted());
        a.cancel();
        assert!(b.is_exhausted());
        assert!(b.charge(0));
    }

    #[test]
    fn clones_share_the_ops_counter() {
        let a = ExecBudget::new(None, Some(10));
        let b = a.clone();
        assert!(!a.charge(6));
        assert!(b.charge(6), "12 > 10 across clones");
    }

    #[test]
    fn spec_defaults_unlimited() {
        let spec = BudgetSpec::default();
        assert_eq!(spec, BudgetSpec::UNLIMITED);
        assert!(!spec.is_armed());
        assert!(spec.start().is_unlimited());
        assert!(BudgetSpec {
            max_ops: Some(1),
            ..Default::default()
        }
        .is_armed());
        assert!(BudgetSpec {
            max_millis: Some(1),
            ..Default::default()
        }
        .is_armed());
    }

    #[test]
    fn debug_formats() {
        let b = ExecBudget::new(None, Some(5));
        let _ = b.charge(1);
        let s = format!("{b:?}");
        assert!(s.contains("max_ops"));
    }
}
