//! Autocorrelation-based verification — Step 3 of the detection algorithm.
//!
//! Following Vlachos et al. (SDM 2005), periodogram candidates are *verified*
//! on the autocorrelation function: a genuine period `P` produces a *hill*
//! (local maximum) in the ACF at lag `P`, whereas spectral leakage and
//! permutation survivors do not. The ACF also refines the coarse periodogram
//! period (periodogram resolution degrades as `N·dt/k` for small `k`) by
//! hill-climbing to the nearest local maximum, and its height provides the
//! periodicity-strength score used by the ranking filter.
//!
//! The ACF is computed in `O(n log n)` with the Wiener–Khinchin theorem:
//! zero-pad, FFT, multiply by the conjugate, inverse FFT.

use crate::budget::ExecBudget;
use crate::series::TimeSeries;
use crate::workspace::{with_thread_workspace, SpectralWorkspace};
use crate::TimeSeriesError;

/// The (biased, normalized) autocorrelation function of a series.
///
/// `value(0) == 1.0` by construction; lags run up to `n − 1`.
///
/// # Example
///
/// ```
/// use baywatch_timeseries::series::TimeSeries;
/// use baywatch_timeseries::acf::Autocorrelation;
///
/// let timestamps: Vec<u64> = (0..100).map(|i| i * 10).collect();
/// let series = TimeSeries::from_timestamps(&timestamps, 1).unwrap();
/// let acf = Autocorrelation::compute(&series);
/// // Strong correlation at the true lag of 10 s.
/// assert!(acf.value_at_lag(10).unwrap() > 0.5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Autocorrelation {
    values: Vec<f64>,
    dt: f64,
}

impl Autocorrelation {
    /// Computes the normalized autocorrelation of the mean-centered series,
    /// using the calling thread's shared [`SpectralWorkspace`].
    pub fn compute(series: &TimeSeries) -> Self {
        with_thread_workspace(|ws| Self::compute_in(ws, series))
    }

    /// Like [`Autocorrelation::compute`] with an explicit workspace.
    pub fn compute_in(ws: &SpectralWorkspace, series: &TimeSeries) -> Self {
        Self::from_samples_in(ws, &series.centered(), series.scale() as f64)
    }

    /// Computes the ACF of arbitrary mean-centered samples with spacing
    /// `dt` seconds.
    pub fn from_samples(samples: &[f64], dt: f64) -> Self {
        with_thread_workspace(|ws| Self::from_samples_in(ws, samples, dt))
    }

    /// Like [`Autocorrelation::from_samples`] with an explicit workspace:
    /// the forward/inverse plans at the padded length come from the
    /// workspace's cache and both transforms run in its recycled buffer.
    pub fn from_samples_in(ws: &SpectralWorkspace, samples: &[f64], dt: f64) -> Self {
        let n = samples.len();
        if n == 0 {
            return Self {
                values: Vec::new(),
                dt,
            };
        }
        // The workspace zero-pads to >= 2n (making the circular convolution
        // linear), FFTs, multiplies by the conjugate and inverse-FFTs. In
        // the default RealHalf mode the round trip runs packed through the
        // cached r2c/c2r plans at half the transform work.
        let values = ws.with_autocorrelation(samples, |correlation| {
            let r0 = correlation[0];
            if r0 <= 0.0 {
                // Constant (zero after centering) series: define ACF as 1 at
                // lag 0 and 0 elsewhere.
                let mut v = vec![0.0; n];
                v[0] = 1.0;
                v
            } else {
                correlation[..n].iter().map(|c| c / r0).collect()
            }
        });
        Self { values, dt }
    }

    /// ACF values indexed by lag (in bins).
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Sample spacing in seconds.
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// Number of lags available.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the ACF holds no lags.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The ACF value at an integer lag (bins), if within range.
    pub fn value_at_lag(&self, lag: usize) -> Option<f64> {
        self.values.get(lag).copied()
    }

    /// The ACF value at a lag expressed in *seconds*, using the nearest bin.
    pub fn value_at_seconds(&self, seconds: f64) -> Option<f64> {
        if seconds < 0.0 {
            return None;
        }
        let lag = (seconds / self.dt).round() as usize;
        self.value_at_lag(lag)
    }

    /// Verifies a candidate period (seconds) on the ACF *hill* around its
    /// lag.
    ///
    /// Real-world jitter smears the correlation mass of a genuine period
    /// over neighbouring lags (a σ-jittered train spreads over roughly
    /// ±2σ bins), so testing a single lag under-measures periodicity
    /// strength. Instead the verifier scores the *windowed mass*: the sum
    /// of ACF values inside a window proportional to the lag, minus the
    /// local background level estimated from a surrounding annulus. Pure
    /// noise nets out to ≈ 0; a genuine hill retains its mass regardless
    /// of how the jitter distributed it.
    ///
    /// Returns the refined period (the raw-ACF argmax inside the best
    /// window) and the net hill score, or `None` when no hill near the
    /// candidate clears [`HillParams::min_score`].
    pub fn verify_candidate(&self, period_seconds: f64, params: &HillParams) -> Option<HillPeak> {
        self.verify_candidate_spread(period_seconds, 0.0, params)
    }

    /// Like [`Autocorrelation::verify_candidate`] but with an explicit
    /// jitter estimate (seconds). The hill window is widened to cover the
    /// spread — the detector passes the standard deviation of the
    /// intervals matching the candidate, so heavily jittered beacons keep
    /// their correlation mass inside the window.
    pub fn verify_candidate_spread(
        &self,
        period_seconds: f64,
        spread_seconds: f64,
        params: &HillParams,
    ) -> Option<HillPeak> {
        let n = self.values.len();
        if n < 3 {
            return None;
        }
        let lag0 = (period_seconds / self.dt).round() as isize;
        if lag0 < 1 || lag0 as usize >= n {
            return None;
        }
        let lag0 = lag0 as usize;

        // Window half-width: relative floor, widened by the jitter spread
        // (√2·σ covers the difference of two independent jitters), capped
        // at a third of the lag so the window never swallows neighbouring
        // harmonics.
        let w_for = |lag: usize| -> usize {
            let rel = window_of(lag, params.rel_window);
            let spread_bins =
                (spread_seconds * std::f64::consts::SQRT_2 / self.dt).round() as usize;
            rel.max(spread_bins).min((lag / 3).max(1))
        };

        // Search radius grows with the lag: periodogram resolution error is
        // proportional to P²/(N·dt), i.e. relative error grows with P.
        let radius = params
            .search_radius_bins
            .max((lag0 as f64 * params.rel_window).round() as usize);
        let lo = lag0.saturating_sub(radius).max(1);
        let hi = (lag0 + radius).min(n - 1);

        let (best_lag, best_score) = (lo..=hi)
            .map(|l| (l, self.hill_score(l, w_for(l))))
            .max_by(|a, b| a.1.total_cmp(&b.1))?;

        if best_score < params.min_score {
            return None;
        }

        // Refine: centroid of the positive ACF mass inside the winning
        // window. An argmax would chase noise spikes when jitter smears
        // the hill; the centroid recovers the hill's centre of mass.
        let w = w_for(best_lag);
        let wlo = best_lag.saturating_sub(w).max(1);
        let whi = (best_lag + w).min(n - 1);
        let mut mass = 0.0;
        let mut weighted = 0.0;
        for l in wlo..=whi {
            let v = self.values[l].max(0.0);
            mass += v;
            weighted += v * l as f64;
        }
        let refined_lag = if mass > 0.0 {
            weighted / mass
        } else {
            best_lag as f64
        };

        Some(HillPeak {
            period: refined_lag * self.dt,
            score: best_score.min(1.0),
            lag: refined_lag.round() as usize,
        })
    }

    /// Scans `[min_lag, max_lag]` for the strongest hill — the
    /// ACF-first candidate source that complements the periodogram
    /// (Vlachos et al. combine both precisely because a perfect impulse
    /// train spreads periodogram energy across every harmonic while its
    /// ACF peaks unambiguously at the fundamental).
    ///
    /// Returns `None` when the range is empty or no hill clears
    /// [`HillParams::min_score`]. Runs in `O(max_lag)` using prefix sums.
    pub fn strongest_hill(
        &self,
        min_lag: usize,
        max_lag: usize,
        params: &HillParams,
    ) -> Option<HillPeak> {
        self.strongest_hill_budgeted(min_lag, max_lag, params, &ExecBudget::unlimited())
            .unwrap_or(None)
    }

    /// Like [`Autocorrelation::strongest_hill`] under an [`ExecBudget`]:
    /// the scan charges one work unit per lag examined (in batches) and
    /// aborts with [`TimeSeriesError::BudgetExhausted`] when the budget is
    /// spent. With an unlimited budget the result is identical to
    /// [`Autocorrelation::strongest_hill`].
    ///
    /// # Errors
    ///
    /// Returns [`TimeSeriesError::BudgetExhausted`] on budget exhaustion.
    pub fn strongest_hill_budgeted(
        &self,
        min_lag: usize,
        max_lag: usize,
        params: &HillParams,
        budget: &ExecBudget,
    ) -> Result<Option<HillPeak>, TimeSeriesError> {
        let n = self.values.len();
        let lo = min_lag.max(1);
        let hi = max_lag.min(n.saturating_sub(1));
        if lo > hi {
            return Ok(None);
        }
        // The scan is a single O(max_lag) pass over prefix sums; charging
        // its full lag count up front keeps the checkpoint out of the inner
        // loop without giving up determinism.
        budget.checkpoint((hi - lo + 1) as u64)?;
        // Prefix sums for O(1) window/annulus sums.
        let mut prefix = Vec::with_capacity(n + 1);
        prefix.push(0.0);
        for &v in &self.values {
            prefix.push(prefix[prefix.len() - 1] + v);
        }
        let range_sum = |a: usize, b: usize| -> f64 {
            // inclusive [a, b], clamped to [1, n-1]
            let a = a.max(1).min(n - 1);
            let b = b.max(1).min(n - 1);
            if a > b {
                0.0
            } else {
                prefix[b + 1] - prefix[a]
            }
        };

        let mut best: Option<(usize, f64)> = None;
        for lag in lo..=hi {
            let w = window_of(lag, params.rel_window).min((lag / 3).max(1));
            let wlo = lag.saturating_sub(w).max(1);
            let whi = (lag + w).min(n - 1);
            let window_sum = range_sum(wlo, whi);
            let window_len = (whi - wlo + 1) as f64;
            let alo = lag.saturating_sub(4 * w).max(1);
            let ahi = (lag + 4 * w).min(n - 1);
            let ann_sum = range_sum(alo, ahi) - window_sum;
            let ann_len = ((ahi - alo + 1) as f64 - window_len).max(0.0);
            let bg = if ann_len > 0.0 {
                ann_sum / ann_len
            } else {
                0.0
            };
            // √len normalization keeps the comparison fair across window
            // sizes: raw mass grows with the window, so wide (large-lag)
            // windows would otherwise win on accumulated noise alone.
            let score = (window_sum - bg * window_len) / window_len.sqrt();
            if best.map(|(_, s)| score > s).unwrap_or(true) {
                best = Some((lag, score));
            }
        }
        let Some((lag, _)) = best else {
            return Ok(None);
        };
        // Gate and refine with the precise (mass-scored) verifier.
        Ok(self.verify_candidate(lag as f64 * self.dt, params))
    }

    /// Net windowed hill mass at `lag`: window sum minus the background
    /// level of the surrounding annulus.
    fn hill_score(&self, lag: usize, w: usize) -> f64 {
        let n = self.values.len();
        let wlo = lag.saturating_sub(w).max(1);
        let whi = (lag + w).min(n - 1);
        if wlo > whi {
            return f64::NEG_INFINITY;
        }
        let window_sum: f64 = self.values[wlo..=whi].iter().sum();
        let window_len = (whi - wlo + 1) as f64;

        // Annulus: lags within 4w of the lag, excluding the window itself.
        let alo = lag.saturating_sub(4 * w).max(1);
        let ahi = (lag + 4 * w).min(n - 1);
        let mut bg_sum = 0.0;
        let mut bg_count = 0usize;
        for l in alo..=ahi {
            if l < wlo || l > whi {
                bg_sum += self.values[l];
                bg_count += 1;
            }
        }
        let bg_mean = if bg_count > 0 {
            bg_sum / bg_count as f64
        } else {
            0.0
        };
        window_sum - bg_mean * window_len
    }
}

/// Window half-width for a lag: at least 1 bin, `rel_window` of the lag.
fn window_of(lag: usize, rel_window: f64) -> usize {
    ((lag as f64 * rel_window).round() as usize).max(1)
}

/// Parameters of the ACF hill verification.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HillParams {
    /// Minimum search radius (bins) around the candidate lag; the actual
    /// radius grows with the lag (relative periodogram resolution).
    pub search_radius_bins: usize,
    /// Window half-width as a fraction of the lag (jitter tolerance).
    pub rel_window: f64,
    /// Minimum net hill score for a credible periodicity.
    pub min_score: f64,
}

impl Default for HillParams {
    fn default() -> Self {
        Self {
            search_radius_bins: 5,
            rel_window: 0.06,
            min_score: 0.1,
        }
    }
}

/// A verified ACF hill: the refined period and its strength.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HillPeak {
    /// Refined period in seconds.
    pub period: f64,
    /// ACF value at the peak (periodicity-strength score in `[−1, 1]`).
    pub score: f64,
    /// Peak lag in bins.
    pub lag: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn beacon_series(n_events: u64, period: u64) -> TimeSeries {
        let timestamps: Vec<u64> = (0..n_events).map(|i| i * period).collect();
        TimeSeries::from_timestamps(&timestamps, 1).unwrap()
    }

    #[test]
    fn explicit_workspace_matches_thread_local() {
        let series = beacon_series(60, 11);
        let ws = crate::workspace::SpectralWorkspace::new();
        let a = Autocorrelation::compute_in(&ws, &series);
        let b = Autocorrelation::compute(&series);
        assert_eq!(a, b);
    }

    #[test]
    fn lag_zero_is_one() {
        let acf = Autocorrelation::compute(&beacon_series(50, 7));
        assert!((acf.value_at_lag(0).unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn periodic_signal_peaks_at_period() {
        let acf = Autocorrelation::compute(&beacon_series(100, 12));
        let at_period = acf.value_at_lag(12).unwrap();
        let off_period = acf.value_at_lag(6).unwrap();
        assert!(at_period > 0.5, "ACF(12) = {at_period}");
        assert!(at_period > off_period + 0.3);
    }

    #[test]
    fn value_at_seconds_uses_scale() {
        // Beacon every 120 s at 60 s bins -> lag 2 bins.
        let timestamps: Vec<u64> = (0..80).map(|i| i * 120).collect();
        let series = TimeSeries::from_timestamps(&timestamps, 60).unwrap();
        let acf = Autocorrelation::compute(&series);
        let v = acf.value_at_seconds(120.0).unwrap();
        assert_eq!(v, acf.value_at_lag(2).unwrap());
        assert!(acf.value_at_seconds(-5.0).is_none());
    }

    #[test]
    fn verify_accepts_true_period() {
        let acf = Autocorrelation::compute(&beacon_series(120, 20));
        let peak = acf
            .verify_candidate(20.0, &HillParams::default())
            .expect("true period must verify");
        assert!((peak.period - 20.0).abs() < 2.0);
        assert!(peak.score > 0.5);
    }

    #[test]
    fn verify_refines_slightly_wrong_candidate() {
        // Periodogram resolution gives 19.6 when the truth is 20.
        let acf = Autocorrelation::compute(&beacon_series(120, 20));
        let peak = acf.verify_candidate(19.0, &HillParams::default()).unwrap();
        assert_eq!(peak.lag, 20);
    }

    #[test]
    fn verify_rejects_period_of_random_noise() {
        let mut rng = StdRng::seed_from_u64(99);
        let mut t = 0u64;
        let mut timestamps = Vec::new();
        for _ in 0..300 {
            t += rng.random_range(1..60);
            timestamps.push(t);
        }
        let series = TimeSeries::from_timestamps(&timestamps, 1).unwrap();
        let acf = Autocorrelation::compute(&series);
        // Random arrivals: no hill with a meaningful score at an arbitrary lag.
        let peak = acf.verify_candidate(500.0, &HillParams::default());
        assert!(
            peak.is_none() || peak.unwrap().score < 0.3,
            "noise should not verify strongly"
        );
    }

    #[test]
    fn verify_out_of_range_lag_is_none() {
        let acf = Autocorrelation::compute(&beacon_series(30, 5));
        assert!(acf.verify_candidate(1e9, &HillParams::default()).is_none());
        assert!(acf.verify_candidate(0.0, &HillParams::default()).is_none());
    }

    #[test]
    fn constant_series_degenerate_acf() {
        let series = TimeSeries::from_values(0, 1, vec![2.0; 64]).unwrap();
        let acf = Autocorrelation::compute(&series);
        assert_eq!(acf.value_at_lag(0), Some(1.0));
        assert_eq!(acf.value_at_lag(5), Some(0.0));
        assert!(acf.verify_candidate(5.0, &HillParams::default()).is_none());
    }

    #[test]
    fn empty_samples_empty_acf() {
        let acf = Autocorrelation::from_samples(&[], 1.0);
        assert!(acf.is_empty());
        assert_eq!(acf.len(), 0);
    }

    #[test]
    fn acf_bounded_by_one() {
        let acf = Autocorrelation::compute(&beacon_series(200, 9));
        for (lag, &v) in acf.values().iter().enumerate() {
            assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&v), "ACF({lag}) = {v}");
        }
    }

    #[test]
    fn strongest_hill_finds_planted_period() {
        let acf = Autocorrelation::compute(&beacon_series(150, 45));
        let hill = acf
            .strongest_hill(2, 2000, &HillParams::default())
            .expect("planted hill");
        assert!((hill.period - 45.0).abs() < 5.0, "period = {}", hill.period);
        assert!(hill.score > 0.3);
    }

    #[test]
    fn strongest_hill_none_on_constant_series() {
        let series = TimeSeries::from_values(0, 1, vec![1.0; 256]).unwrap();
        let acf = Autocorrelation::compute(&series);
        assert!(acf.strongest_hill(2, 200, &HillParams::default()).is_none());
    }

    #[test]
    fn strongest_hill_empty_range_is_none() {
        let acf = Autocorrelation::compute(&beacon_series(50, 10));
        assert!(acf
            .strongest_hill(100, 50, &HillParams::default())
            .is_none());
        assert!(acf.strongest_hill(0, 0, &HillParams::default()).is_none());
    }

    #[test]
    fn budgeted_hill_scan_matches_and_aborts() {
        let acf = Autocorrelation::compute(&beacon_series(150, 45));
        let params = HillParams::default();
        let unlimited = acf
            .strongest_hill_budgeted(2, 2000, &params, &ExecBudget::unlimited())
            .unwrap();
        assert_eq!(unlimited, acf.strongest_hill(2, 2000, &params));

        // A one-unit ceiling cannot cover a multi-lag scan.
        let starved = ExecBudget::new(None, Some(1));
        assert_eq!(
            acf.strongest_hill_budgeted(2, 2000, &params, &starved),
            Err(TimeSeriesError::BudgetExhausted)
        );
    }

    #[test]
    fn min_score_floor_is_respected() {
        let acf = Autocorrelation::compute(&beacon_series(120, 20));
        let strict = HillParams {
            min_score: 10.0, // unreachable: windowed mass is bounded by ~1-2
            ..Default::default()
        };
        assert!(acf.verify_candidate(20.0, &strict).is_none());
    }
}
