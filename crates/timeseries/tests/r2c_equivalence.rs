//! Equivalence of the real-valued (r2c) spectral path against the legacy
//! full-complex reference, across the three FFT consumers of the
//! detection pipeline: periodogram, permutation maxima, and the ACF
//! round trip.
//!
//! # Tolerance justification
//!
//! The packed half-length r2c algorithm evaluates a mathematically
//! identical DFT through a different (shorter) butterfly recipe plus an
//! `O(n)` Hermitian unpack, so individual output bins differ from the
//! full-length transform only by reordered floating-point rounding — a
//! few ULPs relative to the spectrum's dominant magnitude (`O(ε·log n)`
//! in theory). Exact bit-equality therefore cannot hold bin-for-bin and
//! is asserted only where both modes run the *same* recipe: odd-length
//! periodograms (no r2c packing exists) and `ComplexFull` workspaces.
//! Everywhere else the comparisons use a relative tolerance of
//! `1e-12 ×` the dominant magnitude — about four decimal orders above
//! ULP noise at the lengths tested, eight below signal scale, so a real
//! algebra error fails loudly while legitimate rounding passes.

use baywatch_timeseries::acf::Autocorrelation;
use baywatch_timeseries::periodogram::Periodogram;
use baywatch_timeseries::permutation::{permutation_threshold_in, PermutationConfig};
use baywatch_timeseries::series::TimeSeries;
use baywatch_timeseries::workspace::{SpectralMode, SpectralWorkspace};
use proptest::prelude::*;

/// Series values covering flat stretches, spikes, and arbitrary counts.
/// Lengths 1..=300 include n < 4, odd, even, prime, and power-of-two
/// transform sizes (the ACF pads to the next power of two internally).
fn series_values() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0..50.0f64, 1..=300)
}

fn workspaces() -> (SpectralWorkspace, SpectralWorkspace) {
    (
        SpectralWorkspace::with_mode(SpectralMode::ComplexFull),
        SpectralWorkspace::new(), // RealHalf default
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// r2c periodogram lines match the complex reference: identical grid
    /// (bin, frequency, period) and powers within FFT rounding.
    #[test]
    fn periodogram_modes_equivalent(values in series_values()) {
        let (legacy, packed) = workspaces();
        let a = Periodogram::from_samples_in(&legacy, &values, 1.0);
        let b = Periodogram::from_samples_in(&packed, &values, 1.0);
        prop_assert_eq!(a.lines().len(), b.lines().len());
        let scale = a.max_power().max(1e-30);
        for (x, y) in a.lines().iter().zip(b.lines()) {
            prop_assert_eq!(x.bin, y.bin);
            prop_assert_eq!(x.frequency.to_bits(), y.frequency.to_bits());
            prop_assert_eq!(x.period.to_bits(), y.period.to_bits());
            prop_assert!(
                (x.power - y.power).abs() <= 1e-12 * scale,
                "bin {}: {} vs {}", x.bin, x.power, y.power
            );
        }
        // Parseval accounting holds identically in both modes.
        let ss: f64 = {
            let mean = values.iter().sum::<f64>() / values.len() as f64;
            values.iter().map(|v| (v - mean) * (v - mean)).sum()
        };
        if a.lines().len() > 1 {
            prop_assert!((a.two_sided_energy() - ss).abs() <= 1e-9 * ss.max(1.0));
            prop_assert!((b.two_sided_energy() - ss).abs() <= 1e-9 * ss.max(1.0));
        }
    }

    /// Odd-length series have no r2c packing: the RealHalf fallback runs
    /// the very same full complex transform, so powers are bit-identical.
    #[test]
    fn odd_length_periodogram_bit_exact(values in series_values()) {
        prop_assume!(values.len() % 2 == 1);
        let (legacy, packed) = workspaces();
        let a = Periodogram::from_samples_in(&legacy, &values, 1.0);
        let b = Periodogram::from_samples_in(&packed, &values, 1.0);
        for (x, y) in a.lines().iter().zip(b.lines()) {
            prop_assert_eq!(x.power.to_bits(), y.power.to_bits(), "bin {}", x.bin);
        }
    }

    /// Batched permutation maxima and the resulting threshold match the
    /// legacy per-round complex loop; the shuffle RNG stream is shared, so
    /// lengths and ordering agree exactly.
    #[test]
    fn permutation_modes_equivalent(values in series_values(), m in 1usize..12) {
        let series = TimeSeries::from_values(0, 1, values).unwrap();
        let cfg = PermutationConfig { permutations: m, ..Default::default() };
        let (legacy, packed) = workspaces();
        let a = permutation_threshold_in(&legacy, &series, &cfg).unwrap();
        let b = permutation_threshold_in(&packed, &series, &cfg).unwrap();
        prop_assert_eq!(a.shuffled_maxima.len(), b.shuffled_maxima.len());
        let scale = a.shuffled_maxima.last().copied().unwrap_or(0.0).max(1e-30);
        for (x, y) in a.shuffled_maxima.iter().zip(&b.shuffled_maxima) {
            prop_assert!((x - y).abs() <= 1e-12 * scale, "{x} vs {y}");
        }
        prop_assert!((a.threshold - b.threshold).abs() <= 1e-12 * scale);
    }

    /// The packed (r2c → |X|² → c2r) ACF round trip matches the complex
    /// round trip. Normalized ACF values are dimensionless and bounded by
    /// 1, so an absolute tolerance is the right comparison.
    #[test]
    fn acf_modes_equivalent(values in series_values()) {
        let (legacy, packed) = workspaces();
        let a = Autocorrelation::from_samples_in(&legacy, &values, 1.0);
        let b = Autocorrelation::from_samples_in(&packed, &values, 1.0);
        prop_assert_eq!(a.len(), b.len());
        for (lag, (x, y)) in a.values().iter().zip(b.values()) .enumerate() {
            prop_assert!((x - y).abs() <= 1e-9, "lag {lag}: {x} vs {y}");
        }
    }
}

/// Constant series: zero after centering in every mode — empty spectra,
/// all-zero permutation maxima, and the degenerate ACF, identically.
#[test]
fn constant_series_degenerate_in_both_modes() {
    for n in [1usize, 2, 3, 4, 17, 64] {
        let values = vec![3.0; n];
        let series = TimeSeries::from_values(0, 1, values.clone()).unwrap();
        let (legacy, packed) = workspaces();

        let a = Periodogram::from_samples_in(&legacy, &series.centered(), 1.0);
        let b = Periodogram::from_samples_in(&packed, &series.centered(), 1.0);
        assert_eq!(a.max_power(), 0.0, "n={n}");
        assert_eq!(b.max_power(), 0.0, "n={n}");

        let cfg = PermutationConfig {
            permutations: 5,
            ..Default::default()
        };
        let ta = permutation_threshold_in(&legacy, &series, &cfg).unwrap();
        let tb = permutation_threshold_in(&packed, &series, &cfg).unwrap();
        assert_eq!(ta.threshold, 0.0, "n={n}");
        assert_eq!(ta, tb, "n={n}");

        let aa = Autocorrelation::from_samples_in(&legacy, &series.centered(), 1.0);
        let ab = Autocorrelation::from_samples_in(&packed, &series.centered(), 1.0);
        assert_eq!(aa, ab, "n={n}");
        assert_eq!(aa.value_at_lag(0), Some(1.0));
    }
}

/// Tiny (n < 4) series short-circuit before any transform in both modes.
#[test]
fn tiny_series_equivalent() {
    for values in [vec![1.0], vec![1.0, 5.0], vec![1.0, 5.0, 2.0]] {
        let (legacy, packed) = workspaces();
        let a = Periodogram::from_samples_in(&legacy, &values, 1.0);
        let b = Periodogram::from_samples_in(&packed, &values, 1.0);
        assert!(a.lines().is_empty() && b.lines().is_empty());

        let series = TimeSeries::from_values(0, 1, values).unwrap();
        let cfg = PermutationConfig {
            permutations: 3,
            ..Default::default()
        };
        let ta = permutation_threshold_in(&legacy, &series, &cfg).unwrap();
        let tb = permutation_threshold_in(&packed, &series, &cfg).unwrap();
        assert_eq!(ta, tb);
        assert_eq!(ta.shuffled_maxima, vec![0.0; 3]);
        // No plan is ever built for a degenerate length.
        assert_eq!(legacy.plans_built(), 0);
        assert_eq!(packed.plans_built(), 0);
    }
}
