//! `lint.toml` — the suppression allowlist.
//!
//! Every entry names a rule, a file, and — non-negotiably — a human
//! `reason`. An allowlist without written justifications decays into a
//! list of things nobody remembers agreeing to; the parser rejects empty
//! or missing reasons outright.
//!
//! The accepted grammar is the TOML subset the file actually needs
//! (comments, `[[allow]]` table arrays, `key = "string"` pairs), parsed
//! strictly: unknown tables, unknown keys, bare values, or duplicate keys
//! are hard errors, so a typo cannot silently suppress nothing.
//!
//! ```toml
//! [[allow]]
//! rule = "L2-wall-clock"
//! path = "crates/timeseries/src/budget.rs"
//! pattern = "Instant::now"   # optional: flagged line must contain this
//! reason = "ExecBudget deliberately reads the wall clock; budgets only early-exit"
//! ```

use crate::rules::{Finding, RULE_IDS};
use crate::LintError;

/// One suppression, scoped to (rule, file, optional line substring).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    pub rule: String,
    pub path: String,
    /// When non-empty, the finding's snippet must contain this substring.
    pub pattern: String,
    pub reason: String,
    /// Line in `lint.toml` the entry starts on (for unused-entry reports).
    pub defined_at: u32,
}

impl AllowEntry {
    pub fn matches(&self, finding: &Finding) -> bool {
        self.rule == finding.rule
            && self.path == finding.path
            && (self.pattern.is_empty() || finding.snippet.contains(&self.pattern))
    }
}

/// The parsed allowlist.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Config {
    pub allows: Vec<AllowEntry>,
}

impl Config {
    /// Parses `lint.toml` text. `origin` names the file in error messages.
    pub fn parse(text: &str, origin: &str) -> Result<Self, LintError> {
        let err = |line: usize, msg: String| {
            Err(LintError::Config(format!("{origin}:{}: {msg}", line + 1)))
        };
        let mut allows: Vec<AllowEntry> = Vec::new();
        let mut current: Option<PartialEntry> = None;

        for (lineno, raw) in text.lines().enumerate() {
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if line.starts_with('[') {
                if let Some(entry) = current.take() {
                    allows.push(entry.finish(origin)?);
                }
                if line != "[[allow]]" {
                    return err(
                        lineno,
                        format!("unknown table `{line}`; only `[[allow]]` entries are accepted"),
                    );
                }
                current = Some(PartialEntry::new(lineno as u32 + 1));
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return err(lineno, format!("expected `key = \"value\"`, got `{line}`"));
            };
            let key = key.trim();
            let value = match parse_string(value.trim()) {
                Some(v) => v,
                None => {
                    return err(
                        lineno,
                        format!("value for `{key}` must be a double-quoted string"),
                    )
                }
            };
            let Some(entry) = current.as_mut() else {
                return err(
                    lineno,
                    format!("`{key}` appears before any `[[allow]]` table"),
                );
            };
            let slot = match key {
                "rule" => &mut entry.rule,
                "path" => &mut entry.path,
                "pattern" => &mut entry.pattern,
                "reason" => &mut entry.reason,
                other => {
                    return err(
                        lineno,
                        format!("unknown key `{other}`; allowed: rule, path, pattern, reason"),
                    )
                }
            };
            if slot.is_some() {
                return err(
                    lineno,
                    format!("duplicate key `{key}` in one [[allow]] entry"),
                );
            }
            *slot = Some(value);
        }
        if let Some(entry) = current.take() {
            allows.push(entry.finish(origin)?);
        }
        Ok(Self { allows })
    }
}

struct PartialEntry {
    defined_at: u32,
    rule: Option<String>,
    path: Option<String>,
    pattern: Option<String>,
    reason: Option<String>,
}

impl PartialEntry {
    fn new(defined_at: u32) -> Self {
        Self {
            defined_at,
            rule: None,
            path: None,
            pattern: None,
            reason: None,
        }
    }

    fn finish(self, origin: &str) -> Result<AllowEntry, LintError> {
        let at = self.defined_at;
        let fail = |msg: String| Err(LintError::Config(format!("{origin}:{at}: {msg}")));
        let Some(rule) = self.rule else {
            return fail("[[allow]] entry is missing `rule`".to_string());
        };
        if !RULE_IDS.contains(&rule.as_str()) {
            return fail(format!(
                "unknown rule `{rule}`; known rules: {}",
                RULE_IDS.join(", ")
            ));
        }
        let Some(path) = self.path else {
            return fail("[[allow]] entry is missing `path`".to_string());
        };
        let reason = self.reason.unwrap_or_default();
        if reason.trim().len() < 10 {
            return fail(
                "every [[allow]] entry needs a written `reason` (at least 10 characters) \
                 explaining why the invariant holds"
                    .to_string(),
            );
        }
        Ok(AllowEntry {
            rule,
            path,
            pattern: self.pattern.unwrap_or_default(),
            reason,
            defined_at: at,
        })
    }
}

/// Strips a `#` comment, honoring `#` inside double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    let mut escaped = false;
    for (idx, c) in line.char_indices() {
        match c {
            '\\' if in_string => escaped = !escaped,
            '"' if !escaped => in_string = !in_string,
            '#' if !in_string => return &line[..idx],
            _ => escaped = false,
        }
    }
    line
}

/// Parses a double-quoted TOML basic string with `\"` and `\\` escapes.
/// Returns `None` on anything else (bare words, single quotes, trailing
/// garbage).
fn parse_string(value: &str) -> Option<String> {
    let rest = value.strip_prefix('"')?;
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '\\' => match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'n' => out.push('\n'),
                't' => out.push('\t'),
                _ => return None,
            },
            '"' => {
                // Only whitespace may follow the closing quote.
                return chars.all(char::is_whitespace).then_some(out);
            }
            c => out.push(c),
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn well_formed_config_parses() {
        let toml = r##"
# repo allowlist
[[allow]]
rule = "L2-wall-clock"
path = "crates/timeseries/src/budget.rs"
reason = "budgets deliberately read the wall clock; only early-exits depend on it"

[[allow]]
rule = "L4-panic"
path = "crates/core/src/io.rs"
pattern = "lock()"
reason = "mutex cannot be poisoned: no critical section panics"
"##;
        let cfg = Config::parse(toml, "lint.toml").expect("parses");
        assert_eq!(cfg.allows.len(), 2);
        assert_eq!(cfg.allows[0].rule, "L2-wall-clock");
        assert_eq!(cfg.allows[1].pattern, "lock()");
        assert_eq!(cfg.allows[0].defined_at, 3);
    }

    #[test]
    fn missing_reason_is_rejected() {
        let toml = "[[allow]]\nrule = \"L4-panic\"\npath = \"src/lib.rs\"\n";
        let e = Config::parse(toml, "lint.toml").expect_err("must fail");
        assert!(e.to_string().contains("reason"), "{e}");
    }

    #[test]
    fn short_reason_is_rejected() {
        let toml = "[[allow]]\nrule = \"L4-panic\"\npath = \"src/lib.rs\"\nreason = \"ok\"\n";
        assert!(Config::parse(toml, "lint.toml").is_err());
    }

    #[test]
    fn unknown_rule_key_and_table_are_rejected() {
        for toml in [
            "[[allow]]\nrule = \"L9-nope\"\npath = \"a\"\nreason = \"long enough reason\"\n",
            "[[allow]]\nrule = \"L4-panic\"\nfile = \"a\"\nreason = \"long enough reason\"\n",
            "[allowed]\n",
            "rule = \"L4-panic\"\n",
        ] {
            assert!(Config::parse(toml, "lint.toml").is_err(), "{toml}");
        }
    }

    #[test]
    fn bare_values_and_duplicates_are_rejected() {
        for toml in [
            "[[allow]]\nrule = L4-panic\npath = \"a\"\nreason = \"long enough reason\"\n",
            "[[allow]]\nrule = \"L4-panic\"\nrule = \"L4-panic\"\npath = \"a\"\nreason = \"long enough reason\"\n",
        ] {
            assert!(Config::parse(toml, "lint.toml").is_err(), "{toml}");
        }
    }

    #[test]
    fn comments_and_escapes_are_honored() {
        let toml = "[[allow]] # trailing comment\nrule = \"L4-panic\" # why not\n\
                    path = \"src/lib.rs\"\nreason = \"the \\\"#\\\" is not a comment here\"\n";
        let cfg = Config::parse(toml, "lint.toml").expect("parses");
        assert!(cfg.allows[0].reason.contains('#'));
    }

    #[test]
    fn pattern_scopes_the_match() {
        let entry = AllowEntry {
            rule: "L4-panic".into(),
            path: "src/lib.rs".into(),
            pattern: "lock()".into(),
            reason: "poisoning is unreachable here".into(),
            defined_at: 1,
        };
        let mut finding = Finding {
            rule: "L4-panic",
            path: "src/lib.rs".into(),
            line: 5,
            snippet: "self.cache.lock().unwrap()".into(),
            message: String::new(),
        };
        assert!(entry.matches(&finding));
        finding.snippet = "value.unwrap()".into();
        assert!(!entry.matches(&finding));
        finding.path = "src/other.rs".into();
        assert!(!entry.matches(&finding));
    }
}
